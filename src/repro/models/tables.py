"""Compiled decision-table inference kernels for fitted tree ensembles.

The boosting models fit trees one at a time, and their reference
``predict`` walks them one at a time too -- a Python loop over 100
trees per batch.  Once ``repro.serve`` made ``predict`` a long-lived
hot path, that loop became the dominant serving cost.  This module
compiles a *fitted* ensemble into flat numpy tensors -- decision tables
-- that score a whole batch across **all trees at once**, with no
per-tree Python recursion:

* :class:`CompiledDepthwiseTables` packs a list of
  :class:`~repro.models.tree.GradientTree` objects into padded
  ``(n_trees, max_nodes)`` feature/threshold/child/value arrays.  The
  batch kernel keeps an ``(n_rows, n_trees)`` node cursor and advances
  every (row, tree) pair one level per iteration, so the Python-level
  loop runs at most ``max_depth`` times regardless of tree count.
* :class:`CompiledObliviousTables` packs a list of
  :class:`~repro.models.oblivious.ObliviousTree` decision tables into
  stacked ``(n_trees, depth)`` feature/threshold tensors plus an
  ``(n_trees, 2**depth)`` leaf-value tensor.  Trees shallower than the
  ensemble maximum are padded with ``+inf`` thresholds and
  ``np.repeat``-expanded leaf values, which maps every padded leaf code
  back to the right original leaf.

**Parity contract.**  Both kernels are bit-identical to the reference
per-tree loop, not merely close: comparisons use the same operators on
the same float64 values in the same order (``x <= threshold`` routing
left for depth-wise trees, ``x > threshold`` setting the level bit for
oblivious tables), and the boosted sum accumulates tree contributions
*sequentially* in fitting order -- ``p += lr * v_t`` per tree -- rather
than through ``np.sum``, whose pairwise reduction would change the
rounding.  The test suite asserts ``np.array_equal`` (exact float
equality) between the compiled and reference paths across random
ensembles.

**Precision contract.**  Thresholds are stored as float64 and every
comparison happens in float64: :func:`tree_values` casts ``X`` on
entry, so a float32 caller lands on the same side of every split as
the float64 reference walk.  This pins down the boundary semantics the
models document -- a kernel comparing in float32 would route rows with
values between a threshold's float32 neighbours differently.

Compilation happens at ``fit`` time (the boosting models store the
result as a ``compiled_`` fitted attribute), never inside ``predict``
-- prediction stays read-only.  Bundles pickled before this module
existed simply lack the attribute and keep using the reference loop;
:func:`repro.serve.compiled.ensure_compiled` upgrades them on load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Sequence

import numpy as np

__all__ = [
    "CompiledDepthwiseTables",
    "CompiledObliviousTables",
    "compile_depthwise",
    "compile_oblivious",
]

_LEAF = -1


def _as_float64_2d(X: np.ndarray) -> np.ndarray:
    """The kernel-side precision gate: comparisons happen in float64."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    return X


def _boosted_sum(
    tree_values: np.ndarray, base_score: float, learning_rate: float
) -> np.ndarray:
    """Sequentially accumulate per-tree values into the boosted prediction.

    The per-tree loop is deliberate: the reference ``predict`` adds one
    shrunken tree at a time, and floating-point addition is not
    associative, so a vectorised ``np.sum`` over the tree axis (pairwise
    reduction) would produce different low-order bits.  Looping over
    ``n_trees`` columns of an already-materialised matrix costs
    microseconds; walking the trees is what was slow.
    """
    n_rows, n_trees = tree_values.shape
    prediction = np.full(n_rows, base_score)
    for index in range(n_trees):
        prediction += learning_rate * tree_values[:, index]
    return prediction


def _boosted_stages(
    tree_values: np.ndarray, base_score: float, learning_rate: float
) -> np.ndarray:
    """Prefix sums of :func:`_boosted_sum`: prediction after every round."""
    n_rows, n_trees = tree_values.shape
    prediction = np.full(n_rows, base_score)
    stages = np.empty((n_trees, n_rows))
    for index in range(n_trees):
        prediction = prediction + learning_rate * tree_values[:, index]
        stages[index] = prediction
    return stages


@dataclass(frozen=True)
class CompiledDepthwiseTables:
    """A fitted depth-wise tree ensemble as padded flat tensors.

    All arrays share the leading ``(n_trees, max_nodes)`` shape; trees
    with fewer nodes are padded with leaf sentinels (``feature == -1``)
    so every tree can be advanced by the same vectorised step.

    Attributes
    ----------
    feature:
        Split feature per node, ``-1`` marking leaves and padding.
    threshold:
        Split threshold per node (float64; ``0.0`` at leaves/padding,
        where it is never compared).
    left, right:
        Child node indices per interior node (``0`` at leaves/padding,
        where they are never followed).
    value:
        Leaf value per node (interior entries hold the node's Newton
        value, which prediction never reads).
    """

    feature: np.ndarray
    threshold: np.ndarray
    left: np.ndarray
    right: np.ndarray
    value: np.ndarray

    @property
    def n_trees(self) -> int:
        return int(self.feature.shape[0])

    @property
    def max_nodes(self) -> int:
        return int(self.feature.shape[1])

    def summary(self) -> Dict[str, Any]:
        """JSON-ready kernel description for manifests and reports."""
        return {
            "kernel": "depthwise",
            "n_trees": self.n_trees,
            "max_nodes": self.max_nodes,
        }

    def tree_values(self, X: np.ndarray) -> np.ndarray:
        """Leaf value of every tree for every row, shape ``(n, n_trees)``.

        Column ``t`` is bit-identical to ``trees[t].predict(X)``.  The
        node cursor starts at every root and each iteration advances
        all (row, tree) pairs still at an interior node one level, so
        the loop runs ``max_depth`` times -- not ``n_trees`` times.
        """
        X = _as_float64_2d(X)
        n_rows = X.shape[0]
        tree_range = np.arange(self.n_trees)
        row_column = np.arange(n_rows)[:, None]
        node = np.zeros((n_rows, self.n_trees), dtype=np.int64)
        while True:
            split_feature = self.feature[tree_range, node]
            interior = split_feature >= 0
            if not interior.any():
                break
            # Leaves gather column 0 as a harmless placeholder; the
            # np.where below discards their routing entirely.
            gather = np.where(interior, split_feature, 0)
            goes_left = X[row_column, gather] <= self.threshold[tree_range, node]
            child = np.where(
                goes_left,
                self.left[tree_range, node],
                self.right[tree_range, node],
            )
            node = np.where(interior, child, node)
        return self.value[tree_range, node]

    def predict(
        self, X: np.ndarray, base_score: float, learning_rate: float
    ) -> np.ndarray:
        """Boosted prediction, bit-identical to the per-tree loop."""
        return _boosted_sum(self.tree_values(X), base_score, learning_rate)

    def staged_predict(
        self, X: np.ndarray, base_score: float, learning_rate: float
    ) -> np.ndarray:
        """Per-round boosted predictions, shape ``(n_trees, n_rows)``."""
        return _boosted_stages(self.tree_values(X), base_score, learning_rate)


@dataclass(frozen=True)
class CompiledObliviousTables:
    """A fitted oblivious-tree ensemble as stacked decision tables.

    Trees shallower than ``depth`` (including depth-0 single-leaf
    tables) are padded with ``+inf`` thresholds on feature ``0``: the
    padded levels always test false, so a shallow tree's leaf code is
    its original code shifted left -- exactly where ``np.repeat``
    placed its expanded leaf values.

    Attributes
    ----------
    features:
        Level split features, shape ``(n_trees, depth)``.
    thresholds:
        Level thresholds (float64), shape ``(n_trees, depth)``.
    leaf_values:
        Per-tree leaf tables, shape ``(n_trees, 2**depth)``.
    """

    features: np.ndarray
    thresholds: np.ndarray
    leaf_values: np.ndarray

    @property
    def n_trees(self) -> int:
        return int(self.leaf_values.shape[0])

    @property
    def depth(self) -> int:
        return int(self.features.shape[1])

    def summary(self) -> Dict[str, Any]:
        """JSON-ready kernel description for manifests and reports."""
        return {
            "kernel": "oblivious",
            "n_trees": self.n_trees,
            "depth": self.depth,
            "n_leaves": int(self.leaf_values.shape[1]),
        }

    def tree_values(self, X: np.ndarray) -> np.ndarray:
        """Leaf value of every tree for every row, shape ``(n, n_trees)``.

        Column ``t`` is bit-identical to ``trees[t].predict(X)``: the
        leaf code accumulates one bit per level, most significant bit
        first, from the same ``x > threshold`` test as the reference.
        """
        X = _as_float64_2d(X)
        index = np.zeros((X.shape[0], self.n_trees), dtype=np.int64)
        for level in range(self.depth):
            bit = X[:, self.features[:, level]] > self.thresholds[None, :, level]
            index = (index << 1) | bit
        return self.leaf_values[np.arange(self.n_trees), index]

    def predict(
        self, X: np.ndarray, base_score: float, learning_rate: float
    ) -> np.ndarray:
        """Boosted prediction, bit-identical to the per-tree loop."""
        return _boosted_sum(self.tree_values(X), base_score, learning_rate)

    def staged_predict(
        self, X: np.ndarray, base_score: float, learning_rate: float
    ) -> np.ndarray:
        """Per-round boosted predictions, shape ``(n_trees, n_rows)``."""
        return _boosted_stages(self.tree_values(X), base_score, learning_rate)


def compile_depthwise(trees: Sequence[Any]) -> CompiledDepthwiseTables:
    """Pack fitted :class:`~repro.models.tree.GradientTree` objects.

    Every tree contributes its flat parallel arrays, right-padded to the
    widest tree with leaf sentinels.  Thresholds and children at leaf
    positions are sanitised to ``0`` -- the kernel masks them out, but
    keeping NaN thresholds (the grower's leaf marker) out of the padded
    tensor means no comparison ever touches one.
    """
    if not trees:
        raise ValueError("cannot compile an empty ensemble")
    for position, tree in enumerate(trees):
        if getattr(tree, "feature_", None) is None:
            raise ValueError(f"tree {position} is not fitted")
    n_trees = len(trees)
    max_nodes = max(int(tree.feature_.size) for tree in trees)
    feature = np.full((n_trees, max_nodes), _LEAF, dtype=np.int64)
    threshold = np.zeros((n_trees, max_nodes))
    left = np.zeros((n_trees, max_nodes), dtype=np.int64)
    right = np.zeros((n_trees, max_nodes), dtype=np.int64)
    value = np.zeros((n_trees, max_nodes))
    for position, tree in enumerate(trees):
        size = int(tree.feature_.size)
        feature[position, :size] = tree.feature_
        value[position, :size] = tree.value_
        interior = tree.feature_ >= 0
        threshold[position, :size] = np.where(interior, tree.threshold_, 0.0)
        left[position, :size] = np.where(interior, tree.left_, 0)
        right[position, :size] = np.where(interior, tree.right_, 0)
    return CompiledDepthwiseTables(
        feature=feature, threshold=threshold, left=left, right=right, value=value
    )


def compile_oblivious(trees: Sequence[Any]) -> CompiledObliviousTables:
    """Pack fitted :class:`~repro.models.oblivious.ObliviousTree` tables.

    Shallow trees are padded to the ensemble's maximum depth with
    ``+inf`` thresholds (the padded bit is always 0) and their leaf
    values expanded with ``np.repeat`` so every padded leaf code indexes
    the value of the original leaf it extends.  A depth-0 tree becomes a
    row of all-``+inf`` levels over a constant leaf table -- no special
    case anywhere downstream.
    """
    if not trees:
        raise ValueError("cannot compile an empty ensemble")
    n_trees = len(trees)
    depth = max(int(tree.features.size) for tree in trees)
    features = np.zeros((n_trees, depth), dtype=np.int64)
    thresholds = np.full((n_trees, depth), np.inf)
    leaf_values = np.zeros((n_trees, 2**depth))
    for position, tree in enumerate(trees):
        tree_depth = int(tree.features.size)
        expected_leaves = 1 << tree_depth
        if int(tree.leaf_values.size) != expected_leaves:
            raise ValueError(
                f"tree {position} has {tree.leaf_values.size} leaves for "
                f"depth {tree_depth}; expected {expected_leaves}"
            )
        features[position, :tree_depth] = tree.features
        thresholds[position, :tree_depth] = tree.thresholds
        leaf_values[position] = np.repeat(
            np.asarray(tree.leaf_values, dtype=np.float64),
            2 ** (depth - tree_depth),
        )
    return CompiledObliviousTables(
        features=features, thresholds=thresholds, leaf_values=leaf_values
    )
