"""Tests for the 2-layer MLP regressor."""

import numpy as np
import pytest

from repro.models.nn import MLPRegressor


class TestPointHead:
    def test_fits_linear_function(self, rng):
        X = rng.normal(size=(150, 3))
        y = X @ np.array([1.0, -2.0, 0.5]) + 0.3
        model = MLPRegressor(epochs=600, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_fits_nonlinear_function(self, rng):
        X = rng.uniform(-2, 2, size=(300, 1))
        y = np.abs(X[:, 0])
        model = MLPRegressor(epochs=1500, weight_decay=0.001, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_handles_unscaled_inputs(self, rng):
        """Internal standardisation lets raw nA/mV-scale features train."""
        X = rng.normal(size=(100, 2)) * np.array([1e-9, 1e3])
        y = 1e9 * X[:, 0] + rng.normal(scale=0.05, size=100)
        model = MLPRegressor(epochs=600, weight_decay=0.01, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_handles_vmin_scale_targets(self, rng):
        X = rng.normal(size=(100, 2))
        y = 0.56 + 0.01 * X[:, 0]
        model = MLPRegressor(epochs=600, random_state=0).fit(X, y)
        assert np.abs(model.predict(X) - y).max() < 0.01

    def test_deterministic_given_seed(self, rng):
        X = rng.normal(size=(50, 2))
        y = rng.normal(size=50)
        a = MLPRegressor(epochs=100, random_state=9).fit(X, y)
        b = MLPRegressor(epochs=100, random_state=9).fit(X, y)
        np.testing.assert_allclose(a.predict(X), b.predict(X))

    def test_weight_decay_shrinks_weights(self, rng):
        X = rng.normal(size=(80, 2))
        y = rng.normal(size=80)
        free = MLPRegressor(epochs=300, weight_decay=0.0, random_state=0).fit(X, y)
        penalised = MLPRegressor(epochs=300, weight_decay=10.0, random_state=0).fit(X, y)
        assert np.linalg.norm(penalised.weights_[0]) < np.linalg.norm(free.weights_[0])


class TestQuantileHead:
    def test_quantile_asymmetry(self, rng):
        X = rng.normal(size=(300, 2))
        y = X[:, 0] + rng.normal(size=300)
        lo = MLPRegressor(epochs=800, quantile=0.1, random_state=0).fit(X, y)
        hi = MLPRegressor(epochs=800, quantile=0.9, random_state=0).fit(X, y)
        assert np.mean(hi.predict(X) - lo.predict(X)) > 0

    def test_exceedance_roughly_matches_quantile(self, rng):
        X = rng.normal(size=(500, 1))
        y = X[:, 0] + rng.normal(size=500)
        model = MLPRegressor(
            epochs=1500, quantile=0.8, weight_decay=0.001, random_state=0
        ).fit(X, y)
        below = np.mean(y <= model.predict(X))
        assert below == pytest.approx(0.8, abs=0.1)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hidden_units": 0},
            {"epochs": 0},
            {"weight_decay": -1.0},
            {"quantile": 0.0},
        ],
    )
    def test_constructor_rejects(self, kwargs):
        with pytest.raises(ValueError):
            MLPRegressor(**kwargs)

    def test_predict_before_fit(self):
        with pytest.raises(Exception):
            MLPRegressor().predict(np.zeros((2, 2)))

    def test_predict_rejects_wrong_width(self, rng):
        X = rng.normal(size=(30, 3))
        model = MLPRegressor(epochs=50, random_state=0).fit(X, rng.normal(size=30))
        with pytest.raises(ValueError, match="features"):
            model.predict(np.zeros((5, 2)))

    def test_constant_feature_does_not_crash(self, rng):
        X = np.column_stack([rng.normal(size=40), np.zeros(40)])
        y = X[:, 0]
        model = MLPRegressor(epochs=200, random_state=0).fit(X, y)
        assert np.all(np.isfinite(model.predict(X)))
