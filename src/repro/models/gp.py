"""Exact Gaussian process regression (paper Sections II-B.1 and IV-C.1).

The GP baseline in the paper uses an RBF kernel whose hyper-parameters are
optimised to maximise the marginal likelihood of the training data, and
builds prediction intervals from the posterior Gaussian at each test point
(Eq. 4):

.. math::

    C(x) = [\\mu(x) + K_{lo}\\,\\sigma(x),\\ \\mu(x) + K_{hi}\\,\\sigma(x)],
    \\quad K_{lo} = \\Phi^{-1}(\\alpha/2),\\ K_{hi} = \\Phi^{-1}(1-\\alpha/2).

Implementation follows Rasmussen & Williams (2006) Algorithm 2.1: Cholesky
factorisation of the kernel matrix, log-marginal-likelihood optimisation
with L-BFGS-B over log hyper-parameters (finite-difference gradients keep
the kernel algebra simple), and multiple random restarts.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np
from scipy import optimize
from scipy.linalg import cho_factor, cho_solve
from scipy.stats import norm

from repro.models.base import (
    BaseRegressor,
    check_fitted,
    check_random_state,
    check_X,
    check_X_y,
)
from repro.models.kernels import ConstantKernel, Kernel, RBFKernel, WhiteKernel

__all__ = ["GaussianProcessRegressor"]


class GaussianProcessRegressor(BaseRegressor):
    """Exact GP regression with ML-II hyper-parameter fitting.

    Parameters
    ----------
    kernel:
        Prior covariance function.  ``None`` uses the paper's setup:
        ``ConstantKernel() * RBFKernel() + WhiteKernel()`` so signal
        variance, length scale, and noise are all learnt from data.
    alpha:
        Jitter added to the kernel diagonal for numerical stability (on top
        of any learnt WhiteKernel noise).
    n_restarts:
        Number of additional random restarts for the marginal-likelihood
        optimisation (0 = optimise from the initial theta only).
    normalize_y:
        Standardise the targets before fitting and undo the transform at
        prediction time; recommended because the zero-mean GP prior is a
        poor fit for raw Vmin values around, say, 550 mV.
    optimizer:
        ``"lbfgs"`` (default) or ``None`` to keep the initial
        hyper-parameters untouched.
    random_state:
        Seed for restart sampling.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        alpha: float = 1e-10,
        n_restarts: int = 2,
        normalize_y: bool = True,
        optimizer: Optional[str] = "lbfgs",
        random_state: Optional[int] = None,
    ) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        if n_restarts < 0:
            raise ValueError(f"n_restarts must be non-negative, got {n_restarts}")
        if optimizer not in (None, "lbfgs"):
            raise ValueError(f"optimizer must be None or 'lbfgs', got {optimizer!r}")
        self.kernel = kernel
        self.alpha = alpha
        self.n_restarts = n_restarts
        self.normalize_y = normalize_y
        self.optimizer = optimizer
        self.random_state = random_state
        self.kernel_: Optional[Kernel] = None

    # -- marginal likelihood ------------------------------------------------
    def _log_marginal_likelihood(
        self, kernel: Kernel, X: np.ndarray, y: np.ndarray
    ) -> float:
        K = kernel(X)
        K[np.diag_indices_from(K)] += self.alpha
        try:
            factor = cho_factor(K, lower=True)
        except np.linalg.LinAlgError:
            return -np.inf
        alpha_vec = cho_solve(factor, y)
        log_det = 2.0 * float(np.sum(np.log(np.diag(factor[0]))))
        n = y.shape[0]
        return float(
            -0.5 * y @ alpha_vec - 0.5 * log_det - 0.5 * n * math.log(2.0 * math.pi)
        )

    def _optimize_kernel(
        self, kernel: Kernel, X: np.ndarray, y: np.ndarray
    ) -> Tuple[Kernel, float]:
        bounds = kernel.bounds

        def negative_lml(theta: np.ndarray) -> float:
            return -self._log_marginal_likelihood(kernel.clone_with_theta(theta), X, y)

        rng = check_random_state(self.random_state)
        starts = [kernel.theta]
        for _ in range(self.n_restarts):
            starts.append(rng.uniform(bounds[:, 0], bounds[:, 1]))

        best_theta = kernel.theta
        best_value = negative_lml(best_theta)
        for start in starts:
            result = optimize.minimize(
                negative_lml,
                start,
                method="L-BFGS-B",
                bounds=bounds,
            )
            if result.fun < best_value and np.all(np.isfinite(result.x)):
                best_value = float(result.fun)
                best_theta = result.x
        return kernel.clone_with_theta(best_theta), -best_value

    # -- fitting --------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        X, y = check_X_y(X, y)
        self.n_features_in_ = X.shape[1]
        self.X_train_ = X

        if self.normalize_y:
            self._y_mean = float(y.mean())
            self._y_std = float(y.std())
            if self._y_std == 0.0:
                self._y_std = 1.0
        else:
            self._y_mean = 0.0
            self._y_std = 1.0
        y_work = (y - self._y_mean) / self._y_std

        kernel = self.kernel
        if kernel is None:
            kernel = ConstantKernel(1.0) * RBFKernel(1.0) + WhiteKernel(0.1)
        else:
            import copy

            kernel = copy.deepcopy(kernel)

        if self.optimizer is not None and kernel.theta.size:
            kernel, lml = self._optimize_kernel(kernel, X, y_work)
        else:
            lml = self._log_marginal_likelihood(kernel, X, y_work)
        self.kernel_ = kernel
        self.log_marginal_likelihood_ = lml

        K = kernel(X)
        K[np.diag_indices_from(K)] += self.alpha
        self._cho = cho_factor(K, lower=True)
        self._alpha_vec = cho_solve(self._cho, y_work)
        self._y_train = y_work
        return self

    # -- prediction -------------------------------------------------------------
    def predict(
        self, X: np.ndarray, return_std: bool = False
    ):
        """Posterior mean (and optionally standard deviation) at ``X``.

        The returned standard deviation is the *predictive* one: it includes
        learnt observation noise (any WhiteKernel term), which is what the
        interval construction of Eq. (4) needs to cover noisy Vmin labels.
        """
        check_fitted(self, "kernel_")
        X = check_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.n_features_in_}"
            )
        K_cross = self.kernel_(X, self.X_train_)
        mean = K_cross @ self._alpha_vec
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean
        solved = cho_solve(self._cho, K_cross.T)
        prior_var = self.kernel_.diag(X) + self.alpha
        variance = prior_var - np.einsum("ij,ji->i", K_cross, solved)
        variance = np.maximum(variance, 0.0)
        std = np.sqrt(variance) * self._y_std
        return mean, std

    def predict_interval(
        self, X: np.ndarray, alpha: float = 0.1
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Central ``1 − alpha`` Gaussian prediction interval, paper Eq. (4)."""
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        mean, std = self.predict(X, return_std=True)
        k_hi = norm.ppf(1.0 - alpha / 2.0)
        return mean - k_hi * std, mean + k_hi * std
