"""The (lower, upper) quantile-band region regressor of paper Eq. (2).

A region regressor :math:`g_r` is a pair of point predictors trained on
the pinball loss at quantiles :math:`q_{lo} = \\alpha/2` and
:math:`q_{hi} = 1 - \\alpha/2`; the predicted region for a sample is the
closed interval between the two (paper Section II-B.2).  This is the "QR"
row family of Table III, and also the heuristic band that CQR calibrates.

Any estimator exposing a ``quantile`` constructor parameter can act as the
template: :class:`~repro.models.linear.QuantileLinearRegression`,
:class:`~repro.models.nn.MLPRegressor`,
:class:`~repro.models.gbm.GradientBoostingRegressor`, or
:class:`~repro.models.oblivious.ObliviousBoostingRegressor`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.models.base import BaseRegressor, check_fitted, clone

__all__ = ["PackageDefaultQuantileBand", "QuantileBandRegressor"]


class QuantileBandRegressor(BaseRegressor):
    """Train two quantile clones of a template model and predict a band.

    Parameters
    ----------
    template:
        An unfitted estimator with a ``quantile`` parameter.  It is cloned
        (never mutated) into a lower- and an upper-quantile model.
    alpha:
        Target miscoverage; the band spans quantiles ``alpha/2`` and
        ``1 − alpha/2`` (paper Section IV-E uses ``alpha=0.1`` → 5 %–95 %).
    n_jobs:
        The lower and upper clones are trained on the same data but are
        otherwise independent; ``n_jobs >= 2`` fits the pair concurrently
        via :func:`repro.perf.parallel.parallel_map`.  ``None`` reads
        ``REPRO_N_JOBS``; results are identical for every setting.

    Notes
    -----
    The two quantile models are trained independently, so on hard data the
    raw band may cross (lower above upper).  ``predict_interval`` applies
    the standard monotonicity fix of sorting the two bounds per sample;
    the in-sample crossing rate is computed once by ``fit`` and exposed as
    ``crossing_rate_`` for diagnostics (prediction itself is read-only, as
    the estimator contract requires).
    """

    def __init__(
        self,
        template: BaseRegressor,
        alpha: float = 0.1,
        n_jobs: Optional[int] = None,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.template = template
        self.alpha = alpha
        self.n_jobs = n_jobs
        self.lower_: Optional[BaseRegressor] = None
        self.upper_: Optional[BaseRegressor] = None

    @property
    def quantiles(self) -> Tuple[float, float]:
        """The (lower, upper) target quantiles implied by ``alpha``."""
        return self.alpha / 2.0, 1.0 - self.alpha / 2.0

    def fit(
        self, X: np.ndarray, y: np.ndarray, binned=None
    ) -> "QuantileBandRegressor":
        """Fit the lower/upper quantile clones and the crossing diagnostic.

        ``binned`` optionally carries a pre-binned
        :class:`~repro.models.binning.BinnedDataset` for ``X``; it is
        forwarded to members whose ``fit`` accepts the seam (the
        histogram boosters), so the lo/hi pair shares one binning pass.
        Members without the seam are fitted exactly as before.
        """
        import inspect

        from repro.perf.parallel import parallel_map

        def fit_member(quantile: float) -> BaseRegressor:
            member = clone(self.template, quantile=quantile)
            if (
                binned is not None
                and "binned" in inspect.signature(member.fit).parameters
            ):
                return member.fit(X, y, binned=binned)
            return member.fit(X, y)

        self.lower_, self.upper_ = parallel_map(
            fit_member, self.quantiles, n_jobs=self.n_jobs
        )
        self.crossing_rate_ = float(
            np.mean(self.lower_.predict(X) > self.upper_.predict(X))
        )
        return self

    def predict_interval(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-sample (lower, upper) band, with crossings sorted out."""
        check_fitted(self, "lower_")
        raw_lower = self.lower_.predict(X)
        raw_upper = self.upper_.predict(X)
        lower = np.minimum(raw_lower, raw_upper)
        upper = np.maximum(raw_lower, raw_upper)
        return lower, upper

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Band midpoint -- a crude point estimate, mainly for diagnostics."""
        lower, upper = self.predict_interval(X)
        return (lower + upper) / 2.0


class PackageDefaultQuantileBand(BaseRegressor):
    """A quantile band built the way the CatBoost *package defaults* do it.

    CatBoost's ``loss_function='Quantile'`` defaults to ``alpha=0.5``
    unless explicitly written as ``'Quantile:alpha=0.05'``.  A user who
    "utilizes the default hyperparameters" (paper Section IV-C.3) and only
    switches the loss to Quantile therefore trains *both* band models on
    the **median** objective -- they differ only through training
    randomness.  The resulting band is a few mV wide with ~10-25 %
    coverage, which is precisely the pathological "QR CatBoost" row of the
    paper's Table III; conformalizing it (CQR CatBoost) degenerates into
    split CP around the strongest point predictor, which is why CQR
    CatBoost is simultaneously the *shortest* and well-covered variant.

    This class exists to reproduce that published behaviour faithfully
    and transparently; pair it with
    :class:`QuantileBandRegressor` (the correctly configured band) in the
    ablation benchmarks to quantify the difference.

    Parameters
    ----------
    template:
        Unfitted estimator with ``quantile`` and (ideally) ``random_state``
        parameters.
    alpha:
        Nominal target miscoverage -- recorded for interface parity; the
        trained quantiles are both ``loss_quantile`` regardless.
    loss_quantile:
        The quantile both models are actually trained at (package default
        0.5).
    random_state:
        Seed for drawing the two member seeds.
    """

    def __init__(
        self,
        template: BaseRegressor,
        alpha: float = 0.1,
        loss_quantile: float = 0.5,
        random_state: Optional[int] = None,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if not 0.0 < loss_quantile < 1.0:
            raise ValueError(
                f"loss_quantile must be in (0, 1), got {loss_quantile}"
            )
        self.template = template
        self.alpha = alpha
        self.loss_quantile = loss_quantile
        self.random_state = random_state
        self.lower_: Optional[BaseRegressor] = None
        self.upper_: Optional[BaseRegressor] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "PackageDefaultQuantileBand":
        """Fit both members on the (median) loss quantile, as the trap does."""
        from repro.models.base import check_random_state

        rng = check_random_state(self.random_state)
        members = []
        for _ in range(2):
            member = clone(self.template, quantile=self.loss_quantile)
            if "random_state" in member.get_params():
                member.set_params(random_state=int(rng.integers(0, 2**31 - 1)))
            members.append(member.fit(X, y))
        self.lower_, self.upper_ = members
        self.crossing_rate_ = float(
            np.mean(self.lower_.predict(X) > self.upper_.predict(X))
        )
        return self

    def predict_interval(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-sample band between the two (near-identical) median fits."""
        check_fitted(self, "lower_")
        raw_lower = self.lower_.predict(X)
        raw_upper = self.upper_.predict(X)
        lower = np.minimum(raw_lower, raw_upper)
        upper = np.maximum(raw_lower, raw_upper)
        return lower, upper

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Band midpoint (an honest median estimate, unlike the band)."""
        lower, upper = self.predict_interval(X)
        return (lower + upper) / 2.0
