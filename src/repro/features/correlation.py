"""Correlation utilities underlying CFS feature selection.

All functions treat constant columns gracefully: a column with zero
variance has undefined Pearson correlation, which we define as 0 (it
carries no linear information about anything), matching the convention
CFS needs to never select dead parametric channels.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = [
    "feature_feature_correlation",
    "feature_target_correlation",
    "pearson_correlation",
    "spearman_correlation",
]


def pearson_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation of two 1-D arrays; 0 when either is constant."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError(f"inputs must be 1-D with equal length, got {a.shape}, {b.shape}")
    if a.size < 2:
        raise ValueError("correlation needs at least 2 samples")
    std_a = a.std()
    std_b = b.std()
    if std_a == 0.0 or std_b == 0.0:
        return 0.0
    return float(np.mean((a - a.mean()) * (b - b.mean())) / (std_a * std_b))


def spearman_correlation(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rank correlation; 0 when either input is constant."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError(f"inputs must be 1-D with equal length, got {a.shape}, {b.shape}")
    if a.std() == 0.0 or b.std() == 0.0:
        return 0.0
    rho = stats.spearmanr(a, b).statistic
    return float(rho) if np.isfinite(rho) else 0.0


def feature_target_correlation(
    X: np.ndarray, y: np.ndarray, method: str = "pearson"
) -> np.ndarray:
    """Correlation of every feature column with the target, vectorised.

    Returns an array of shape ``(n_features,)``.  Constant columns get 0.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
        raise ValueError(
            f"X must be 2-D and y 1-D with matching length, got {X.shape}, {y.shape}"
        )
    if method == "spearman":
        X = stats.rankdata(X, axis=0)
        y = stats.rankdata(y)
    elif method != "pearson":
        raise ValueError(f"method must be 'pearson' or 'spearman', got {method!r}")
    X_centered = X - X.mean(axis=0)
    y_centered = y - y.mean()
    x_std = X_centered.std(axis=0)
    y_std = y_centered.std()
    if y_std == 0.0:
        return np.zeros(X.shape[1])
    with np.errstate(divide="ignore", invalid="ignore"):
        corr = (X_centered * y_centered[:, None]).mean(axis=0) / (x_std * y_std)
    return np.where(x_std == 0.0, 0.0, corr)


def feature_feature_correlation(
    X: np.ndarray, columns: np.ndarray, method: str = "pearson"
) -> np.ndarray:
    """Pairwise correlation matrix among the given feature columns.

    Only the requested ``columns`` are correlated (CFS never needs the full
    1800x1800 matrix, just the growing selected subset), so the cost stays
    linear in the sweep length.
    """
    X = np.asarray(X, dtype=np.float64)
    sub = X[:, np.asarray(columns, dtype=np.intp)]
    if method == "spearman":
        sub = stats.rankdata(sub, axis=0)
    elif method != "pearson":
        raise ValueError(f"method must be 'pearson' or 'spearman', got {method!r}")
    centered = sub - sub.mean(axis=0)
    std = centered.std(axis=0)
    safe_std = np.where(std == 0.0, 1.0, std)
    normalised = centered / safe_std
    corr = normalised.T @ normalised / sub.shape[0]
    dead = std == 0.0
    corr[dead, :] = 0.0
    corr[:, dead] = 0.0
    np.fill_diagonal(corr, 1.0)
    return corr
