"""The diagnostic record emitted by every lint rule.

A diagnostic pins one finding to a ``path:line:column`` location plus
the rule that produced it.  Keeping this a frozen dataclass makes
findings hashable (deduplication), orderable (stable report output),
and trivially serialisable (the JSON reporter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = ["Diagnostic", "PARSE_ERROR_ID"]

PARSE_ERROR_ID = "REP000"
"""Rule id reserved for files the linter cannot parse at all."""


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One lint finding at a specific source location.

    Attributes
    ----------
    path:
        File the finding was made in (as given to the linter).
    line, column:
        1-based line and 0-based column of the offending node.
    rule_id:
        Stable machine identifier, e.g. ``"REP102"``.
    rule_name:
        Human-readable slug, e.g. ``"no-float-equality"``.
    message:
        What is wrong and what to do instead.
    """

    path: str
    line: int
    column: int
    rule_id: str
    rule_name: str
    message: str

    def location(self) -> str:
        """Return the ``path:line:column`` prefix used by reporters."""
        return f"{self.path}:{self.line}:{self.column}"

    def as_dict(self) -> Dict[str, Any]:
        """Return a JSON-serialisable view of the finding."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule_id": self.rule_id,
            "rule_name": self.rule_name,
            "message": self.message,
        }

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Order findings by file, then position, then rule id."""
        return (self.path, self.line, self.column, self.rule_id)
