"""Performance layer: deterministic parallel execution and benchmarking.

``repro.perf`` makes the training/evaluation hot path fast without
changing a single number:

* :mod:`repro.perf.parallel` -- a seeded, deterministic thread/process
  map with ordered result collection, a ``REPRO_N_JOBS`` environment
  override, and graceful serial fallback.  The CQR experiment grid is
  embarrassingly parallel (split-conformal calibration is independent
  per model and per fold), so cross-validation folds, experiment grid
  cells, and the lo/hi quantile pair of a band all fan out through it.
  :func:`parallel_map_outcomes` is the resilient variant: per-task
  :class:`TaskOutcome` capture, retry policies, and watchdog timeouts
  from :mod:`repro.runtime`.
* :mod:`repro.perf.bench` -- a benchmark recorder that times training
  stages and writes machine-readable JSON baselines
  (``BENCH_training.json``) so performance regressions are diffable
  across commits.

See ``docs/PERFORMANCE.md`` for the environment knobs and the
determinism guarantees.
"""

from repro.perf.bench import (
    BenchRecorder,
    BenchTiming,
    load_report,
    regressions,
    time_call,
)
from repro.perf.parallel import (
    TaskOutcome,
    effective_n_jobs,
    parallel_map,
    parallel_map_outcomes,
    spawn_seeds,
)

__all__ = [
    "BenchRecorder",
    "BenchTiming",
    "TaskOutcome",
    "effective_n_jobs",
    "load_report",
    "parallel_map",
    "parallel_map_outcomes",
    "regressions",
    "spawn_seeds",
    "time_call",
]
