"""Conformal interval prediction -- the paper's core methodology.

This package implements Section III of the paper:

* :class:`~repro.core.split_cp.SplitConformalRegressor` -- split conformal
  prediction around any point regressor (Eqs. 7-8): constant-width
  intervals with a finite-sample coverage guarantee.
* :class:`~repro.core.cqr.ConformalizedQuantileRegressor` -- CQR
  (Romano et al., 2019; Eqs. 9-10): conformal calibration of a quantile
  band, keeping the band's input-adaptive shape while restoring the
  coverage guarantee that plain QR lacks.

Extensions beyond the paper (exercised by the ablation benchmarks):

* :mod:`repro.core.cv_plus` -- CV+ and Jackknife+ intervals that avoid
  sacrificing calibration data,
* :mod:`repro.core.mondrian` -- group-conditional (Mondrian) calibration,
  e.g. separate guarantees per temperature corner,
* :mod:`repro.core.adaptive` -- online conformal inference for in-field
  drift (the paper's stated future work).

Shared machinery lives in :mod:`repro.core.calibration` (the
finite-sample quantile of Eq. 7/9), :mod:`repro.core.scores`
(conformity scores), and :mod:`repro.core.intervals` (the
:class:`PredictionIntervals` result container).
"""

from repro.core.adaptive import AdaptiveConformalPredictor
from repro.core.calibration import (
    conformal_quantile,
    conformal_quantile_sorted,
    effective_coverage_level,
)
from repro.core.cqr import ConformalizedQuantileRegressor
from repro.core.cv_plus import CVPlusRegressor, JackknifePlusRegressor
from repro.core.intervals import PredictionIntervals
from repro.core.mondrian import MondrianConformalRegressor, MondrianFallbackWarning
from repro.core.scores import (
    absolute_residual_score,
    cqr_score,
    normalized_residual_score,
)
from repro.core.split_cp import SplitConformalRegressor

__all__ = [
    "AdaptiveConformalPredictor",
    "CVPlusRegressor",
    "ConformalizedQuantileRegressor",
    "JackknifePlusRegressor",
    "MondrianConformalRegressor",
    "MondrianFallbackWarning",
    "PredictionIntervals",
    "SplitConformalRegressor",
    "absolute_residual_score",
    "conformal_quantile",
    "conformal_quantile_sorted",
    "cqr_score",
    "effective_coverage_level",
    "normalized_residual_score",
]
