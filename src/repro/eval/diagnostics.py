"""Coverage and calibration diagnostics for interval predictors.

Beyond the two headline metrics (length, coverage), a silicon quality
team auditing an interval predictor needs to know *where* coverage is
spent: is the 90 % marginal rate hiding 70 % on defective parts?  Does
the nominal level track the empirical one across alphas?  This module
provides those reports:

* :func:`coverage_by_group` -- empirical coverage/width per chip group
  (e.g. defective vs healthy, per speed grade, per wafer zone),
* :func:`calibration_curve` -- empirical coverage as a function of the
  nominal level, for any refittable interval-model builder,
* :func:`width_quantiles` -- the spread of interval widths (a constant-
  width method shows zero spread; an adaptive one should not),
* :class:`CoverageReport` -- a small container that renders as text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Sequence, Tuple

import numpy as np

from repro.core.intervals import PredictionIntervals
from repro.eval.reporting import format_table

__all__ = [
    "CoverageReport",
    "calibration_curve",
    "coverage_by_group",
    "width_quantiles",
]


@dataclass(frozen=True)
class CoverageReport:
    """Per-group coverage/width summary with a text rendering."""

    groups: Tuple[Hashable, ...]
    counts: Tuple[int, ...]
    coverages: Tuple[float, ...]
    mean_widths: Tuple[float, ...]

    def render(self, title: str = "Coverage by group") -> str:
        rows = [
            [str(group), count, coverage * 100.0, width]
            for group, count, coverage, width in zip(
                self.groups, self.counts, self.coverages, self.mean_widths
            )
        ]
        return format_table(
            ["Group", "Chips", "Coverage (%)", "Mean width"], rows, title=title
        )

    def worst_group(self) -> Hashable:
        """The group with the lowest empirical coverage."""
        return self.groups[int(np.argmin(self.coverages))]


def coverage_by_group(
    intervals: PredictionIntervals,
    y: np.ndarray,
    groups: Sequence[Hashable],
) -> CoverageReport:
    """Empirical coverage and width per group label.

    ``groups`` carries one hashable label per sample (booleans, strings,
    bin indices...).  Groups are reported in sorted order.
    """
    y = np.asarray(y, dtype=np.float64)
    groups = np.asarray(groups)
    if groups.shape[0] != len(intervals):
        raise ValueError(
            f"{groups.shape[0]} group labels for {len(intervals)} intervals"
        )
    covered = intervals.contains(y)
    width = intervals.width
    labels: List[Hashable] = sorted(set(groups.tolist()), key=str)
    counts, coverages, widths = [], [], []
    for label in labels:
        members = groups == label
        counts.append(int(members.sum()))
        coverages.append(float(covered[members].mean()))
        widths.append(float(width[members].mean()))
    return CoverageReport(
        groups=tuple(labels),
        counts=tuple(counts),
        coverages=tuple(coverages),
        mean_widths=tuple(widths),
    )


def calibration_curve(
    builder: Callable[[float], object],
    X_test: np.ndarray,
    y_test: np.ndarray,
    alphas: Sequence[float] = (0.05, 0.1, 0.2, 0.3, 0.5),
) -> Dict[float, float]:
    """Empirical coverage at each nominal level.

    ``builder(alpha)`` must return a *fitted* object exposing
    ``predict_interval(X)``.  A well-calibrated method tracks the
    diagonal ``coverage ≈ 1 − alpha``; an uncalibrated one (plain QR, GP)
    drifts below it.
    """
    y_test = np.asarray(y_test, dtype=np.float64)
    curve: Dict[float, float] = {}
    for alpha in alphas:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        model = builder(alpha)
        intervals = model.predict_interval(X_test)
        if not isinstance(intervals, PredictionIntervals):
            intervals = PredictionIntervals(*intervals)
        curve[alpha] = intervals.coverage(y_test)
    return curve


def width_quantiles(
    intervals: PredictionIntervals,
    quantiles: Sequence[float] = (0.1, 0.5, 0.9),
) -> Dict[float, float]:
    """Selected quantiles of the per-sample interval width distribution."""
    for q in quantiles:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantiles must be in [0, 1], got {q}")
    width = intervals.width
    return {float(q): float(np.quantile(width, q)) for q in quantiles}
