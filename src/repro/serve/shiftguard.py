"""Shift sentinels wired into the serving loop.

:class:`~repro.robust.flow.RobustVminFlow` already watches *realized*
coverage -- but realized coverage is a lagging signal: it needs labels,
and by the time the rolling rate crosses the alarm threshold the service
has been quietly under-covering for a window's worth of chips.  The
:mod:`repro.shift` sentinels give the serving layer two leading signals:

* the :class:`~repro.shift.ConformalTestMartingale` tests the
  *exchangeability* of the streamed conformity scores against the frozen
  calibration set -- the exact assumption split CQR's guarantee rests on
  -- and rejects it anytime, at a controlled false-alarm rate, often
  long before the coverage monitor has enough labels to react;
* the :class:`~repro.shift.CovariateShiftDetector` watches the monitor
  *features* (no labels needed at all), so a fab excursion or a sensor
  re-referencing that does not yet show up in labels is still caught.

:class:`ShiftGuard` bundles both, plus per-wafer-zone (Mondrian)
:class:`~repro.robust.monitoring.CoverageMonitor` instances, behind one
``arm``/``observe`` interface that
:class:`~repro.serve.service.VminServingService` drives from its label
feedback loop.  Every :meth:`ShiftGuard.observe` returns a
:class:`ShiftVerdict`; the service maps new alarms onto audited
``EXCHANGEABILITY_ALARM`` / ``COVARIATE_SHIFT`` health transitions.

The sentinels' references come from the served flow itself (its frozen
calibration scores and features), so re-arming after a hot-swap
automatically re-baselines them on the new bundle.  After a successful
*weighted* repair (:meth:`~repro.serve.service.VminServingService.
repair_shift`) the guard is deliberately disarmed instead: the operating
distribution is then legitimately shifted and compensated, and sentinels
referenced against the stale calibration set would re-alarm on the very
shift that was just repaired.  They return at the next republication.
See ``docs/SHIFT.md`` for the full threat model.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.robust.flow import RobustVminFlow
from repro.robust.monitoring import CoverageMonitor
from repro.shift import ConformalTestMartingale, CovariateShiftDetector

__all__ = ["ShiftGuard", "ShiftVerdict"]


@dataclass(frozen=True)
class ShiftVerdict:
    """Snapshot of every sentinel's alarm state after one observation.

    Attributes
    ----------
    exchangeability_alarm:
        The conformal test martingale has rejected exchangeability of
        the score stream (latched until the guard is re-armed).
    covariate_alarm:
        The PSI detector found enough monitor features drifted past its
        threshold (latched until re-arm).
    zone_alarms:
        Wafer-zone names whose Mondrian coverage monitor is currently in
        alarm (hysteresis: cleared again once the zone recovers).
    n_observed:
        Labelled chips streamed through the guard since it was armed.
    """

    exchangeability_alarm: bool
    covariate_alarm: bool
    zone_alarms: Tuple[str, ...]
    n_observed: int

    def any_alarm(self) -> bool:
        """Whether any sentinel is currently alarmed."""
        return (
            self.exchangeability_alarm
            or self.covariate_alarm
            or bool(self.zone_alarms)
        )

    def describe(self) -> str:
        """Human-readable one-line audit entry."""
        parts = []
        if self.exchangeability_alarm:
            parts.append("exchangeability rejected")
        if self.covariate_alarm:
            parts.append("covariate shift")
        if self.zone_alarms:
            parts.append(f"zones {', '.join(self.zone_alarms)} under-covering")
        status = "; ".join(parts) if parts else "quiet"
        return f"shift sentinels after {self.n_observed} labels: {status}"


class ShiftGuard:
    """Exchangeability, covariate, and per-zone sentinels for one service.

    Parameters
    ----------
    martingale:
        Template :class:`~repro.shift.ConformalTestMartingale`; copied
        (never mutated) at every :meth:`arm`.  ``None`` uses the
        default configuration with a fixed tie-break seed.
    detector:
        Template :class:`~repro.shift.CovariateShiftDetector`; copied at
        every :meth:`arm`.  ``None`` uses a configuration tuned on the
        synthetic fleet (PSI threshold 1.0, 10% of features) where
        ordinary lot-to-lot wafer offsets stay quiet and a >=1-sigma
        process-corner move alarms decisively.
    feature_columns:
        Column indices (into the flow's feature matrix) the covariate
        detector watches.  ``None`` watches every monitor column of the
        served flow -- fine for narrow models, but subsampling (e.g.
        every 8th monitor) keeps per-batch PSI evaluation cheap.
    zone_window, zone_tolerance, zone_min_observations:
        Rolling-window parameters of the per-wafer-zone Mondrian
        :class:`~repro.robust.monitoring.CoverageMonitor` instances
        (target coverage comes from the armed flow's ``alpha``).
    """

    def __init__(
        self,
        martingale: Optional[ConformalTestMartingale] = None,
        detector: Optional[CovariateShiftDetector] = None,
        feature_columns: Optional[Sequence[int]] = None,
        zone_window: int = 40,
        zone_tolerance: float = 0.10,
        zone_min_observations: int = 20,
    ) -> None:
        if zone_window < 1:
            raise ValueError(f"zone_window must be >= 1, got {zone_window}")
        if not 0.0 <= zone_tolerance < 1.0:
            raise ValueError(
                f"zone_tolerance must be in [0, 1), got {zone_tolerance}"
            )
        if zone_min_observations < 1:
            raise ValueError(
                f"zone_min_observations must be >= 1, got {zone_min_observations}"
            )
        self.martingale = martingale
        self.detector = detector
        self.feature_columns = feature_columns
        self.zone_window = int(zone_window)
        self.zone_tolerance = float(zone_tolerance)
        self.zone_min_observations = int(zone_min_observations)
        self.martingale_: Optional[ConformalTestMartingale] = None
        self.detector_: Optional[CovariateShiftDetector] = None
        self.zone_monitors_: Dict[str, CoverageMonitor] = {}
        self.n_observed_ = 0
        self._columns: Optional[np.ndarray] = None
        self._target: Optional[float] = None

    @property
    def armed(self) -> bool:
        """Whether the sentinels currently hold a reference."""
        return self.martingale_ is not None

    def arm(self, flow: RobustVminFlow) -> "ShiftGuard":
        """Baseline every sentinel on a fitted flow's calibration data.

        Raises ``RuntimeError`` when the flow is unfitted or was
        published before the shift layer existed (no frozen calibration
        features) -- the caller decides whether to serve unguarded.
        """
        if flow.primary_ is None:
            raise RuntimeError("cannot arm a shift guard on an unfitted flow")
        scores = flow.calibration_scores()
        features = flow.calibration_features()
        if self.feature_columns is not None:
            columns = np.asarray(self.feature_columns, dtype=np.int64)
            if columns.ndim != 1 or columns.shape[0] == 0:
                raise ValueError("feature_columns must be a non-empty 1-D sequence")
            if columns.min() < 0 or columns.max() >= features.shape[1]:
                raise ValueError(
                    f"feature_columns must index into {features.shape[1]} "
                    f"features, got range [{columns.min()}, {columns.max()}]"
                )
        else:
            columns = np.asarray(flow.monitor_columns_, dtype=np.int64)
        martingale = (
            copy.deepcopy(self.martingale)
            if self.martingale is not None
            else ConformalTestMartingale(random_state=0)
        )
        detector = (
            copy.deepcopy(self.detector)
            if self.detector is not None
            else CovariateShiftDetector(
                psi_threshold=1.0, alarm_fraction=0.10, min_observations=40
            )
        )
        self.martingale_ = martingale.arm(scores)
        self.detector_ = detector.arm(features[:, columns])
        self.zone_monitors_ = {}
        self.n_observed_ = 0
        self._columns = columns
        self._target = 1.0 - float(flow.alpha)
        return self

    def disarm(self) -> None:
        """Drop all sentinel state; :meth:`observe` becomes unavailable."""
        self.martingale_ = None
        self.detector_ = None
        self.zone_monitors_ = {}
        self.n_observed_ = 0
        self._columns = None
        self._target = None

    def observe(
        self,
        flow: RobustVminFlow,
        X: np.ndarray,
        y: np.ndarray,
        zones: Optional[Sequence] = None,
    ) -> ShiftVerdict:
        """Stream one labelled batch through every sentinel.

        Feeds the conformity scores of ``(X, y)`` to the martingale, the
        watched feature columns to the covariate detector (rows with
        damaged values in those columns are skipped -- data health is
        the flow guard's jurisdiction, not a distribution question), and
        -- when ``zones`` labels each chip with its wafer zone -- the
        served interval's hit/miss outcome to that zone's Mondrian
        coverage monitor.  Returns the post-batch :class:`ShiftVerdict`.
        """
        if not self.armed:
            raise RuntimeError("shift guard is not armed")
        scores = flow.conformity_scores(X, y)
        self.martingale_.observe(scores)
        rows = np.asarray(X, dtype=np.float64)[:, self._columns]
        finite = np.all(np.isfinite(rows), axis=1)
        if np.any(finite):
            self.detector_.observe(rows[finite])
        if zones is not None:
            labels = np.asarray(y, dtype=np.float64)
            zone_labels = np.asarray(zones)
            if zone_labels.shape[0] != labels.shape[0]:
                raise ValueError(
                    f"zones has {zone_labels.shape[0]} entries for "
                    f"{labels.shape[0]} labels"
                )
            prediction = flow.predict_interval(X)
            contains = prediction.intervals.contains(labels)
            for zone in np.unique(zone_labels):
                monitor = self.zone_monitors_.get(str(zone))
                if monitor is None:
                    monitor = CoverageMonitor(
                        target_coverage=self._target,
                        window=self.zone_window,
                        tolerance=self.zone_tolerance,
                        min_observations=self.zone_min_observations,
                    )
                    self.zone_monitors_[str(zone)] = monitor
                monitor.update(contains[zone_labels == zone])
        self.n_observed_ += int(scores.shape[0])
        return self.verdict()

    def verdict(self) -> ShiftVerdict:
        """Current alarm snapshot without observing anything new."""
        if not self.armed:
            raise RuntimeError("shift guard is not armed")
        return ShiftVerdict(
            exchangeability_alarm=bool(self.martingale_.in_alarm_),
            covariate_alarm=bool(self.detector_.in_alarm_),
            zone_alarms=tuple(
                sorted(
                    name
                    for name, monitor in self.zone_monitors_.items()
                    if monitor.in_alarm_
                )
            ),
            n_observed=self.n_observed_,
        )

    def zone_coverage(self) -> Dict[str, float]:
        """Rolling coverage per wafer zone observed so far."""
        return {
            name: monitor.rolling_coverage()
            for name, monitor in self.zone_monitors_.items()
            if monitor.n_observed > 0
        }
