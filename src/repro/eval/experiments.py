"""Declarative experiment runners reproducing the paper's evaluation.

Two entry points mirror the paper's two result families:

* :func:`run_point_experiment` -- one cell of Fig. 2: a point model's
  4-fold-CV :math:`R^2`/RMSE at one (temperature, read point),
* :func:`run_region_experiment` -- one row-cell of Table III: a region
  method's average interval length and coverage at one
  (temperature, read point).

Model configurations follow Section IV-C exactly in the ``full`` profile:

* LR -- plain linear regression on CFS-selected features (best of 1..10),
* GP -- RBF kernel, marginal-likelihood fit, CFS features,
* XGBoost -- our :class:`~repro.models.gbm.GradientBoostingRegressor`
  with package defaults, all raw features,
* CatBoost -- our oblivious boosting with 100 trees, all raw features,
* NN -- 16-unit ReLU MLP, Adam(0.01), 3000 epochs, L2 0.1, CFS features.

The ``fast`` profile keeps every algorithm identical but shrinks budgets
(NN epochs, boosting rounds, histogram bins, CFS sweep) so a laptop run
of the complete benchmark suite stays in minutes; the benchmark harness
selects the profile via the ``REPRO_BENCH`` environment variable.
"""

from __future__ import annotations

import enum
import os
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.cqr import ConformalizedQuantileRegressor
from repro.core.split_cp import split_train_calibration
from repro.eval.crossval import (
    IntervalCVResult,
    KFold,
    PointCVResult,
    cross_validate_intervals,
    cross_validate_point,
    fold_row_subsets,
)
from repro.features.cfs import CFSSelector
from repro.features.selection import CFSSelectedRegressor
from repro.features.preprocessing import StandardScaler
from repro.models.base import BaseRegressor, check_random_state, clone
from repro.models.binning import (
    BinnedDataset,
    FeatureBinner,
    dataset_digest,
    seed_bin_cache,
    shared_binned_dataset,
)
from repro.models.gbm import GradientBoostingRegressor
from repro.models.gp import GaussianProcessRegressor
from repro.models.linear import LinearRegression, QuantileLinearRegression
from repro.models.nn import MLPRegressor
from repro.models.oblivious import ObliviousBoostingRegressor
from repro.models.quantile import PackageDefaultQuantileBand, QuantileBandRegressor
from repro.perf.parallel import parallel_map_outcomes
from repro.perf.shm import ArraySpec, SharedArrayBundle, attach_array
from repro.runtime.checkpoint import RunJournal, cell_fingerprint
from repro.runtime.retry import RetryPolicy
from repro.silicon.dataset import SiliconDataset

__all__ = [
    "FailureRecord",
    "FeatureSet",
    "GridResult",
    "POINT_MODEL_NAMES",
    "REGION_METHOD_NAMES",
    "ExperimentProfile",
    "run_point_experiment",
    "run_point_grid",
    "run_region_experiment",
    "run_region_grid",
]

POINT_MODEL_NAMES = ("LR", "GP", "XGBoost", "CatBoost", "NN")
REGION_METHOD_NAMES = (
    "GP",
    "QR LR",
    "QR NN",
    "QR XGBoost",
    "QR CatBoost",
    "CQR LR",
    "CQR NN",
    "CQR XGBoost",
    "CQR CatBoost",
)

_RAW_MODELS = {"XGBoost", "CatBoost"}  # models fed all raw columns; the
# rest (LR/GP/NN) receive CFS-selected features per Section IV-C


class FeatureSet(enum.Enum):
    """The three feature configurations of Fig. 3 / Table IV."""

    PARAMETRIC = "parametric"
    ONCHIP = "onchip"
    BOTH = "onchip_and_parametric"

    @property
    def include_parametric(self) -> bool:
        return self in (FeatureSet.PARAMETRIC, FeatureSet.BOTH)

    @property
    def include_onchip(self) -> bool:
        return self in (FeatureSet.ONCHIP, FeatureSet.BOTH)


@dataclass(frozen=True)
class ExperimentProfile:
    """Computation budget for one experiment run."""

    nn_epochs: int = 3000
    gp_restarts: int = 2
    xgb_estimators: int = 100
    xgb_max_bins: int = 32
    xgb_tree_method: str = "hist"
    """Split finder for the XGBoost-style model: ``"hist"`` (quantile-
    binned histogram scan, the default) or ``"exact"`` (every boundary).
    The perf benchmark pins ``"exact"`` to time the pre-histogram
    baseline; results on the 156-chip data are indistinguishable."""
    catboost_estimators: int = 100
    catboost_max_bins: int = 32
    cfs_k_values: Tuple[int, ...] = tuple(range(1, 11))
    n_folds: int = 4
    catboost_quantile_trap: bool = True
    """Reproduce the CatBoost package-default quantile behaviour
    (``loss_function='Quantile'`` means alpha=0.5): both band models are
    trained on the median, matching the paper's pathological "QR CatBoost"
    row and its degenerate-but-short "CQR CatBoost".  Set ``False`` for
    properly configured alpha/2 and 1-alpha/2 quantiles (the ablation)."""

    @classmethod
    def full(cls) -> "ExperimentProfile":
        """Paper-exact configuration (Section IV-C)."""
        return cls()

    @classmethod
    def fast(cls) -> "ExperimentProfile":
        """Same algorithms, smaller budgets; for interactive runs."""
        return cls(
            nn_epochs=800,
            gp_restarts=1,
            xgb_estimators=50,
            xgb_max_bins=16,
            catboost_estimators=100,
            catboost_max_bins=16,
            cfs_k_values=(4, 8, 10),
            n_folds=4,
        )

    @classmethod
    def from_name(cls, name: str) -> "ExperimentProfile":
        """Resolve a profile by name ('full', 'fast', or 'smoke')."""
        factories = {"full": cls.full, "fast": cls.fast, "smoke": cls.smoke}
        if name not in factories:
            raise ValueError(
                f"unknown profile {name!r}; expected one of {sorted(factories)}"
            )
        return factories[name]()

    @classmethod
    def smoke(cls) -> "ExperimentProfile":
        """Minimal budgets for CI smoke tests."""
        return cls(
            nn_epochs=150,
            gp_restarts=0,
            xgb_estimators=15,
            xgb_max_bins=8,
            catboost_estimators=20,
            catboost_max_bins=8,
            cfs_k_values=(5,),
            n_folds=2,
        )


# ---------------------------------------------------------------------------
# model templates
# ---------------------------------------------------------------------------

def _point_template(
    name: str, profile: ExperimentProfile, seed: int
) -> BaseRegressor:
    """Unfitted point model per the paper's Section IV-C configuration."""
    if name == "LR":
        return LinearRegression()
    if name == "GP":
        return GaussianProcessRegressor(
            n_restarts=profile.gp_restarts, random_state=seed
        )
    if name == "XGBoost":
        return GradientBoostingRegressor(
            n_estimators=profile.xgb_estimators,
            max_bins=profile.xgb_max_bins,
            tree_method=profile.xgb_tree_method,
            random_state=seed,
        )
    if name == "CatBoost":
        return ObliviousBoostingRegressor(
            n_estimators=profile.catboost_estimators,
            max_bins=profile.catboost_max_bins,
            random_state=seed,
        )
    if name == "NN":
        return MLPRegressor(epochs=profile.nn_epochs, random_state=seed)
    raise ValueError(f"unknown point model {name!r}; expected {POINT_MODEL_NAMES}")


def _quantile_template(
    name: str, profile: ExperimentProfile, seed: int
) -> BaseRegressor:
    """Unfitted quantile-capable template for the QR/CQR methods."""
    if name == "LR":
        return QuantileLinearRegression()
    if name == "NN":
        return MLPRegressor(epochs=profile.nn_epochs, quantile=0.5, random_state=seed)
    if name == "XGBoost":
        return GradientBoostingRegressor(
            n_estimators=profile.xgb_estimators,
            max_bins=profile.xgb_max_bins,
            tree_method=profile.xgb_tree_method,
            quantile=0.5,
            random_state=seed,
        )
    if name == "CatBoost":
        return ObliviousBoostingRegressor(
            n_estimators=profile.catboost_estimators,
            max_bins=profile.catboost_max_bins,
            quantile=0.5,
            random_state=seed,
        )
    raise ValueError(
        f"unknown quantile base model {name!r}; expected LR/NN/XGBoost/CatBoost"
    )


# ---------------------------------------------------------------------------
# preprocessing wrappers
# ---------------------------------------------------------------------------

class _SelectedFeatureModel:
    """CFS selection + standardisation + model, fitted leak-free per fold."""

    def __init__(self, model, k: int, scale: bool) -> None:
        self._model = model
        self._k = k
        self._scale = scale

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_SelectedFeatureModel":
        self._selector = CFSSelector(k_max=self._k).fit(X, y)
        X = self._selector.transform(X)
        if self._scale:
            self._scaler = StandardScaler().fit(X)
            X = self._scaler.transform(X)
        else:
            self._scaler = None
        self._model.fit(X, y)
        return self

    def _transform(self, X: np.ndarray) -> np.ndarray:
        X = self._selector.transform(X)
        if self._scaler is not None:
            X = self._scaler.transform(X)
        return X

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._model.predict(self._transform(X))

    def predict_interval(self, X: np.ndarray):
        return self._model.predict_interval(self._transform(X))


class _GPIntervalAdapter:
    """Expose a fixed-alpha ``predict_interval`` on a fitted GP."""

    def __init__(self, gp: GaussianProcessRegressor, alpha: float) -> None:
        self._gp = gp
        self._alpha = alpha

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_GPIntervalAdapter":
        self._gp.fit(X, y)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self._gp.predict(X)

    def predict_interval(self, X: np.ndarray):
        return self._gp.predict_interval(X, alpha=self._alpha)


# ---------------------------------------------------------------------------
# experiment runners
# ---------------------------------------------------------------------------

VMIN_SCALE_MV = 1000.0
"""Targets are modelled in millivolts, the unit every silicon team uses
for Vmin (and the unit of all paper tables).  This matters beyond
cosmetics: pinball-gradient boosting takes O(learning_rate) steps in
*target units* per round, so the XGBoost QR behaviour of Table III only
reproduces at mV scale -- in volts the quantile models oscillate wildly.
Scale-equivariant models (LR, GP, NN, CatBoost exact-leaf) are unaffected.
"""


def _experiment_data(
    dataset: SiliconDataset,
    temperature_c: float,
    hours: int,
    feature_set: FeatureSet,
) -> Tuple[np.ndarray, np.ndarray]:
    X, _ = dataset.features(
        hours,
        include_parametric=feature_set.include_parametric,
        include_onchip=feature_set.include_onchip,
    )
    y = dataset.target(temperature_c, hours) * VMIN_SCALE_MV
    return X, y


def run_point_experiment(
    dataset: SiliconDataset,
    model_name: str,
    temperature_c: float,
    hours: int,
    feature_set: FeatureSet = FeatureSet.BOTH,
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    n_jobs: Optional[int] = None,
) -> PointCVResult:
    """One Fig.-2 cell: CV point-prediction quality of one model.

    For CFS-based models (LR/GP/NN) the CFS size is swept over
    ``profile.cfs_k_values`` and the best mean test :math:`R^2` is
    reported -- the paper's "pick 1 to 10 features and report the best
    testing scores" protocol.  ``n_jobs`` parallelises the CV folds;
    every metric is identical to the serial run.
    """
    profile = profile or ExperimentProfile.full()
    if model_name not in POINT_MODEL_NAMES:
        raise ValueError(
            f"unknown point model {model_name!r}; expected {POINT_MODEL_NAMES}"
        )
    X, y = _experiment_data(dataset, temperature_c, hours, feature_set)
    kfold = KFold(n_splits=profile.n_folds, shuffle=True, random_state=seed)

    if model_name in _RAW_MODELS:
        template = _point_template(model_name, profile, seed)

        def builder(X_train, y_train):
            return clone(template).fit(X_train, y_train)

        return cross_validate_point(builder, X, y, kfold, n_jobs=n_jobs)

    needs_scaling = model_name in ("GP", "NN")
    best: Optional[PointCVResult] = None
    for k in profile.cfs_k_values:
        template = _point_template(model_name, profile, seed)

        def builder(X_train, y_train, k=k, template=template):
            return _SelectedFeatureModel(
                clone(template), k=k, scale=needs_scaling
            ).fit(X_train, y_train)

        result = cross_validate_point(builder, X, y, kfold, n_jobs=n_jobs)
        if best is None or result.r2 > best.r2:
            best = result
    return best


def run_region_experiment(
    dataset: SiliconDataset,
    method_name: str,
    temperature_c: float,
    hours: int,
    feature_set: FeatureSet = FeatureSet.BOTH,
    alpha: float = 0.1,
    calibration_fraction: float = 0.25,
    cfs_k: int = 10,
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    n_jobs: Optional[int] = None,
) -> IntervalCVResult:
    """One Table-III cell: CV interval length/coverage of one method.

    ``method_name`` is one of :data:`REGION_METHOD_NAMES`.  QR methods are
    raw quantile bands (no calibration); CQR methods hold out
    ``calibration_fraction`` of the training fold (paper: 25 %).  LR/NN
    bases use ``cfs_k`` CFS features (with scaling for NN); boosting bases
    see all raw columns -- the Section IV-C/IV-E configuration.
    ``n_jobs`` parallelises the CV folds; every metric is identical to
    the serial run.
    """
    profile = profile or ExperimentProfile.full()
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if method_name not in REGION_METHOD_NAMES:
        raise ValueError(
            f"unknown region method {method_name!r}; expected {REGION_METHOD_NAMES}"
        )
    X, y = _experiment_data(dataset, temperature_c, hours, feature_set)
    kfold = KFold(n_splits=profile.n_folds, shuffle=True, random_state=seed)

    if method_name == "GP":

        def builder(X_train, y_train):
            gp = GaussianProcessRegressor(
                n_restarts=profile.gp_restarts, random_state=seed
            )
            model = _SelectedFeatureModel(
                _GPIntervalAdapter(gp, alpha), k=cfs_k, scale=True
            )
            return model.fit(X_train, y_train)

        return cross_validate_intervals(builder, X, y, kfold, n_jobs=n_jobs)

    family, base_name = method_name.split(" ", 1)
    template = _quantile_template(base_name, profile, seed)
    if base_name in ("LR", "NN"):
        # Selection lives INSIDE the template so conformal wrappers refit
        # it on the proper-training split only -- selecting features on
        # data that later calibrates the intervals silently voids the
        # coverage guarantee (see CFSSelectedRegressor).
        template = CFSSelectedRegressor(
            template, k=cfs_k, scale=(base_name == "NN"), quantile=0.5
        )
    # The paper configures CatBoost with package defaults; the package's
    # 'Quantile' loss defaults to alpha=0.5, so both band models fit the
    # median (see PackageDefaultQuantileBand).
    trap = base_name == "CatBoost" and profile.catboost_quantile_trap

    def _make_band():
        if trap:
            return PackageDefaultQuantileBand(
                clone(template), alpha=alpha, random_state=seed
            )
        return QuantileBandRegressor(clone(template), alpha=alpha)

    if family == "QR":

        def builder(X_train, y_train):
            return _make_band().fit(X_train, y_train)

    elif family == "CQR":

        def builder(X_train, y_train):
            cqr = ConformalizedQuantileRegressor(
                None if trap else clone(template),
                alpha=alpha,
                calibration_fraction=calibration_fraction,
                band_template=_make_band() if trap else None,
                random_state=seed,
            )
            return cqr.fit(X_train, y_train)

    else:  # pragma: no cover - guarded by REGION_METHOD_NAMES check
        raise ValueError(f"unknown method family {family!r}")

    return cross_validate_intervals(builder, X, y, kfold, n_jobs=n_jobs)


# ---------------------------------------------------------------------------
# resilient grid execution
# ---------------------------------------------------------------------------

GridCell = Tuple[str, float, int]
GridCVResult = Union[PointCVResult, IntervalCVResult]


@dataclass(frozen=True)
class FailureRecord:
    """One grid cell that failed after every allowed attempt.

    Attributes
    ----------
    key:
        The ``(name, temperature_c, hours)`` cell identity.
    fingerprint:
        The journal fingerprint of the cell (resume skips it only once
        it eventually succeeds and is recorded).
    error_type, message:
        Final exception class name and message.
    attempts:
        Executions made, retries included.
    timed_out:
        Whether the final failure was a watchdog deadline overrun.
    """

    key: GridCell
    fingerprint: str
    error_type: str
    message: str
    attempts: int
    timed_out: bool


class GridResult(Dict[GridCell, GridCVResult]):
    """Grid results (an ordered cell -> result dict) plus execution metadata.

    A drop-in replacement for the plain dict the grid runners used to
    return: iteration order is cell order, lookups are unchanged.  On
    top of that it carries the structured failure list (cells that
    exhausted their retries -- only ever non-empty with
    ``on_error="capture"``) and the per-cell attempt counts the stress
    harness asserts recovery with.
    """

    def __init__(
        self,
        results: Mapping[GridCell, GridCVResult],
        failures: Sequence[FailureRecord] = (),
        attempts: Optional[Mapping[GridCell, int]] = None,
    ) -> None:
        super().__init__(results)
        self.failures: Tuple[FailureRecord, ...] = tuple(failures)
        self.attempts: Dict[GridCell, int] = dict(attempts or {})

    @property
    def ok(self) -> bool:
        """Whether every cell of the grid completed."""
        return not self.failures

    @property
    def n_retried(self) -> int:
        """Number of cells that needed more than one attempt."""
        return sum(1 for count in self.attempts.values() if count > 1)


def _point_payload(result: PointCVResult) -> Dict[str, Any]:
    return {
        "type": "point",
        "r2_per_fold": list(result.r2_per_fold),
        "rmse_per_fold": list(result.rmse_per_fold),
    }


def _interval_payload(result: IntervalCVResult) -> Dict[str, Any]:
    return {
        "type": "interval",
        "coverage_per_fold": list(result.coverage_per_fold),
        "width_per_fold": list(result.width_per_fold),
    }


def _result_from_payload(payload: Mapping[str, Any]) -> GridCVResult:
    kind = payload.get("type")
    if kind == "point":
        return PointCVResult(
            r2_per_fold=tuple(float(v) for v in payload["r2_per_fold"]),
            rmse_per_fold=tuple(float(v) for v in payload["rmse_per_fold"]),
        )
    if kind == "interval":
        return IntervalCVResult(
            coverage_per_fold=tuple(
                float(v) for v in payload["coverage_per_fold"]
            ),
            width_per_fold=tuple(float(v) for v in payload["width_per_fold"]),
        )
    raise ValueError(f"unknown journal payload type {kind!r}")


def _grid_fingerprints(
    kind: str,
    cells: Sequence[GridCell],
    feature_set: FeatureSet,
    profile: ExperimentProfile,
    seed: int,
    extra: Mapping[str, Any],
) -> Dict[GridCell, str]:
    """Stable per-cell fingerprints: config + commit, never timing.

    The git sha (``REPRO_GIT_SHA``, set by CI) is part of the identity:
    a journal written by one commit is never silently reused by
    another.
    """
    base: Dict[str, Any] = {
        "schema": 1,
        "grid": kind,
        "feature_set": feature_set.value,
        "profile": asdict(profile),
        "seed": int(seed),
        "git_sha": os.environ.get("REPRO_GIT_SHA") or None,
    }
    base.update(extra)
    fingerprints = {}
    for cell in cells:
        name, temperature, hours = cell
        fields = dict(base)
        fields.update(name=name, temperature=temperature, hours=hours)
        fingerprints[cell] = cell_fingerprint(fields)
    return fingerprints


# ---------------------------------------------------------------------------
# process-backend grid engine (shared-memory bin transport)
# ---------------------------------------------------------------------------

# Per-process state for backend="process" grid workers: the (pickled-
# once) SiliconDataset the cells read from.  Set by _init_grid_worker in
# every pool worker, and in the parent before fan-out so the serial
# fallback and the fork-based stuck-worker requeue path find it too.
_WORKER_GRID_STATE: Optional[Dict[str, Any]] = None

_SharedBinEntry = Tuple[str, ArraySpec, Tuple[np.ndarray, ...], int]


def _hist_bin_plan(
    names: Sequence[str], kind: str, profile: ExperimentProfile
) -> Tuple[Tuple[int, ...], bool, bool]:
    """Which histogram resolutions the grid bins at, and on which rows.

    Returns ``(max_bins values, need_fold_train, need_proper_train)``:
    QR bands and point models fit on the full CV-fold training matrix,
    CQR bands on the proper-training split inside it.  Methods that
    never bin (LR/GP/NN, exact-method XGBoost) contribute nothing.
    """
    bins_wanted = set()
    need_full = False
    need_proper = False
    for name in names:
        base = name.split(" ")[-1]
        if base == "XGBoost" and profile.xgb_tree_method == "hist":
            bins_wanted.add(int(profile.xgb_max_bins))
        elif base == "CatBoost":
            bins_wanted.add(int(profile.catboost_max_bins))
        else:
            continue
        if kind == "region" and name.startswith("CQR "):
            need_proper = True
        else:
            need_full = True
    return tuple(sorted(bins_wanted)), need_full, need_proper


def _grid_bin_subsets(
    dataset: SiliconDataset,
    kind: str,
    names: Sequence[str],
    read_points: Sequence[int],
    feature_set: FeatureSet,
    profile: ExperimentProfile,
    seed: int,
    calibration_fraction: float,
) -> Dict[str, BinnedDataset]:
    """Pre-bin every distinct training matrix the grid will fit on.

    The enumeration replays the execution path exactly: the feature
    matrix depends only on ``(hours, feature_set)``, the CV folds on
    ``(n_samples, n_folds, seed)`` via :func:`fold_row_subsets`, and the
    CQR proper-training split on ``(fold size, calibration_fraction,
    seed)`` -- all deterministic, so the digests computed here are the
    digests the cell fits will look up.  Binning goes through
    :func:`shared_binned_dataset`, warming the parent cache as a side
    effect.  A subset this enumeration missed is only ever a worker-side
    cache miss (the worker re-bins), never a correctness issue.
    """
    bins_wanted, need_full, need_proper = _hist_bin_plan(names, kind, profile)
    if not bins_wanted:
        return {}
    entries: Dict[str, BinnedDataset] = {}
    kfold = KFold(n_splits=profile.n_folds, shuffle=True, random_state=seed)
    for hours in read_points:
        X, _ = dataset.features(
            int(hours),
            include_parametric=feature_set.include_parametric,
            include_onchip=feature_set.include_onchip,
        )
        X = np.asarray(X, dtype=np.float64)
        for train_idx, _test_idx in fold_row_subsets(kfold, X.shape[0]):
            X_train = X[train_idx]
            subsets: List[np.ndarray] = []
            if need_full:
                subsets.append(X_train)
            if need_proper:
                proper_idx, _cal_idx = split_train_calibration(
                    X_train.shape[0],
                    calibration_fraction,
                    check_random_state(seed),
                )
                subsets.append(X_train[proper_idx])
            for subset in subsets:
                for max_bins in bins_wanted:
                    entries[dataset_digest(subset, max_bins)] = (
                        shared_binned_dataset(subset, max_bins)
                    )
    return entries


def _init_grid_worker(
    dataset: SiliconDataset, shared_entries: Tuple[_SharedBinEntry, ...]
) -> None:
    """Once-per-worker setup for ``backend="process"`` grids.

    Attaches every shared-memory code matrix, rebuilds its binner from
    the pickled edges, and seeds the worker's bin cache so cell fits hit
    by content digest instead of re-binning.  The big arrays never
    travel by pickle: the dataset arrives once per worker (not per
    cell), the codes by zero-copy attach.
    """
    global _WORKER_GRID_STATE
    seeded: Dict[str, BinnedDataset] = {}
    for digest, spec, edges, max_bins in shared_entries:
        codes = attach_array(spec)
        binner = FeatureBinner.from_edges(max_bins, edges)
        seeded[digest] = BinnedDataset(binner, codes)
    if seeded:
        seed_bin_cache(seeded)
    _WORKER_GRID_STATE = {"dataset": dataset}


class _GridCellTask:
    """Picklable per-cell runner for ``backend="process"`` grids.

    The thread backend runs closures over the caller's locals; a process
    pool cannot pickle those, so the small cell parameters travel on
    this instance while the big objects (the
    :class:`~repro.silicon.dataset.SiliconDataset`, the shared bin
    codes) arrive through :func:`_init_grid_worker`.
    """

    def __init__(self, kind: str, kwargs: Dict[str, Any]) -> None:
        if kind not in ("point", "region"):
            raise ValueError(f"kind must be 'point' or 'region', got {kind!r}")
        self.kind = kind
        self.kwargs = dict(kwargs)

    def __call__(self, cell: GridCell) -> GridCVResult:
        state = _WORKER_GRID_STATE
        if state is None:
            raise RuntimeError(
                "process-grid worker state missing: _init_grid_worker never ran"
            )
        name, temperature, hours = cell
        if self.kind == "point":
            return run_point_experiment(
                state["dataset"], name, temperature, hours,
                n_jobs=1, **self.kwargs,
            )
        return run_region_experiment(
            state["dataset"], name, temperature, hours,
            n_jobs=1, **self.kwargs,
        )


@contextmanager
def _process_grid_session(
    dataset: SiliconDataset,
    kind: str,
    names: Sequence[str],
    read_points: Sequence[int],
    feature_set: FeatureSet,
    profile: ExperimentProfile,
    seed: int,
    calibration_fraction: float,
    kwargs: Dict[str, Any],
):
    """Stand up the shared-memory transport for one process-backend grid.

    Pre-bins the grid's training matrices (warming the parent cache),
    copies the code matrices into parent-owned shared segments, and
    yields ``(task, initializer, initargs)`` for the fan-out.  The
    parent worker state is set before the yield so the serial fallback
    and the fork-based requeue subprocesses inherit it; segments are
    unlinked and the state cleared on exit no matter how the grid ends
    -- a SIGKILLed worker cannot leak a segment, because it never owned
    one.
    """
    global _WORKER_GRID_STATE
    entries = _grid_bin_subsets(
        dataset, kind, names, read_points, feature_set, profile, seed,
        calibration_fraction,
    )
    with SharedArrayBundle() as bundle:
        shared_entries: List[_SharedBinEntry] = []
        for digest, binned in entries.items():
            spec = bundle.share(digest, binned.codes)
            shared_entries.append(
                (
                    digest,
                    spec,
                    tuple(binned.binner.edges_),
                    int(binned.max_bins),
                )
            )
        _WORKER_GRID_STATE = {"dataset": dataset}
        try:
            yield (
                _GridCellTask(kind, kwargs),
                _init_grid_worker,
                (dataset, tuple(shared_entries)),
            )
        finally:
            _WORKER_GRID_STATE = None


def _run_grid(
    cells: Sequence[GridCell],
    run_cell: Callable[[GridCell], GridCVResult],
    fingerprints: Mapping[GridCell, str],
    to_payload: Callable[[GridCVResult], Dict[str, Any]],
    journal: Optional[RunJournal],
    retry_policy: Optional[RetryPolicy],
    timeout: Optional[float],
    on_error: str,
    n_jobs: Optional[int],
    task_wrapper: Optional[Callable[[Callable], Callable]],
    backend: str = "thread",
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple = (),
) -> GridResult:
    """Shared resilient driver behind both grid runners.

    Completed cells found in ``journal`` are reused (their payloads
    round-trip floats exactly, so a resumed grid is bit-identical to an
    uninterrupted one); pending cells fan out through
    :func:`~repro.perf.parallel.parallel_map_outcomes` and are journaled
    the moment they succeed -- before any failure can abort the run.

    ``backend="process"`` weakens the journal guarantee: workers cannot
    share the parent's journal file handle, so completed cells are
    recorded in the parent as their outcomes drain, and a parent killed
    mid-grid loses the cells whose outcomes it had not drained yet.
    Resume still works -- those cells simply re-run.
    """
    if on_error not in ("raise", "capture"):
        raise ValueError(
            f"on_error must be 'raise' or 'capture', got {on_error!r}"
        )
    results: Dict[GridCell, GridCVResult] = {}
    pending: List[GridCell] = list(cells)
    if journal is not None:
        recorded = journal.completed()
        pending = []
        for cell in cells:
            entry = recorded.get(fingerprints[cell])
            if entry is not None:
                results[cell] = _result_from_payload(entry["payload"])
            else:
                pending.append(cell)
    fn = run_cell if task_wrapper is None else task_wrapper(run_cell)
    journal_in_task = journal is not None and backend != "process"
    if journal_in_task:
        # Record from inside the task, not after the fan-out returns:
        # a SIGKILL mid-grid must only ever lose cells still in flight.
        inner, recording_journal = fn, journal

        def fn(cell: GridCell) -> GridCVResult:
            value = inner(cell)
            recording_journal.record(
                fingerprints[cell], list(cell), to_payload(value)
            )
            return value

    outcomes = parallel_map_outcomes(
        fn, pending, n_jobs=n_jobs, backend=backend,
        retry_policy=retry_policy, timeout=timeout,
        initializer=initializer, initargs=initargs,
    )
    failures: List[FailureRecord] = []
    attempts: Dict[GridCell, int] = {}
    first_error: Optional[BaseException] = None
    for cell, outcome in zip(pending, outcomes):
        attempts[cell] = outcome.attempts
        if outcome.ok:
            results[cell] = outcome.value
            if journal is not None and not journal_in_task:
                journal.record(
                    fingerprints[cell], list(cell), to_payload(outcome.value)
                )
        else:
            if first_error is None:
                first_error = outcome.error
            failures.append(
                FailureRecord(
                    key=cell,
                    fingerprint=fingerprints[cell],
                    error_type=type(outcome.error).__name__,
                    message=str(outcome.error),
                    attempts=outcome.attempts,
                    timed_out=outcome.timed_out,
                )
            )
    if first_error is not None and on_error == "raise":
        raise first_error
    ordered = {cell: results[cell] for cell in cells if cell in results}
    return GridResult(ordered, failures=failures, attempts=attempts)


def run_point_grid(
    dataset: SiliconDataset,
    model_names: Sequence[str],
    temperatures: Sequence[float],
    read_points: Sequence[int],
    feature_set: FeatureSet = FeatureSet.BOTH,
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    n_jobs: Optional[int] = None,
    journal: Optional[RunJournal] = None,
    retry_policy: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
    on_error: str = "raise",
    task_wrapper: Optional[Callable[[Callable], Callable]] = None,
    backend: str = "thread",
) -> GridResult:
    """Fig.-2 grid: every (model, temperature, hours) cell, optionally parallel.

    Cells are mutually independent experiments, so the grid is fanned out
    through :func:`repro.perf.parallel.parallel_map_outcomes` with the
    folds inside each cell forced serial (``n_jobs=1``) -- parallelising
    both levels would oversubscribe the worker pool.  The returned
    :class:`GridResult` is an ordered dict keyed by
    ``(model_name, temperature_c, hours)``; every cell value is identical
    to a serial run of :func:`run_point_experiment`.

    Resilience (all optional, see ``docs/RUNTIME.md``): ``journal``
    checkpoints every completed cell and resumes an interrupted grid
    bit-identically; ``retry_policy`` re-runs transient worker faults on
    a deterministic backoff; ``timeout`` bounds each cell (cooperative
    for threads, hard-kill + requeue for processes);
    ``on_error="capture"`` returns partial results with structured
    :class:`FailureRecord` entries instead of raising on the first
    failed cell.  ``task_wrapper`` is the execution-fault injection seam
    used by :func:`repro.eval.stress.run_execution_campaign`.

    ``backend="process"`` fans cells out to worker processes instead of
    threads: the dataset is pickled once per worker, pre-binned code
    matrices travel by shared memory (see ``docs/PERFORMANCE.md``), and
    results are bit-identical to the serial and thread paths.  Journal
    records are written parent-side as outcomes drain (see
    :func:`_run_grid`); ``task_wrapper`` requires the thread backend.
    """
    profile = profile or ExperimentProfile.full()
    cells = [
        (name, float(temperature), int(hours))
        for name in model_names
        for temperature in temperatures
        for hours in read_points
    ]
    fingerprints = _grid_fingerprints(
        "point", cells, feature_set, profile, seed, extra={}
    )
    if backend == "process":
        if task_wrapper is not None:
            raise ValueError(
                "task_wrapper (fault injection) requires backend='thread'"
            )
        kwargs = dict(feature_set=feature_set, profile=profile, seed=seed)
        with _process_grid_session(
            dataset, "point", model_names, read_points, feature_set,
            profile, seed, calibration_fraction=0.25, kwargs=kwargs,
        ) as (task, initializer, initargs):
            return _run_grid(
                cells,
                task,
                fingerprints,
                _point_payload,
                journal=journal,
                retry_policy=retry_policy,
                timeout=timeout,
                on_error=on_error,
                n_jobs=n_jobs,
                task_wrapper=None,
                backend="process",
                initializer=initializer,
                initargs=initargs,
            )

    def run_cell(cell: GridCell) -> PointCVResult:
        name, temperature, hours = cell
        return run_point_experiment(
            dataset,
            name,
            temperature,
            hours,
            feature_set=feature_set,
            profile=profile,
            seed=seed,
            n_jobs=1,
        )

    return _run_grid(
        cells,
        run_cell,
        fingerprints,
        _point_payload,
        journal=journal,
        retry_policy=retry_policy,
        timeout=timeout,
        on_error=on_error,
        n_jobs=n_jobs,
        task_wrapper=task_wrapper,
        backend=backend,
    )


def run_region_grid(
    dataset: SiliconDataset,
    method_names: Sequence[str],
    temperatures: Sequence[float],
    read_points: Sequence[int],
    feature_set: FeatureSet = FeatureSet.BOTH,
    alpha: float = 0.1,
    calibration_fraction: float = 0.25,
    cfs_k: int = 10,
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    n_jobs: Optional[int] = None,
    journal: Optional[RunJournal] = None,
    retry_policy: Optional[RetryPolicy] = None,
    timeout: Optional[float] = None,
    on_error: str = "raise",
    task_wrapper: Optional[Callable[[Callable], Callable]] = None,
    backend: str = "thread",
) -> GridResult:
    """Table-III grid: every (method, temperature, hours) cell, optionally parallel.

    Same contract as :func:`run_point_grid`, including the resilience
    parameters (journaled resume, deterministic retries, per-cell
    timeouts, failure capture) and the ``backend="process"``
    shared-memory engine: independent cells fan out with per-cell
    folds forced serial, results keyed by
    ``(method_name, temperature_c, hours)`` in cell order, values
    identical to serial :func:`run_region_experiment` calls.  ``alpha``
    is validated by :func:`run_region_experiment` in every cell.
    """
    profile = profile or ExperimentProfile.full()
    cells = [
        (name, float(temperature), int(hours))
        for name in method_names
        for temperature in temperatures
        for hours in read_points
    ]
    fingerprints = _grid_fingerprints(
        "region",
        cells,
        feature_set,
        profile,
        seed,
        extra={
            "alpha": float(alpha),
            "calibration_fraction": float(calibration_fraction),
            "cfs_k": int(cfs_k),
        },
    )
    if backend == "process":
        if task_wrapper is not None:
            raise ValueError(
                "task_wrapper (fault injection) requires backend='thread'"
            )
        kwargs = dict(
            feature_set=feature_set,
            alpha=alpha,
            calibration_fraction=calibration_fraction,
            cfs_k=cfs_k,
            profile=profile,
            seed=seed,
        )
        with _process_grid_session(
            dataset, "region", method_names, read_points, feature_set,
            profile, seed, calibration_fraction=calibration_fraction,
            kwargs=kwargs,
        ) as (task, initializer, initargs):
            return _run_grid(
                cells,
                task,
                fingerprints,
                _interval_payload,
                journal=journal,
                retry_policy=retry_policy,
                timeout=timeout,
                on_error=on_error,
                n_jobs=n_jobs,
                task_wrapper=None,
                backend="process",
                initializer=initializer,
                initargs=initargs,
            )

    def run_cell(cell: GridCell) -> IntervalCVResult:
        name, temperature, hours = cell
        return run_region_experiment(
            dataset,
            name,
            temperature,
            hours,
            feature_set=feature_set,
            alpha=alpha,
            calibration_fraction=calibration_fraction,
            cfs_k=cfs_k,
            profile=profile,
            seed=seed,
            n_jobs=1,
        )

    return _run_grid(
        cells,
        run_cell,
        fingerprints,
        _interval_payload,
        journal=journal,
        retry_policy=retry_policy,
        timeout=timeout,
        on_error=on_error,
        n_jobs=n_jobs,
        task_wrapper=task_wrapper,
        backend=backend,
    )
