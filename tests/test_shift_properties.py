"""Statistical property pins for the shift defense layer.

Two kinds of guarantees are pinned here: conditional *coverage* of the
Mondrian taxonomy on fleet-generated silicon (the paper's per-group
validity claim, exercised on wafer zones), and the *false-alarm budget*
of the exchangeability sentinels on genuinely exchangeable streams --
the property that makes an alarm worth paging on.
"""

import numpy as np
import pytest

from repro.core.mondrian import MondrianConformalRegressor
from repro.models.linear import QuantileLinearRegression
from repro.shift import ConformalTestMartingale, CovariateShiftDetector
from repro.silicon.fleet import (
    FabProfile,
    FleetGenerator,
    ProcessCorner,
    ProductSpec,
)

FAST = dict(read_points=(0,), temperatures=(25.0,))


def _fleet(n_chips, seed=7):
    return FleetGenerator(
        products=[ProductSpec("alpha", n_chips=n_chips)],
        fabs=[FabProfile("ref", ProcessCorner("nominal"))],
        seed=seed,
    )


def _lot_arrays(fleet, lot_index, columns=None, n_rings=2):
    lot = fleet.lot("alpha", "ref", lot_index=lot_index, **FAST)
    X, names = lot.dataset.features(0)
    y = lot.dataset.vmin[(25.0, 0)]
    zones = lot.zones(n_rings)
    if columns is None:
        columns = [
            i for i, name in enumerate(names) if not name.startswith("par_")
        ]
    return X[:, columns], y, zones, columns


class TestMondrianZoneCoverage:
    def test_per_zone_coverage_on_exchangeable_fleet_lots(self):
        """Mondrian-by-wafer-zone holds coverage in *every* zone on a
        fresh exchangeable lot, not just marginally."""
        fleet = _fleet(300)
        X_train, y_train, z_train, columns = _lot_arrays(fleet, 0)
        X_test, y_test, z_test, _ = _lot_arrays(
            fleet, 1, columns=columns
        )
        # The zone label rides along as the last feature column so the
        # grouper sees it at both fit and predict time.
        stride = slice(None, None, 16)
        Xa = np.column_stack([X_train[:, stride], z_train.astype(float)])
        Xb = np.column_stack([X_test[:, stride], z_test.astype(float)])
        model = MondrianConformalRegressor(
            QuantileLinearRegression(),
            lambda Z: Z[:, -1].astype(int),
            alpha=0.1,
            random_state=0,
        ).fit(Xa, y_train)
        intervals = model.predict_interval(Xb)
        contains = (intervals.lower <= y_test) & (y_test <= intervals.upper)
        for zone in np.unique(z_test):
            mask = z_test == zone
            assert mask.sum() >= 50  # enough chips for the estimate
            assert contains[mask].mean() >= 0.85, (
                f"zone {zone} covers {contains[mask].mean():.2%}"
            )


class TestSentinelFalseAlarmBudget:
    @pytest.mark.parametrize("seed", range(5))
    def test_martingale_quiet_on_exchangeable_streams(self, seed):
        """Regression pin on the Ville false-alarm budget: seeded
        exchangeable streams must never alarm, across >= 5 seeds."""
        stream_rng = np.random.default_rng(seed)
        reference = stream_rng.normal(size=150)
        sentinel = ConformalTestMartingale(random_state=seed).arm(reference)
        alarm = sentinel.observe(stream_rng.normal(size=500))
        assert alarm is None
        assert not sentinel.in_alarm_
        # The mixture stays far under the threshold, not just barely.
        assert sentinel.log10_martingale_ < 1.0

    @pytest.mark.parametrize("seed", range(5))
    def test_martingale_still_detects_after_a_quiet_prefix(self, seed):
        """The false-alarm pin must not come from insensitivity: the
        same configuration still fires on a genuine shift."""
        stream_rng = np.random.default_rng(seed)
        sentinel = ConformalTestMartingale(random_state=seed).arm(
            stream_rng.normal(size=150)
        )
        sentinel.observe(stream_rng.normal(size=200))
        assert not sentinel.in_alarm_
        sentinel.observe(stream_rng.normal(loc=2.5, size=300))
        assert sentinel.in_alarm_

    def test_detector_quiet_on_fleet_control_lots(self):
        """The campaign's detector operating point stays quiet across
        ordinary lot-to-lot variation of one fab -- the control-phase
        false-positive pin behind ``run_shift_campaign``.

        Coordinates deliberately mirror the campaign (seed 2024, 260
        chips, monitor stride 8): lot-to-lot PSI depends on the sampled
        instrument design, so the pin only means something at the
        operating point the campaign actually ships.
        """
        fleet = _fleet(260, seed=2024)
        X_train, _, _, columns = _lot_arrays(fleet, 0)
        detector = CovariateShiftDetector(
            psi_threshold=1.0, alarm_fraction=0.10, min_observations=40
        ).arm(X_train[:, ::8])
        for lot_index in (1, 2):
            X, _, _, _ = _lot_arrays(fleet, lot_index, columns=columns)
            alarm = detector.observe(X[:, ::8])
            assert alarm is None, alarm.describe()
        assert not detector.in_alarm_
