"""Development tooling enforcing the repository's reproducibility contracts.

The coverage guarantee of split CP / CQR (:mod:`repro.core`) rests on
statistical hygiene that ordinary review cannot reliably police: no
module-level global RNG, no hidden state mutation inside ``predict``,
no silently-skipped ``alpha`` validation.  ``repro.devtools`` provides
``reprolint`` -- a stdlib-``ast`` static-analysis suite with
domain-specific rules for scientific and conformal code -- so those
contracts are machine-checked on every change.

Run it as a module::

    python -m repro.devtools.lint src tests

or programmatically::

    from repro.devtools import lint_paths
    diagnostics = lint_paths(["src", "tests"])

Rules, rationale, and the suppression syntax are documented in
``docs/LINT.md``.
"""

from __future__ import annotations

from repro.devtools.config import LintConfig, load_config
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.engine import (
    LintEngine,
    ModuleContext,
    classify_role,
    lint_paths,
    lint_source,
)
from repro.devtools.reporters import render_json, render_text
from repro.devtools.rules import ALL_RULES, get_rule, iter_rules

__all__ = [
    "ALL_RULES",
    "Diagnostic",
    "LintConfig",
    "LintEngine",
    "ModuleContext",
    "classify_role",
    "get_rule",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "load_config",
    "render_json",
    "render_text",
]
