"""Split conformal prediction (paper Section III-B).

Wraps any point regressor: the training data is split into a proper
training part and a calibration part; the regressor is fitted on the
former, the conformal quantile ``q̂`` of absolute residuals (Eq. 7) is
computed on the latter, and every test interval is ``ŷ ± q̂`` (Eq. 8).

The marginal guarantee ``P(y ∈ C(x)) ≥ 1 − α`` holds for exchangeable
data regardless of how poor the regressor is; what suffers with a bad
model is only the width.  The known limitation the paper stresses --
constant width for every chip, over-margining normal parts and
under-margining outliers -- is what CQR fixes.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.calibration import conformal_quantile
from repro.core.intervals import PredictionIntervals
from repro.core.scores import absolute_residual_score, normalized_residual_score
from repro.models.base import (
    BaseRegressor,
    check_fitted,
    check_random_state,
    check_X_y,
    clone,
)

__all__ = ["SplitConformalRegressor", "split_train_calibration"]


def split_train_calibration(
    n_samples: int,
    calibration_fraction: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Random disjoint (train, calibration) index split.

    The paper holds out 25 % of the training chips for calibration
    (Section IV-B).  At least one sample is kept on each side.
    """
    if not 0.0 < calibration_fraction < 1.0:
        raise ValueError(
            f"calibration_fraction must be in (0, 1), got {calibration_fraction}"
        )
    if n_samples < 2:
        raise ValueError(f"need at least 2 samples to split, got {n_samples}")
    n_calibration = int(round(calibration_fraction * n_samples))
    n_calibration = min(max(n_calibration, 1), n_samples - 1)
    permutation = rng.permutation(n_samples)
    return permutation[n_calibration:], permutation[:n_calibration]


class SplitConformalRegressor(BaseRegressor):
    """Constant-width conformal intervals around a point predictor.

    Parameters
    ----------
    estimator:
        Unfitted point regressor template; a clone is fitted on the proper
        training split.
    alpha:
        Target miscoverage (paper: 0.1 → 90 % coverage).
    calibration_fraction:
        Fraction of ``fit`` data held out for calibration (paper: 0.25).
    difficulty_estimator:
        Optional unfitted regressor trained on |residual| of the proper
        training split to produce locally weighted (normalised-score)
        intervals instead of constant-width ones.  ``None`` reproduces the
        vanilla CP of the paper.
    random_state:
        Seed for the train/calibration split.
    """

    def __init__(
        self,
        estimator: BaseRegressor,
        alpha: float = 0.1,
        calibration_fraction: float = 0.25,
        difficulty_estimator: Optional[BaseRegressor] = None,
        random_state: Optional[int] = None,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.estimator = estimator
        self.alpha = alpha
        self.calibration_fraction = calibration_fraction
        self.difficulty_estimator = difficulty_estimator
        self.random_state = random_state
        self.estimator_: Optional[BaseRegressor] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SplitConformalRegressor":
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        train_idx, cal_idx = split_train_calibration(
            X.shape[0], self.calibration_fraction, rng
        )
        self.estimator_ = clone(self.estimator).fit(X[train_idx], y[train_idx])

        cal_prediction = self.estimator_.predict(X[cal_idx])
        if self.difficulty_estimator is None:
            self.difficulty_estimator_ = None
            scores = absolute_residual_score(y[cal_idx], cal_prediction)
        else:
            train_prediction = self.estimator_.predict(X[train_idx])
            train_residuals = np.abs(y[train_idx] - train_prediction)
            self.difficulty_estimator_ = clone(self.difficulty_estimator).fit(
                X[train_idx], train_residuals
            )
            difficulty = self._difficulty(X[cal_idx])
            scores = normalized_residual_score(y[cal_idx], cal_prediction, difficulty)

        self.quantile_ = conformal_quantile(scores, self.alpha)
        self.n_calibration_ = int(cal_idx.size)
        return self

    def _difficulty(self, X: np.ndarray) -> np.ndarray:
        """Positive per-sample difficulty from the auxiliary model."""
        raw = self.difficulty_estimator_.predict(X)
        # The difficulty model may output non-positive values on easy
        # regions; floor it at a small fraction of its median scale.
        floor = max(1e-12, 0.01 * float(np.median(np.abs(raw))))
        return np.maximum(raw, floor)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Point prediction of the underlying fitted estimator."""
        check_fitted(self, "estimator_")
        return self.estimator_.predict(X)

    def predict_interval(self, X: np.ndarray) -> PredictionIntervals:
        """Conformal interval ``ŷ ± q̂`` (Eq. 8), or ``± q̂·σ̂(x)`` when a
        difficulty estimator is configured."""
        check_fitted(self, "estimator_")
        prediction = self.estimator_.predict(X)
        if not np.isfinite(self.quantile_):
            raise RuntimeError(
                f"calibration set of size {self.n_calibration_} is too small "
                f"for alpha={self.alpha}; intervals would be infinite"
            )
        if self.difficulty_estimator_ is None:
            margin = self.quantile_
        else:
            margin = self.quantile_ * self._difficulty(X)
        return PredictionIntervals(prediction - margin, prediction + margin)
