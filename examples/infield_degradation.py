"""In-field Vmin degradation prediction from on-chip monitor telemetry.

The paper's second use case (Fig. 1, right half): once parts are deployed
only the on-chip monitors can be read, and the system must predict where
SCAN Vmin is heading as the silicon ages -- ideally flagging a part
*before* its Vmin crosses the product spec.

The demo walks the accelerated-stress timeline: at every read point t it
trains on parametric data frozen at time 0 plus all monitor readings up
to t (the paper's feature-availability rule), predicts the Vmin interval
at t, and tracks a few chips -- including a latent-defective one -- as
their intervals drift toward the spec.  It finishes with an adaptive
conformal (streaming) variant that keeps long-run coverage as the
population ages, the paper's stated future-work direction.

Run:
    python examples/infield_degradation.py [--smoke]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import AdaptiveConformalPredictor, SiliconDataset, VminPredictionFlow
from repro.models import ObliviousBoostingRegressor
from repro.silicon.constants import MIN_SPEC_V, READ_POINTS_HOURS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    dataset = SiliconDataset.generate(seed=args.seed)
    temperature = 25.0
    n_train = 110
    n_trees = 20 if args.smoke else 100
    read_points = READ_POINTS_HOURS if not args.smoke else (0, 168, 1008)

    defective = [int(i) for i in np.flatnonzero(dataset.defect_mask()[n_train:])]
    watch = list(range(3))
    for index in defective:
        if index not in watch:
            watch.append(index)
            break
    print(f"tracking test chips {[n_train + w for w in watch]} "
          f"(last one defective: {len(watch) > 3})")
    print(f"product spec: {MIN_SPEC_V*1e3:.0f} mV\n")

    header = "hours | coverage | avg len | " + " | ".join(
        f"chip{n_train + w}" for w in watch
    )
    print(header)
    print("-" * len(header))
    for hours in read_points:
        X, names = dataset.features(hours)
        y = dataset.target(temperature, hours)
        base = ObliviousBoostingRegressor(
            n_estimators=n_trees, quantile=0.5, random_state=args.seed
        )
        flow = VminPredictionFlow(base_model=base, alpha=0.1, random_state=args.seed)
        flow.fit(X[:n_train], y[:n_train], feature_names=names)
        intervals = flow.predict_interval(X[n_train:])
        cells = " | ".join(
            f"[{intervals.lower[w]*1e3:5.0f},{intervals.upper[w]*1e3:5.0f}]"
            for w in watch
        )
        print(
            f"{hours:5d} | {intervals.coverage(y[n_train:]):7.1%} "
            f"| {intervals.mean_width*1e3:5.1f}mV | {cells}"
        )

    # ------------------------------------------------------------------
    # Streaming variant: adaptive conformal inference over the timeline.
    # ------------------------------------------------------------------
    print("\nadaptive conformal stream (alpha target 10%):")
    from repro.features.selection import CFSSelectedRegressor
    from repro.models import QuantileLinearRegression

    X0, _ = dataset.features(0)
    y0 = dataset.target(temperature, 0)
    template = CFSSelectedRegressor(QuantileLinearRegression(), k=8, quantile=0.5)
    aci = AdaptiveConformalPredictor(template, alpha=0.1, gamma=0.05)
    aci.fit(X0[:n_train] * 1.0, y0[:n_train])
    for hours in read_points[1:]:
        # Reuse time-zero features (a deployed model is not retrained) but
        # observe the *aged* labels: a textbook distribution shift.  Chips
        # report in small batches so the alpha feedback reacts within a
        # read point, as it would in a live fleet.
        y_t = dataset.target(temperature, hours)
        batch_covered = []
        for start in range(n_train, dataset.n_chips, 8):
            stop = min(start + 8, dataset.n_chips)
            intervals = aci.predict_interval(X0[start:stop])
            batch_covered.extend(intervals.contains(y_t[start:stop]).tolist())
            aci.update(X0[start:stop], y_t[start:stop])
        print(
            f"  after {hours:4d} h: read-point coverage "
            f"{np.mean(batch_covered):.1%}, long-run "
            f"{aci.long_run_coverage():.1%}, alpha_t = {aci.alpha_t:.3f}"
        )


if __name__ == "__main__":
    main()
