"""REP2xx -- concurrency / determinism rules.

The repository's parallel primitives (``repro.perf.parallel`` and the
runtime watchdog) promise one thing: for a pure task function, results
are bit-identical for every worker count and schedule.  These rules
find the ways task bodies quietly break that purity:

* **REP201 closure-mutates-captured-state** -- a function submitted to a
  parallel primitive mutates a mutable container captured from the
  enclosing scope (``results.append`` from inside a pooled closure):
  completion order becomes data.
* **REP202 nondeterministic-rng-in-task** -- unseeded ``default_rng()``,
  module-level generator objects, or global-state ``random.*`` calls
  reachable from a parallel task body: the draw depends on scheduling.
* **REP203 unordered-iteration** -- iterating a ``set`` into an ordered
  result (list, tuple, join, accumulation): set order varies with hash
  seeding and across processes.  (Dict iteration is insertion-ordered
  in supported Pythons and deliberately not flagged.)
* **REP204 wall-clock-in-fingerprint** -- wall-clock or entropy values
  flowing into checkpoint fingerprints, hashes, or ``seed=``/``jitter=``
  arguments: resume identity and retry schedules stop being functions
  of the configuration.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.devtools.analysis.callgraph import (
    owned_nodes,
    resolve_function_reference,
)
from repro.devtools.analysis.dataflow import assigned_names
from repro.devtools.analysis.interproc import (
    SinkSpec,
    compute_param_leaks,
    find_source_flows,
)
from repro.devtools.analysis.project import (
    FunctionInfo,
    ModuleInfo,
    resolve_dotted,
)
from repro.devtools.analysis.rules.base import AnalysisRule, ProjectContext
from repro.devtools.diagnostics import Diagnostic

__all__ = [
    "ClosureCaptureRule",
    "TaskRngRule",
    "UnorderedIterationRule",
    "WallClockFingerprintRule",
]

# Callee names that submit work to a pool / subprocess; the first
# positional argument is the task function.
_SUBMIT_NAMES = frozenset(
    {
        "parallel_map",
        "parallel_map_outcomes",
        "run_in_subprocess",
        "submit",
        "map_async",
        "apply_async",
    }
)
# ``executor.map(fn, ...)`` -- only flagged when the receiver looks like
# an executor/pool, so ``builtins.map`` and ``Pool.map`` both resolve
# sensibly without type inference.
_EXECUTOR_HINTS = ("pool", "executor", "ex")

_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "__setitem__",
    }
)
_CONTAINER_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict", "Counter", "deque"}
)


def _is_submission_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id in _SUBMIT_NAMES
    if isinstance(func, ast.Attribute):
        if func.attr in _SUBMIT_NAMES:
            return True
        if func.attr == "map" and isinstance(func.value, ast.Name):
            receiver = func.value.id.lower()
            return any(hint in receiver for hint in _EXECUTOR_HINTS)
    return False


def _task_argument(call: ast.Call) -> Optional[ast.expr]:
    """The task-function argument of a submission call."""
    for keyword in call.keywords:
        if keyword.arg == "fn":
            return keyword.value
    return call.args[0] if call.args else None


def _submission_sites(
    context: ProjectContext,
) -> List[Tuple[FunctionInfo, ast.Call, ast.expr]]:
    """(enclosing function, submission call, task expression) triples."""
    sites = []
    for function in context.functions():
        for node in owned_nodes(function):
            if isinstance(node, ast.Call) and _is_submission_call(node):
                task = _task_argument(node)
                if task is not None:
                    sites.append((function, node, task))
    return sites


def _container_bindings(function: FunctionInfo) -> Set[str]:
    """Names bound to builtin mutable containers in ``function``'s scope."""
    containers: Set[str] = set()
    for node in owned_nodes(function):
        if isinstance(node, ast.Assign):
            value = node.value
            is_container = isinstance(
                value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
            ) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _CONTAINER_CONSTRUCTORS
            )
            if not is_container:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    containers.add(target.id)
    return containers


def _local_bindings(task_node: ast.AST) -> Set[str]:
    """Names the task function binds itself (params + assignments)."""
    bound: Set[str] = set()
    if isinstance(task_node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        args = task_node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            bound.add(arg.arg)
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
    for node in ast.walk(task_node):
        if isinstance(node, ast.stmt):
            bound.update(assigned_names(node))
    return bound


class ClosureCaptureRule(AnalysisRule):
    """REP201: parallel task closures must not mutate captured containers."""

    rule_id = "REP201"
    name = "closure-mutates-captured-state"
    summary = (
        "a function submitted to a parallel primitive mutates a mutable "
        "container captured from the enclosing scope"
    )
    rationale = (
        "appends/stores from pooled workers interleave in completion "
        "order, so the accumulated result depends on scheduling; return "
        "values instead -- parallel_map already restores input order"
    )

    def check(self, context: ProjectContext) -> List[Diagnostic]:
        findings: List[Diagnostic] = []
        for function, call, task_expr in _submission_sites(context):
            module = context.module_of(function)
            if module is None:
                continue
            task_node = self._resolve_task(context, function, task_expr)
            if task_node is None:
                continue
            captured_containers = _container_bindings(function)
            local = _local_bindings(task_node)
            nonlocals: Set[str] = set()
            for node in ast.walk(task_node):
                if isinstance(node, ast.Nonlocal):
                    nonlocals.update(node.names)
            local -= nonlocals
            for node, name in self._mutations(task_node):
                if name in local:
                    continue
                if name not in captured_containers and name not in nonlocals:
                    continue
                findings.append(
                    self.diagnostic(
                        module,
                        node,
                        f"task function mutates captured {name!r} (submitted "
                        f"to a parallel primitive at line "
                        f"{call.lineno}); results become completion-order "
                        "dependent -- return values and let the map collect "
                        "them in input order",
                    )
                )
        return findings

    def _resolve_task(
        self,
        context: ProjectContext,
        function: FunctionInfo,
        task_expr: ast.expr,
    ) -> Optional[ast.AST]:
        if isinstance(task_expr, ast.Lambda):
            return task_expr
        qualname = resolve_function_reference(context.project, function, task_expr)
        if qualname is None:
            return None
        return context.project.functions[qualname].node

    def _mutations(self, task_node: ast.AST) -> Iterable[Tuple[ast.AST, str]]:
        for node in ast.walk(task_node):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                receiver = node.func.value
                if (
                    isinstance(receiver, ast.Name)
                    and node.func.attr in _MUTATING_METHODS
                ):
                    yield node, receiver.id
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        yield node, target.value.id
                    elif isinstance(node, ast.AugAssign) and isinstance(
                        target, ast.Name
                    ):
                        # Plain ``x += 1`` on a captured name needs an
                        # explicit nonlocal; the nonlocal filter above
                        # decides whether this one is a capture.
                        yield node, target.id
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        yield node, target.value.id


_GLOBAL_RNG_CONSTRUCTORS = frozenset(
    {"default_rng", "Generator", "RandomState"}
)
_STDLIB_RANDOM = "random"


class TaskRngRule(AnalysisRule):
    """REP202: RNG draws inside parallel task bodies must be seeded + local."""

    rule_id = "REP202"
    name = "nondeterministic-rng-in-task"
    summary = (
        "unseeded default_rng(), module-level generator state, or "
        "global random.* reachable from a parallel task body"
    )
    rationale = (
        "a generator shared across workers (or seeded from entropy) makes "
        "draws depend on scheduling; derive per-task seeds with "
        "spawn_seeds/SeedSequence and construct the generator inside the task"
    )

    def check(self, context: ProjectContext) -> List[Diagnostic]:
        findings: List[Diagnostic] = []
        roots: Set[str] = set()
        lambda_tasks: List[Tuple[FunctionInfo, ast.Lambda]] = []
        for function, _call, task_expr in _submission_sites(context):
            if isinstance(task_expr, ast.Lambda):
                lambda_tasks.append((function, task_expr))
                continue
            qualname = resolve_function_reference(
                context.project, function, task_expr
            )
            if qualname is not None:
                roots.add(qualname)
        reachable = context.callgraph.reachable(roots)
        for qualname in sorted(reachable):
            function = context.project.functions.get(qualname)
            module = context.module_of(function) if function else None
            if function is None or module is None:
                continue
            findings.extend(
                self._check_body(module, owned_nodes(function), qualname)
            )
        for function, lam in lambda_tasks:
            module = context.module_of(function)
            if module is None:
                continue
            findings.extend(
                self._check_body(
                    module, list(ast.walk(lam)), f"{function.qualname}.<lambda>"
                )
            )
        return findings

    def _check_body(
        self, module: ModuleInfo, nodes: Sequence[ast.AST], where: str
    ) -> List[Diagnostic]:
        findings: List[Diagnostic] = []
        for node in nodes:
            if isinstance(node, ast.Call):
                dotted = resolve_dotted(module, node.func)
                terminal = dotted.rsplit(".", 1)[-1] if dotted else ""
                if terminal == "default_rng" and not node.args and not node.keywords:
                    findings.append(
                        self.diagnostic(
                            module,
                            node,
                            "unseeded default_rng() inside a parallel task "
                            f"body ({where}): every worker draws fresh "
                            "entropy; derive the seed from "
                            "spawn_seeds/SeedSequence((seed, task_key))",
                        )
                    )
                elif dotted.startswith(f"{_STDLIB_RANDOM}."):
                    findings.append(
                        self.diagnostic(
                            module,
                            node,
                            f"global-state {dotted}() called from a parallel "
                            f"task body ({where}); the stdlib random module "
                            "shares one hidden state across every worker -- "
                            "use a per-task np.random.Generator",
                        )
                    )
                elif (
                    dotted.startswith("numpy.random.")
                    and terminal not in _GLOBAL_RNG_CONSTRUCTORS
                    # Capitalised terminals are bit-generator / seeding
                    # classes (SeedSequence, PCG64...), not global draws.
                    and not terminal[:1].isupper()
                ):
                    findings.append(
                        self.diagnostic(
                            module,
                            node,
                            f"legacy global-state {dotted}() called from a "
                            f"parallel task body ({where}); np.random.* draws "
                            "from one process-wide state -- use a per-task "
                            "Generator from a spawned seed",
                        )
                    )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                bound = module.module_globals.get(node.id)
                if (
                    isinstance(bound, ast.Call)
                    and resolve_dotted(module, bound.func)
                    .rsplit(".", 1)[-1]
                    in _GLOBAL_RNG_CONSTRUCTORS
                ):
                    findings.append(
                        self.diagnostic(
                            module,
                            node,
                            f"module-level generator {node.id!r} used inside "
                            f"a parallel task body ({where}); a shared "
                            "Generator advances in completion order -- "
                            "construct one per task from a spawned seed",
                        )
                    )
        return findings


_ORDER_INDEPENDENT_WRAPPERS = frozenset(
    {"sorted", "set", "frozenset", "len", "any", "all", "max", "min", "sum"}
)
_ORDERED_CONSUMERS = frozenset({"list", "tuple", "enumerate"})


class UnorderedIterationRule(AnalysisRule):
    """REP203: set iteration must not feed ordered results."""

    rule_id = "REP203"
    name = "unordered-iteration"
    summary = (
        "iteration over a set feeding an ordered result (list, join, "
        "accumulation) without sorted()"
    )
    rationale = (
        "set order depends on hash seeding and differs across processes; "
        "fingerprints and parallel-merged results built from it are not "
        "reproducible -- wrap the set in sorted()"
    )

    def check(self, context: ProjectContext) -> List[Diagnostic]:
        findings: List[Diagnostic] = []
        for module in context.project.modules.values():
            set_vars = self._set_typed_names(module.tree)
            for node in ast.walk(module.tree):
                findings.extend(self._check_node(module, node, set_vars))
        return findings

    def _set_typed_names(self, tree: ast.Module) -> Set[str]:
        """Names assigned from set-typed expressions, anywhere in the module."""
        names: Set[str] = set()
        # Two passes so ``b = a`` after ``a = set()`` resolves.
        for _ in range(2):
            for node in ast.walk(tree):
                if isinstance(node, ast.Assign):
                    if self._is_set_expr(node.value, names):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                names.add(target.id)
        return names

    def _is_set_expr(self, expr: ast.expr, set_vars: Set[str]) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            if expr.func.id in ("set", "frozenset"):
                return True
        if isinstance(expr, ast.Name):
            return expr.id in set_vars
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(expr.left, set_vars) or self._is_set_expr(
                expr.right, set_vars
            )
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
            if expr.func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            ):
                return self._is_set_expr(expr.func.value, set_vars)
        return False

    def _check_node(
        self, module: ModuleInfo, node: ast.AST, set_vars: Set[str]
    ) -> List[Diagnostic]:
        findings: List[Diagnostic] = []
        if isinstance(node, ast.For) and self._is_set_expr(node.iter, set_vars):
            if self._has_ordered_effect(node):
                findings.append(
                    self.diagnostic(
                        module,
                        node,
                        "for-loop over a set accumulates an ordered result; "
                        "set order is hash-seed dependent -- iterate "
                        "sorted(...) instead",
                    )
                )
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            if any(
                self._is_set_expr(gen.iter, set_vars) for gen in node.generators
            ) and not self._order_independent_context(node):
                findings.append(
                    self.diagnostic(
                        module,
                        node,
                        "comprehension over a set builds an ordered sequence; "
                        "set order is hash-seed dependent -- iterate "
                        "sorted(...) instead",
                    )
                )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if (
                node.func.id in _ORDERED_CONSUMERS
                and node.args
                and self._is_set_expr(node.args[0], set_vars)
            ):
                findings.append(
                    self.diagnostic(
                        module,
                        node,
                        f"{node.func.id}() over a set produces a hash-seed "
                        "dependent order -- use sorted(...)",
                    )
                )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if (
                node.func.attr == "join"
                and node.args
                and self._is_set_expr(node.args[0], set_vars)
            ):
                findings.append(
                    self.diagnostic(
                        module,
                        node,
                        "str.join over a set produces a hash-seed dependent "
                        "string -- join sorted(...) instead",
                    )
                )
        return findings

    def _order_independent_context(self, node: ast.AST) -> bool:
        parent = getattr(node, "_reprolint_parent", None)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _ORDER_INDEPENDENT_WRAPPERS
        )

    def _has_ordered_effect(self, loop: ast.For) -> bool:
        for node in ast.walk(loop):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in ("append", "extend", "insert", "write"):
                    return True
            elif isinstance(node, ast.AugAssign):
                return True
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
        return False


_CLOCK_SOURCES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbits",
    }
)
_CLOCK_TERMINALS = frozenset({"now", "utcnow", "today"})
_FINGERPRINT_SINKS = frozenset(
    {
        "cell_fingerprint",
        "fingerprint",
        "md5",
        "sha1",
        "sha256",
        "sha512",
        "blake2b",
        "blake2s",
    }
)
_SEED_KWARGS = frozenset({"seed", "jitter", "random_state"})


class WallClockFingerprintRule(AnalysisRule):
    """REP204: wall-clock/entropy must never reach fingerprints or seeds."""

    rule_id = "REP204"
    name = "wall-clock-in-fingerprint"
    summary = (
        "time/entropy values flowing into checkpoint fingerprints, "
        "hashes, or seed=/jitter= arguments"
    )
    rationale = (
        "a fingerprint containing the clock never matches on resume and a "
        "seed from entropy is a different experiment every run; identity "
        "and jitter must be functions of the configuration only"
    )

    def _is_clock_source(self, module: ModuleInfo, expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        dotted = resolve_dotted(module, expr.func)
        if dotted in _CLOCK_SOURCES:
            return True
        if dotted.startswith("datetime.") and dotted.rsplit(".", 1)[-1] in (
            _CLOCK_TERMINALS
        ):
            return True
        return False

    def check(self, context: ProjectContext) -> List[Diagnostic]:
        sink = SinkSpec(
            call_names=_FINGERPRINT_SINKS, keyword_names=_SEED_KWARGS
        )
        leaks = compute_param_leaks(context, sink)

        def sources_for(function: FunctionInfo):
            module = context.module_of(function)

            def expr_sources(expr: ast.expr):
                if module is not None and self._is_clock_source(module, expr):
                    dotted = resolve_dotted(module, expr.func)  # type: ignore[attr-defined]
                    return [("clock", dotted, expr.lineno)]
                return []

            return expr_sources

        flows = find_source_flows(
            context,
            expr_sources_for=sources_for,
            seams_for=lambda function: None,
            sink=sink,
            leaks=leaks,
        )
        findings: List[Diagnostic] = []
        for flow in flows:
            module = context.module_of(flow.function)
            if module is None:
                continue
            labels = sorted(
                str(label[1]) for label in flow.labels if isinstance(label, tuple)
            )
            origin = ", ".join(labels) or "a wall-clock/entropy call"
            via = f" via {flow.via}" if flow.via else ""
            findings.append(
                self.diagnostic(
                    module,
                    flow.call,
                    f"value derived from {origin} reaches a fingerprint/seed "
                    f"sink{via}; checkpoint identity and retry jitter must "
                    "depend only on configuration",
                )
            )
        return findings
