"""REP101 -- RNG discipline: no legacy ``numpy.random`` module calls.

Calls like ``np.random.seed(...)`` or ``np.random.normal(...)`` draw
from (or mutate) one hidden process-global ``RandomState``.  Any such
call makes results depend on import order and on every other draw in
the process -- which silently breaks the exchangeability that the
conformal coverage guarantee rests on, and makes experiments
irreproducible.  The repository contract is explicit generator
passing: accept a seed/``np.random.Generator`` parameter and thread it
through (see ``repro.models.base.check_random_state``).

Flags, in both src and tests:

* calls to anything under ``numpy.random`` except the explicitly
  allowed modern constructors (``default_rng``, ``Generator``,
  ``SeedSequence`` and the bit generators),
* the same functions imported directly (``from numpy.random import
  seed``) and then called,
* ``numpy.random.RandomState(...)`` -- legacy even when seeded.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from typing import TYPE_CHECKING

from repro.devtools.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.devtools.engine import ModuleContext
from repro.devtools.rules.base import Rule, dotted_name

__all__ = ["RngDisciplineRule"]

_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


class RngDisciplineRule(Rule):
    """Forbid the process-global legacy ``numpy.random`` API."""

    rule_id = "REP101"
    name = "rng-discipline"
    summary = "no np.random.seed / legacy global-state np.random calls"
    rationale = (
        "global RNG state couples every draw in the process; conformal "
        "splits must come from an explicitly passed np.random.Generator"
    )
    scopes = frozenset({"src", "test"})

    def start_module(self, context: ModuleContext) -> None:
        # Pre-pass: map local aliases to the dotted modules/names they
        # denote, so np.random.normal, numpy.random.normal and a bare
        # `normal` from `from numpy.random import normal` all resolve.
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self._aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def _resolve(self, node: ast.AST) -> str:
        dotted = dotted_name(node)
        if not dotted:
            return ""
        head, _, rest = dotted.partition(".")
        head = self._aliases.get(head, head)
        full = f"{head}.{rest}" if rest else head
        # Normalise the conventional alias even without a visible import
        # (conftest injections, doctest namespaces).
        if full == "np.random" or full.startswith("np.random."):
            full = "numpy" + full[len("np") :]
        return full

    def visit_Call(self, node: ast.Call, context: ModuleContext) -> Iterator[Diagnostic]:
        """Flag calls resolving into the legacy ``numpy.random`` surface."""
        full = self._resolve(node.func)
        if not full.startswith("numpy.random."):
            return
        member = full[len("numpy.random.") :].split(".")[0]
        if member in _ALLOWED:
            return
        if member == "seed":
            advice = (
                "np.random.seed mutates the process-global RNG; pass an "
                "explicit np.random.Generator (see check_random_state) instead"
            )
        elif member == "RandomState":
            advice = (
                "np.random.RandomState is the legacy RNG; construct "
                "np.random.default_rng(seed) instead"
            )
        else:
            advice = (
                f"np.random.{member} draws from the hidden global RandomState; "
                "call the method on an explicitly passed np.random.Generator"
            )
        yield self.diagnostic(node, context, advice)
