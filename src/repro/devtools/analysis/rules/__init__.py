"""Whole-program analysis rule registry (REP2xx + REP3xx)."""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.devtools.analysis.rules.base import AnalysisRule, ProjectContext
from repro.devtools.analysis.rules.concurrency import (
    ClosureCaptureRule,
    TaskRngRule,
    UnorderedIterationRule,
    WallClockFingerprintRule,
)
from repro.devtools.analysis.rules.conformal import (
    CalibrationLeakRule,
    RefitAfterCalibrateRule,
)

__all__ = [
    "ALL_ANALYSIS_RULES",
    "AnalysisRule",
    "ProjectContext",
    "get_analysis_rule",
]

ALL_ANALYSIS_RULES: List[Type[AnalysisRule]] = [
    ClosureCaptureRule,
    TaskRngRule,
    UnorderedIterationRule,
    WallClockFingerprintRule,
    CalibrationLeakRule,
    RefitAfterCalibrateRule,
]

_BY_ID: Dict[str, Type[AnalysisRule]] = {
    rule.rule_id: rule for rule in ALL_ANALYSIS_RULES
}


def get_analysis_rule(rule_id: str) -> Optional[Type[AnalysisRule]]:
    """Look up an analysis rule class by its ``REPnnn`` identifier."""
    return _BY_ID.get(rule_id)
