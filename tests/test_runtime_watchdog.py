"""Tests for deadlines and the subprocess watchdog (repro.runtime.watchdog)."""

from __future__ import annotations

import os
import time

import pytest

from repro.runtime.retry import TransientFault
from repro.runtime.watchdog import (
    Deadline,
    TaskTimeout,
    WorkerCrash,
    check_deadline,
    current_deadline,
    deadline_scope,
    remaining_time,
    run_in_subprocess,
    run_with_deadline,
)


class TestDeadline:
    def test_positive_budget_required(self):
        with pytest.raises(ValueError, match="seconds"):
            Deadline(0.0)

    def test_fresh_deadline_not_expired(self):
        deadline = Deadline(60.0)
        assert not deadline.expired
        assert deadline.remaining() > 0
        deadline.check()  # must not raise

    def test_expired_deadline_raises(self):
        deadline = Deadline(0.001)
        time.sleep(0.01)
        assert deadline.expired
        with pytest.raises(TaskTimeout, match="deadline"):
            deadline.check()

    def test_timeout_is_a_transient_fault(self):
        assert issubclass(TaskTimeout, TransientFault)
        assert issubclass(WorkerCrash, TransientFault)


class TestDeadlineScope:
    def test_no_scope_means_no_deadline(self):
        assert current_deadline() is None
        assert remaining_time() is None
        check_deadline()  # free no-op

    def test_none_seconds_is_a_no_op_scope(self):
        with deadline_scope(None) as deadline:
            assert deadline is None
            assert current_deadline() is None

    def test_scope_installs_and_removes(self):
        with deadline_scope(30.0) as deadline:
            assert current_deadline() is deadline
            assert remaining_time() <= 30.0
        assert current_deadline() is None

    def test_nested_scopes_honour_the_tightest(self):
        with deadline_scope(60.0):
            with deadline_scope(0.001):
                time.sleep(0.01)
                with pytest.raises(TaskTimeout):
                    check_deadline()
            # Inner expiry does not poison the outer scope.
            check_deadline()

    def test_outer_expiry_seen_inside_inner_scope(self):
        with deadline_scope(0.001):
            time.sleep(0.01)
            with deadline_scope(60.0):
                with pytest.raises(TaskTimeout):
                    check_deadline()

    def test_scope_popped_on_exception(self):
        with pytest.raises(RuntimeError):
            with deadline_scope(30.0):
                raise RuntimeError("boom")
        assert current_deadline() is None

    def test_run_with_deadline_returns_value(self):
        assert run_with_deadline(lambda: 7, 30.0) == 7
        assert run_with_deadline(lambda: 7, None) == 7


def _double(value):
    return value * 2


def _raise_value_error(value):
    raise ValueError(f"bad input {value}")


def _hang_forever(_value):  # pragma: no cover - killed by the watchdog
    while True:
        time.sleep(0.05)


def _die_silently(_value):  # pragma: no cover - exits before reporting
    os._exit(17)


def _unpicklable(_value):
    return lambda: None  # lambdas cannot cross the result pipe


class TestRunInSubprocess:
    def test_result_round_trips(self):
        assert run_in_subprocess(_double, 21) == 42

    def test_child_exception_reraised(self):
        with pytest.raises(ValueError, match="bad input 3"):
            run_in_subprocess(_raise_value_error, 3)

    def test_hung_child_is_killed(self):
        start = time.monotonic()
        with pytest.raises(TaskTimeout, match="killed"):
            run_in_subprocess(_hang_forever, None, timeout=0.5)
        assert time.monotonic() - start < 10.0

    def test_silent_death_is_worker_crash(self):
        # Depending on timing the death surfaces as "no result" or as a
        # broken result pipe; both are WorkerCrash carrying the exit code.
        with pytest.raises(WorkerCrash, match="exit code 17"):
            run_in_subprocess(_die_silently, None)

    def test_unpicklable_result_is_worker_crash(self):
        with pytest.raises(WorkerCrash, match="pickle"):
            run_in_subprocess(_unpicklable, None)
