"""The fault-tolerant batch scoring service for Vmin intervals.

:class:`VminServingService` is the deployment shell around a registry
of fitted :class:`~repro.robust.flow.RobustVminFlow` bundles.  It owns
exactly the concerns that belong *outside* the model:

* **verified loading and the fallback chain** -- every model comes out
  of a :class:`~repro.serve.registry.ModelRegistry` checksum-verified;
  when the latest version is corrupt the service quarantines it, rolls
  back to the last known good version, then to a parametric fallback
  model, and only when the whole chain is exhausted starts rejecting
  (:class:`FallbackLevel`), with every step audited through
  :class:`~repro.serve.health.HealthStateMachine`;
* **admission control** -- at most ``max_in_flight`` batches score
  concurrently and at most ``max_waiting`` queue behind them; beyond
  that, callers get a typed :class:`Overloaded` immediately instead of
  unbounded latency;
* **deadlines and retries** -- each request runs inside a cooperative
  :func:`~repro.runtime.watchdog.deadline_scope` and transient faults
  (crashed workers, timeouts) re-run under a deterministic
  :class:`~repro.runtime.retry.RetryPolicy`;
* **hot-swap** -- :meth:`VminServingService.hot_swap` atomically
  replaces the served model; in-flight requests keep the snapshot they
  started with, so a swap drops zero requests by construction;
* **the label feedback loop** -- :meth:`VminServingService.observe`
  streams measured Vmin back into the flow's coverage monitor and
  flips the service ``READY <-> DEGRADED`` on alarm/recovery;
* **shift defense** -- an optional
  :class:`~repro.serve.shiftguard.ShiftGuard` rides the same feedback
  loop: its exchangeability martingale and covariate detector are
  re-armed on every installed model, new alarms degrade the service
  under the audited ``EXCHANGEABILITY_ALARM`` / ``COVARIATE_SHIFT``
  reason codes, and :meth:`VminServingService.repair_shift` applies
  (or, when the density-ratio weights degenerate, refuses) a
  weighted-conformal recalibration.

Scoring is exposed as :meth:`~VminServingService.score` (not
``predict``): the service is an orchestrator that mutates audit and
admission state per call, which the repository's read-only-predict
convention reserves ``predict`` names from doing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Set, Tuple

import numpy as np

from repro.robust.fallback import DegradedPrediction
from repro.robust.flow import RobustVminFlow
from repro.runtime.artifacts import ArtifactError
from repro.runtime.retry import RetryPolicy, run_attempts
from repro.runtime.watchdog import check_deadline, deadline_scope
from repro.serve.compiled import ensure_compiled
from repro.serve.health import (
    FallbackLevel,
    HealthStateMachine,
    ReasonCode,
    ServiceState,
)
from repro.serve.registry import ModelRegistry
from repro.serve.shiftguard import ShiftGuard, ShiftVerdict
from repro.shift import DegenerateWeightsError

__all__ = [
    "Overloaded",
    "RejectedRequest",
    "ServingConfig",
    "ServingResult",
    "VminServingService",
]

TaskWrapper = Callable[[Callable[[object], object]], Callable[[object], object]]


class Overloaded(RuntimeError):
    """The service refused admission: in-flight and queue limits are full.

    Typed (rather than a generic error) so load generators and upstream
    dispatchers can distinguish "shed load, try later" from a failure of
    the request itself.
    """


class RejectedRequest(RuntimeError):
    """The service has no servable model (fallback chain exhausted).

    The terminal :class:`~repro.serve.health.FallbackLevel.REJECT` level:
    refusing loudly is the only honest answer once no verified bundle
    and no parametric fallback exists.
    """


@dataclass(frozen=True)
class ServingConfig:
    """Operational limits of one :class:`VminServingService`.

    Parameters
    ----------
    max_in_flight:
        Batches allowed to score concurrently.
    max_waiting:
        Batches allowed to queue behind the in-flight ones; an arrival
        beyond this raises :class:`Overloaded` immediately.
    queue_timeout_s:
        How long a queued request waits for an execution slot before
        giving up with :class:`Overloaded` (bounded queueing delay).
    deadline_s:
        Cooperative per-request deadline
        (:func:`~repro.runtime.watchdog.deadline_scope`); ``None``
        disables it.
    retry_policy:
        Retry schedule for transient scoring faults; ``None`` scores
        exactly once.
    """

    max_in_flight: int = 4
    max_waiting: int = 8
    queue_timeout_s: float = 5.0
    deadline_s: Optional[float] = None
    retry_policy: Optional[RetryPolicy] = None

    def __post_init__(self) -> None:
        if self.max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {self.max_in_flight}"
            )
        if self.max_waiting < 0:
            raise ValueError(
                f"max_waiting must be >= 0, got {self.max_waiting}"
            )
        if not self.queue_timeout_s >= 0:
            raise ValueError(
                f"queue_timeout_s must be >= 0, got {self.queue_timeout_s}"
            )
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise ValueError(
                f"deadline_s must be > 0 when set, got {self.deadline_s}"
            )


@dataclass(frozen=True)
class ServingResult:
    """One scored batch plus its provenance and cost.

    Attributes
    ----------
    prediction:
        The flow's structured answer (intervals, degradation status,
        health masks, notes).
    model_version:
        Registry version name that produced it (``"<parametric>"`` when
        served by the in-memory parametric fallback).
    fallback_level:
        Where in the fallback chain the serving model sat at snapshot
        time.
    state:
        Service readiness when the request was admitted.
    attempts:
        Scoring executions made (1 = first try succeeded; more means
        transient faults were retried away).
    wall_s:
        End-to-end wall-clock seconds, queueing included.
    """

    prediction: DegradedPrediction
    model_version: str
    fallback_level: FallbackLevel
    state: ServiceState
    attempts: int
    wall_s: float


PARAMETRIC_VERSION = "<parametric>"


class VminServingService:
    """Registry-backed, admission-controlled Vmin interval scoring.

    Parameters
    ----------
    registry:
        The :class:`~repro.serve.registry.ModelRegistry` models are
        loaded from (and recalibrated versions published back to).
    config:
        Operational limits; defaults to :class:`ServingConfig`.
    parametric_model:
        Optional fitted in-memory flow used as the last resort before
        rejection -- typically a parametric-only
        :class:`~repro.robust.flow.RobustVminFlow` small enough to bake
        into the process image.
    task_wrapper:
        Test seam: wraps the per-request scoring callable exactly like
        the execution-fault injectors of :mod:`repro.robust.faults`
        (``wrapper(fn)(request_id)``), so the soak harness can crash or
        hang scoring attempts without touching service internals.
    shift_guard:
        Optional :class:`~repro.serve.shiftguard.ShiftGuard`.  When
        given, the guard is (re-)armed on every model the fallback
        chain installs and fed by :meth:`observe`; new sentinel alarms
        degrade the service under ``EXCHANGEABILITY_ALARM`` /
        ``COVARIATE_SHIFT``, and :meth:`repair_shift` becomes the
        audited recovery path.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        config: Optional[ServingConfig] = None,
        parametric_model: Optional[RobustVminFlow] = None,
        task_wrapper: Optional[TaskWrapper] = None,
        shift_guard: Optional[ShiftGuard] = None,
    ) -> None:
        self.registry = registry
        self.config = config if config is not None else ServingConfig()
        self.parametric_model = parametric_model
        self.task_wrapper = task_wrapper
        self.shift_guard = shift_guard
        self.last_shift_verdict_: Optional[ShiftVerdict] = None
        self.health = HealthStateMachine()
        self._model: Optional[RobustVminFlow] = None
        self._version: str = PARAMETRIC_VERSION
        self._level: FallbackLevel = FallbackLevel.REJECT
        self._lock = threading.RLock()
        self._slots = threading.Semaphore(self.config.max_in_flight)
        self._waiting = 0
        self._waiting_lock = threading.Lock()
        self.n_served_ = 0
        self.n_rejected_ = 0
        self.n_overloaded_ = 0
        # Audit set: every version name that passed checksum verification
        # before being installed (plus the parametric marker).  The soak
        # harness asserts each ServingResult.model_version is in here --
        # the "never served an unverified artifact" invariant.
        self.verified_versions_: Set[str] = set()

    # -- lifecycle -------------------------------------------------------------
    @property
    def state(self) -> ServiceState:
        """Current readiness state."""
        return self.health.state

    @property
    def model_version(self) -> str:
        """Registry version currently served (snapshot, may swap)."""
        with self._lock:
            return self._version

    @property
    def fallback_level(self) -> FallbackLevel:
        """Current position in the fallback chain."""
        with self._lock:
            return self._level

    @property
    def served_model(self) -> Optional[RobustVminFlow]:
        """The flow currently serving (``None`` before :meth:`start`)."""
        with self._lock:
            return self._model

    def start(self) -> ServiceState:
        """Load a model through the fallback chain and open for traffic.

        Walks current -> last-known-good -> parametric; ends ``READY``
        when the latest version loaded clean, ``DEGRADED`` when any
        fallback step was taken, and stays unready (scores raise
        :class:`RejectedRequest`) when the chain is exhausted.
        """
        with self._lock:
            level = self._acquire_model()
            if level is FallbackLevel.CURRENT:
                self.health.transition(
                    ServiceState.READY,
                    ReasonCode.STARTUP_COMPLETE,
                    f"serving {self._version}",
                )
            elif level is not FallbackLevel.REJECT:
                self.health.transition(
                    ServiceState.DEGRADED,
                    ReasonCode.STARTUP_COMPLETE,
                    f"started on fallback chain level {level.name}",
                )
            return self.health.state

    def drain(self) -> None:
        """Stop admitting requests; in-flight batches finish normally."""
        with self._lock:
            if self.health.state is not ServiceState.DRAINING:
                self.health.transition(
                    ServiceState.DRAINING, ReasonCode.DRAIN_REQUESTED
                )

    # -- the fallback chain ----------------------------------------------------
    def _acquire_model(self) -> FallbackLevel:
        """Load the best available model; record every step taken.

        Tries the latest registry version first; on corruption the
        registry quarantines it and repoints ``LATEST``, so retrying the
        load walks down to the last known good version automatically.
        Exhausting the registry falls through to the in-memory
        parametric model, then to rejection.  Returns the level reached
        and installs the model under the service lock.
        """
        target = self.registry.latest()
        while True:
            name = self.registry.latest()
            if name is None:
                break
            try:
                model, record = self.registry.load(name)
            except ArtifactError as error:
                self.health.note(
                    ReasonCode.ARTIFACT_CORRUPT,
                    f"{name}: {error}",
                )
                continue  # registry repointed LATEST; try the next one
            # Bundles published before the decision-table kernels existed
            # carry plain per-tree ensembles; compile them once at load
            # so every served batch goes through the fast path.
            ensure_compiled(model)
            self._model = model
            self._version = record.name
            self.verified_versions_.add(record.name)
            if target is not None and record.name != target:
                self._level = FallbackLevel.LAST_KNOWN_GOOD
                self.health.note(
                    ReasonCode.ROLLED_BACK,
                    f"latest {target} unusable; rolled back to {record.name}",
                )
            else:
                self._level = FallbackLevel.CURRENT
                self.health.note(
                    ReasonCode.MODEL_VERIFIED, f"{record.name} checksum ok"
                )
            self._arm_shift_guard()
            return self._level
        if self.parametric_model is not None:
            ensure_compiled(self.parametric_model)
            self._model = self.parametric_model
            self._version = PARAMETRIC_VERSION
            self._level = FallbackLevel.PARAMETRIC
            self.verified_versions_.add(PARAMETRIC_VERSION)
            self.health.note(
                ReasonCode.PARAMETRIC_FALLBACK,
                "registry exhausted; serving in-memory parametric model",
            )
            self._arm_shift_guard()
            return self._level
        self._model = None
        self._version = PARAMETRIC_VERSION
        self._level = FallbackLevel.REJECT
        return self._level

    def hot_swap(self) -> str:
        """Swap to the newest verified registry version, zero downtime.

        Re-runs the fallback chain under the lock and returns the
        version now served.  Requests already in flight keep the model
        snapshot they were admitted with, so none are dropped; requests
        admitted after the swap see the new model.  A swap that lands on
        a fallback level (corrupt latest) degrades the service; a swap
        back onto the current level while degraded-by-rollback recovers
        it.
        """
        with self._lock:
            previous = self._version
            previous_model = self._model
            level = self._acquire_model()
            if self._model is None:
                if previous_model is not None:
                    # The registry is exhausted but the process still
                    # holds a model that was verified when loaded: keep
                    # serving it rather than going dark -- it *is* the
                    # last known good, just in memory instead of on disk.
                    self._model = previous_model
                    self._version = previous
                    self._level = FallbackLevel.LAST_KNOWN_GOOD
                    level = self._level
                    self.health.note(
                        ReasonCode.ROLLED_BACK,
                        f"registry exhausted; continuing on in-memory "
                        f"{previous}",
                    )
                else:
                    raise RejectedRequest(
                        "hot swap found no servable model in the registry"
                    )
            if self._version != previous:
                self.health.note(
                    ReasonCode.HOT_SWAP, f"{previous} -> {self._version}"
                )
            if (
                level is FallbackLevel.CURRENT
                and self.health.state is ServiceState.DEGRADED
                and not self._coverage_alarmed()
                and not self._shift_alarmed()
            ):
                self.health.transition(
                    ServiceState.READY,
                    ReasonCode.MODEL_VERIFIED,
                    f"recovered onto verified {self._version}",
                )
            elif (
                level is not FallbackLevel.CURRENT
                and self.health.state is ServiceState.READY
            ):
                self.health.transition(
                    ServiceState.DEGRADED,
                    ReasonCode.ROLLED_BACK,
                    f"serving fallback level {level.name}",
                )
            return self._version

    def _arm_shift_guard(self) -> None:
        """Re-baseline the shift sentinels on the just-installed model.

        Bundles published before the shift layer existed carry no
        frozen calibration features; those are served with the guard
        disarmed rather than refused -- the coverage monitor still
        protects them, just without the leading signals.
        """
        guard = self.shift_guard
        model = self._model
        if guard is None:
            return
        self.last_shift_verdict_ = None
        if not isinstance(model, RobustVminFlow) or model.primary_ is None:
            guard.disarm()
            return
        try:
            guard.arm(model)
        except RuntimeError:
            guard.disarm()

    def _coverage_alarmed(self) -> bool:
        """Whether the served flow's coverage monitor is in alarm."""
        model = self._model
        return (
            isinstance(model, RobustVminFlow)
            and model.primary_ is not None
            and model.monitor_.in_alarm_
        )

    def _shift_alarmed(self) -> bool:
        """Whether any armed shift sentinel is currently alarmed."""
        guard = self.shift_guard
        return (
            guard is not None and guard.armed and guard.verdict().any_alarm()
        )

    def _snapshot(self) -> Tuple[RobustVminFlow, str, FallbackLevel]:
        """Consistent (model, version, level) triple for one request."""
        with self._lock:
            if self._model is None:
                raise RejectedRequest(
                    "no servable model: registry exhausted and no "
                    "parametric fallback configured"
                )
            return self._model, self._version, self._level

    # -- admission control -----------------------------------------------------
    def _admit(self) -> None:
        """Take an execution slot or raise :class:`Overloaded`."""
        if self._slots.acquire(blocking=False):
            return
        with self._waiting_lock:
            if self._waiting >= self.config.max_waiting:
                self.n_overloaded_ += 1
                raise Overloaded(
                    f"{self.config.max_in_flight} batches in flight and "
                    f"{self._waiting} waiting (max_waiting="
                    f"{self.config.max_waiting})"
                )
            self._waiting += 1
        try:
            if not self._slots.acquire(timeout=self.config.queue_timeout_s):
                self.n_overloaded_ += 1
                raise Overloaded(
                    f"no execution slot within queue_timeout_s="
                    f"{self.config.queue_timeout_s:g}"
                )
        finally:
            with self._waiting_lock:
                self._waiting -= 1

    # -- scoring ---------------------------------------------------------------
    def score(self, X: np.ndarray) -> ServingResult:
        """Score one batch through admission, deadline, and retry.

        The flow's graceful-degradation contract applies to the data
        (value damage comes back as a :class:`DegradedPrediction`);
        this method adds the service contract on top: typed
        :class:`Overloaded` under load shedding, typed
        :class:`RejectedRequest` when no model is servable, transient
        faults retried per the configured policy, and the model
        reference frozen per request so hot-swaps never invalidate
        in-flight work.
        """
        started = time.perf_counter()
        if not self.health.ready:
            self.n_rejected_ += 1
            raise RejectedRequest(
                f"service is {self.health.state.value}, not accepting requests"
            )
        self._admit()
        try:
            model, version, level = self._snapshot()
            state = self.health.state
            request_id = self.n_served_ + self.n_rejected_

            def score_once(item: object) -> DegradedPrediction:
                check_deadline()
                return model.predict_interval(X)

            worker = (
                self.task_wrapper(score_once)
                if self.task_wrapper is not None
                else score_once
            )

            def attempt_fn() -> DegradedPrediction:
                with deadline_scope(self.config.deadline_s):
                    return worker(request_id)

            attempt = run_attempts(
                attempt_fn,
                policy=self.config.retry_policy,
                task_key=request_id,
            )
            if not attempt.ok:
                self.n_rejected_ += 1
                attempt.unwrap()
            prediction = attempt.value
            self.n_served_ += 1
            return ServingResult(
                prediction=prediction,
                model_version=version,
                fallback_level=level,
                state=state,
                attempts=attempt.attempts,
                wall_s=time.perf_counter() - started,
            )
        finally:
            self._slots.release()

    # -- the feedback loop -----------------------------------------------------
    def observe(
        self,
        X: np.ndarray,
        y: np.ndarray,
        zones: Optional[Sequence] = None,
    ) -> Optional[Any]:
        """Stream measured labels into the served flow's monitor.

        Drives the readiness machine from the monitor's verdicts: a
        coverage alarm degrades the service (reason
        ``COVERAGE_ALARM``); sustained recovery past the target while
        degraded-by-coverage promotes it back (``COVERAGE_RECOVERED``).
        When a :class:`~repro.serve.shiftguard.ShiftGuard` is armed the
        same batch also feeds the shift sentinels: a *newly* fired
        exchangeability or covariate alarm degrades the service under
        its own reason code, and a new wafer-zone coverage alarm is
        recorded as an audited ``COVERAGE_ALARM`` note (``zones``
        labels each chip with its wafer zone; ``None`` skips the
        per-zone monitors).  Returns the coverage alarm fired by this
        batch, if any.  Zero labels are a no-op, mirroring the flow
        contract.
        """
        with self._lock:
            model = self._model
        if model is None:
            raise RejectedRequest("no servable model to observe labels on")
        was_alarmed = self._coverage_alarmed()
        alarm = model.observe(X, y)
        verdict: Optional[ShiftVerdict] = None
        guard = self.shift_guard
        if (
            guard is not None
            and guard.armed
            and isinstance(model, RobustVminFlow)
            and np.asarray(y).shape[0] > 0
        ):
            verdict = guard.observe(model, X, y, zones=zones)
        with self._lock:
            if alarm is not None and self.health.state is ServiceState.READY:
                self.health.transition(
                    ServiceState.DEGRADED,
                    ReasonCode.COVERAGE_ALARM,
                    alarm.describe(),
                )
            elif (
                was_alarmed
                and not self._coverage_alarmed()
                and self.health.state is ServiceState.DEGRADED
                and self._level is FallbackLevel.CURRENT
                and not self._shift_alarmed()
            ):
                self.health.transition(
                    ServiceState.READY,
                    ReasonCode.COVERAGE_RECOVERED,
                    f"rolling coverage {model.rolling_coverage():.1%}",
                )
            if verdict is not None:
                self._audit_shift_verdict(guard, verdict)
                self.last_shift_verdict_ = verdict
        return alarm

    def _audit_shift_verdict(
        self, guard: ShiftGuard, verdict: ShiftVerdict
    ) -> None:
        """Map newly fired sentinel alarms onto audited health edges.

        Must be called under the service lock.  Only *transitions into*
        alarm are recorded (the sentinels latch, so every subsequent
        batch would otherwise re-log the same event).
        """
        previous = self.last_shift_verdict_
        if verdict.exchangeability_alarm and not (
            previous is not None and previous.exchangeability_alarm
        ):
            detail = (
                guard.martingale_.alarms_[-1].describe()
                if guard.martingale_ is not None and guard.martingale_.alarms_
                else verdict.describe()
            )
            if self.health.state is ServiceState.READY:
                self.health.transition(
                    ServiceState.DEGRADED,
                    ReasonCode.EXCHANGEABILITY_ALARM,
                    detail,
                )
            else:
                self.health.note(ReasonCode.EXCHANGEABILITY_ALARM, detail)
        if verdict.covariate_alarm and not (
            previous is not None and previous.covariate_alarm
        ):
            detail = (
                guard.detector_.alarms_[-1].describe()
                if guard.detector_ is not None and guard.detector_.alarms_
                else verdict.describe()
            )
            if self.health.state is ServiceState.READY:
                self.health.transition(
                    ServiceState.DEGRADED,
                    ReasonCode.COVARIATE_SHIFT,
                    detail,
                )
            else:
                self.health.note(ReasonCode.COVARIATE_SHIFT, detail)
        known = set(previous.zone_alarms) if previous is not None else set()
        fresh = sorted(set(verdict.zone_alarms) - known)
        if fresh:
            self.health.note(
                ReasonCode.COVERAGE_ALARM,
                f"wafer-zone coverage alarm: {', '.join(fresh)}",
            )

    def repair_shift(
        self,
        X_recent: np.ndarray,
        ratio_columns: Optional[Sequence[int]] = None,
        min_ess: float = 10.0,
        ratio_estimator: Optional[Any] = None,
    ) -> float:
        """Apply a weighted-conformal repair for a detected covariate shift.

        Estimates density-ratio weights between the served flow's frozen
        calibration features and ``X_recent`` (the recent, shifted
        traffic) and installs a weighted recalibration on the flow
        (:meth:`~repro.robust.flow.RobustVminFlow.recalibrate_weighted`).
        On success the shift guard is *disarmed* -- the shift is now
        known and compensated, and sentinels referenced against the
        stale calibration set would re-alarm on it -- the repair is
        audited under ``RECALIBRATED``, and the service returns to
        ``READY`` when nothing else holds it down.  The guard re-arms
        automatically at the next hot-swap or republication.

        When the weights degenerate
        (:class:`~repro.shift.DegenerateWeightsError`: the shift is too
        severe for reweighting to carry a guarantee) the refusal is
        audited under ``COVARIATE_SHIFT`` and the error re-raised with
        the served model untouched -- the honest escalation path is a
        refit on fresh labelled data, not a silently unsupported
        interval.  Returns the effective sample size of the accepted
        weights.
        """
        with self._lock:
            model = self._model
        if not isinstance(model, RobustVminFlow) or model.primary_ is None:
            raise RejectedRequest(
                "no fitted RobustVminFlow is being served; nothing to repair"
            )
        try:
            ess = model.recalibrate_weighted(
                X_recent,
                ratio_columns=ratio_columns,
                min_ess=min_ess,
                ratio_estimator=ratio_estimator,
            )
        except DegenerateWeightsError as error:
            with self._lock:
                self.health.note(
                    ReasonCode.COVARIATE_SHIFT,
                    f"weighted repair refused: {error}",
                )
            raise
        with self._lock:
            if self.shift_guard is not None:
                self.shift_guard.disarm()
            self.last_shift_verdict_ = None
            self.health.note(
                ReasonCode.RECALIBRATED,
                f"weighted shift repair installed (ESS={ess:.1f})",
            )
            if (
                self.health.state is ServiceState.DEGRADED
                and self._level is FallbackLevel.CURRENT
                and not self._coverage_alarmed()
            ):
                self.health.transition(
                    ServiceState.READY,
                    ReasonCode.RECALIBRATED,
                    "weighted recalibration restored nominal serving",
                )
        return float(ess)
