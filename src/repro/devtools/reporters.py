"""Render lint findings as human-readable text or machine-readable JSON.

Both reporters are pure functions from a diagnostic list to a string so
they stay trivially testable; the CLI decides where the string goes.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from repro.devtools.diagnostics import Diagnostic

__all__ = ["render_json", "render_text"]


def render_text(diagnostics: Sequence[Diagnostic], checked_files: int = 0) -> str:
    """GCC-style ``path:line:col: RULE [name] message`` lines plus summary."""
    lines: List[str] = [
        f"{d.location()}: {d.rule_id} [{d.rule_name}] {d.message}"
        for d in diagnostics
    ]
    if diagnostics:
        by_rule = Counter(d.rule_id for d in diagnostics)
        breakdown = ", ".join(
            f"{rule_id}: {count}" for rule_id, count in sorted(by_rule.items())
        )
        lines.append("")
        lines.append(
            f"found {len(diagnostics)} issue(s) in {checked_files} file(s) "
            f"({breakdown})"
        )
    else:
        lines.append(f"checked {checked_files} file(s): all clean")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic], checked_files: int = 0) -> str:
    """Stable JSON document: ``{version, summary, diagnostics}``."""
    by_rule = Counter(d.rule_id for d in diagnostics)
    document = {
        "version": 1,
        "summary": {
            "checked_files": checked_files,
            "total": len(diagnostics),
            "by_rule": dict(sorted(by_rule.items())),
        },
        "diagnostics": [d.as_dict() for d in diagnostics],
    }
    return json.dumps(document, indent=2, sort_keys=True)
