"""Tests for repro.models.losses, including property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.losses import (
    huber_loss,
    mse_gradient_hessian,
    mse_loss,
    pinball_gradient_hessian,
    pinball_loss,
    smooth_pinball_gradient,
    smooth_pinball_loss,
    validate_quantile,
)

finite_floats = st.floats(-1e3, 1e3, allow_nan=False, allow_infinity=False)
quantiles = st.floats(0.01, 0.99)


class TestValidateQuantile:
    @pytest.mark.parametrize("q", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_out_of_range(self, q):
        with pytest.raises(ValueError, match="quantile"):
            validate_quantile(q)

    def test_accepts_and_casts(self):
        assert validate_quantile(np.float32(0.5)) == pytest.approx(0.5)


class TestMSE:
    def test_zero_for_exact(self):
        y = np.array([1.0, 2.0])
        assert mse_loss(y, y) == 0.0

    def test_known_value(self):
        assert mse_loss(np.array([0.0, 0.0]), np.array([1.0, 3.0])) == pytest.approx(5.0)

    def test_gradient_hessian_shapes_and_values(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.array([2.0, 2.0, 2.0])
        grad, hess = mse_gradient_hessian(y, pred)
        np.testing.assert_allclose(grad, [1.0, 0.0, -1.0])
        np.testing.assert_allclose(hess, 1.0)


class TestPinball:
    def test_matches_hand_computed(self):
        # residual +2 at q=0.9 -> 1.8 ; residual -2 -> 0.2
        assert pinball_loss(np.array([2.0]), np.array([0.0]), 0.9) == pytest.approx(1.8)
        assert pinball_loss(np.array([0.0]), np.array([2.0]), 0.9) == pytest.approx(0.2)

    def test_symmetric_at_median_is_half_mae(self):
        y = np.array([1.0, -3.0, 2.0])
        pred = np.zeros(3)
        assert pinball_loss(y, pred, 0.5) == pytest.approx(np.mean(np.abs(y)) / 2)

    def test_minimised_by_empirical_quantile(self, rng):
        y = rng.normal(size=2000)
        q = 0.8
        target = np.quantile(y, q)
        losses = {
            c: pinball_loss(y, np.full_like(y, c), q)
            for c in (target - 0.3, target, target + 0.3)
        }
        assert losses[target] == min(losses.values())

    @given(q=quantiles, residual=finite_floats)
    def test_nonnegative(self, q, residual):
        loss = pinball_loss(np.array([residual]), np.array([0.0]), q)
        assert loss >= 0.0

    @given(q=quantiles, y=finite_floats, a=finite_floats, b=finite_floats)
    @settings(max_examples=60)
    def test_convex_along_prediction(self, q, y, a, b):
        """Pinball loss is convex in the prediction."""
        ya = pinball_loss(np.array([y]), np.array([a]), q)
        yb = pinball_loss(np.array([y]), np.array([b]), q)
        mid = pinball_loss(np.array([y]), np.array([(a + b) / 2]), q)
        assert mid <= (ya + yb) / 2 + 1e-9

    def test_gradient_sign_convention(self):
        y = np.array([1.0, -1.0])
        pred = np.array([0.0, 0.0])
        grad, hess = pinball_gradient_hessian(y, pred, 0.9)
        # under-prediction (y > pred): gradient -q pushes prediction up
        assert grad[0] == pytest.approx(-0.9)
        assert grad[1] == pytest.approx(0.1)
        np.testing.assert_allclose(hess, 1.0)

    @given(q=quantiles)
    def test_gradient_matches_loss_slope(self, q):
        y = np.array([0.0])
        eps = 1e-6
        for pred in (-1.0, 1.0):  # away from the kink
            grad, _ = pinball_gradient_hessian(y, np.array([pred]), q)
            numeric = (
                pinball_loss(y, np.array([pred + eps]), q)
                - pinball_loss(y, np.array([pred - eps]), q)
            ) / (2 * eps)
            assert grad[0] == pytest.approx(numeric, abs=1e-5)


class TestSmoothPinball:
    def test_converges_to_pinball_as_smoothing_vanishes(self):
        y = np.array([1.0, -2.0, 0.5])
        pred = np.array([0.0, 0.0, 0.0])
        exact = pinball_loss(y, pred, 0.3)
        smooth = smooth_pinball_loss(y, pred, 0.3, smoothing=1e-9)
        assert smooth == pytest.approx(exact, rel=1e-6)

    def test_continuous_at_boundary(self):
        q, s = 0.7, 0.1
        y = np.array([0.0])
        inside = smooth_pinball_loss(y, np.array([s - 1e-9]), q, smoothing=s)
        outside = smooth_pinball_loss(y, np.array([s + 1e-9]), q, smoothing=s)
        assert inside == pytest.approx(outside, abs=1e-6)

    def test_gradient_zero_at_kink(self):
        grad = smooth_pinball_gradient(
            np.array([0.0]), np.array([0.0]), 0.7, smoothing=0.1
        )
        assert grad[0] == pytest.approx(0.0)

    @given(q=quantiles)
    @settings(max_examples=30)
    def test_gradient_matches_numeric(self, q):
        y = np.array([0.3])
        s = 0.05
        for pred in (-0.5, 0.31, 0.8):
            grad = smooth_pinball_gradient(y, np.array([pred]), q, smoothing=s)
            eps = 1e-7
            numeric = (
                smooth_pinball_loss(y, np.array([pred + eps]), q, smoothing=s)
                - smooth_pinball_loss(y, np.array([pred - eps]), q, smoothing=s)
            ) / (2 * eps)
            assert grad[0] == pytest.approx(numeric, abs=1e-4)

    def test_rejects_nonpositive_smoothing(self):
        with pytest.raises(ValueError, match="smoothing"):
            smooth_pinball_loss(np.zeros(1), np.zeros(1), 0.5, smoothing=0.0)


class TestHuber:
    def test_quadratic_inside(self):
        assert huber_loss(np.array([0.5]), np.array([0.0]), delta=1.0) == pytest.approx(
            0.125
        )

    def test_linear_outside(self):
        assert huber_loss(np.array([3.0]), np.array([0.0]), delta=1.0) == pytest.approx(
            2.5
        )

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError, match="delta"):
            huber_loss(np.zeros(1), np.zeros(1), delta=-1.0)
