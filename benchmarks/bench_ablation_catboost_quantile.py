"""Ablation -- the CatBoost package-default quantile pitfall.

Table III's "QR CatBoost" collapses to ~1-2 mV bands because CatBoost's
``loss_function='Quantile'`` defaults to alpha = 0.5: a user keeping
"default hyper-parameters" trains *both* band models on the median (see
``repro.models.quantile.PackageDefaultQuantileBand``).  This ablation
re-runs QR/CQR CatBoost with the quantiles configured *properly*
(alpha/2 and 1 − alpha/2) and reports both variants side by side.

Expected shape: the proper QR band is orders of magnitude wider than the
trap band and still under-covers somewhat; after conformalization both
variants are valid, with the trap variant behaving like split CP around
the median.
"""

from __future__ import annotations

import dataclasses

from conftest import publish

from repro.eval.experiments import run_region_experiment
from repro.eval.reporting import format_table


def _render(dataset, profile) -> str:
    proper = dataclasses.replace(profile, catboost_quantile_trap=False)
    rows = []
    for method in ("QR CatBoost", "CQR CatBoost"):
        for label, prof in (("package default (median pair)", profile),
                            ("proper alpha/2, 1-alpha/2", proper)):
            result = run_region_experiment(
                dataset, method, 25.0, 0, profile=prof
            )
            rows.append([method, label, result.width, result.coverage * 100.0])
    return format_table(
        ["Method", "Quantile config", "Len (mV)", "Coverage (%)"],
        rows,
        title="Ablation | CatBoost quantile configuration (25C, 0h, alpha=0.1)",
    )


def test_ablation_catboost_quantile(benchmark, dataset, profile):
    text = benchmark.pedantic(_render, args=(dataset, profile), rounds=1, iterations=1)
    publish("ablation_catboost_quantile", text)
