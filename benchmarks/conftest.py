"""Shared fixtures and scope control for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints
it in the paper's row/series layout (also written to
``benchmarks/results/``).  The computation budget is selected with the
``REPRO_BENCH`` environment variable:

=========  =================================================================
profile    meaning
=========  =================================================================
``smoke``  CI-sized: one corner, read point 0, 2 folds, tiny models.
``fast``   default: all three temperatures, read points {0, 1008}, 4
           folds, reduced model budgets -- the full qualitative shape of
           every table/figure in minutes.
``full``   the paper's protocol: all 6 read points, paper-exact model
           configurations.  Expect a multi-hour run on a laptop.
=========  =================================================================

Absolute mV numbers differ from the paper (its silicon is proprietary;
ours is synthetic -- see DESIGN.md), but the comparative shape of every
artefact is asserted in ``tests/test_experiments.py`` and documented in
EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Tuple

import pytest

from repro.eval.experiments import ExperimentProfile, FeatureSet, run_region_experiment
from repro.eval.reporting import write_report
from repro.silicon import READ_POINTS_HOURS, TEMPERATURES_C, SiliconDataset

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_SEED = 2024


def bench_profile_name() -> str:
    name = os.environ.get("REPRO_BENCH", "fast").lower()
    if name not in ("smoke", "fast", "full"):
        raise ValueError(
            f"REPRO_BENCH must be smoke, fast, or full; got {name!r}"
        )
    return name


@pytest.fixture(scope="session")
def profile() -> ExperimentProfile:
    return ExperimentProfile.from_name(bench_profile_name())


@pytest.fixture(scope="session")
def bench_scope() -> Tuple[Tuple[float, ...], Tuple[int, ...]]:
    """(temperatures, read points) swept by the current profile."""
    name = bench_profile_name()
    if name == "smoke":
        return (25.0,), (0,)
    if name == "fast":
        return TEMPERATURES_C, (0, 1008)
    return TEMPERATURES_C, READ_POINTS_HOURS


@pytest.fixture(scope="session")
def dataset() -> SiliconDataset:
    """The synthetic lot every benchmark runs on (fixed seed)."""
    return SiliconDataset.generate(seed=BENCH_SEED)


def publish(name: str, text: str) -> None:
    """Print a rendered artefact and persist it under benchmarks/results/."""
    banner = f"\n{'=' * 72}\n{name} [profile={bench_profile_name()}]\n{'=' * 72}"
    print(banner)
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    write_report(RESULTS_DIR / f"{name}.{bench_profile_name()}.txt", text)


FEATURE_SETS = (
    ("On-chip and Parametric", FeatureSet.BOTH),
    ("Parametric", FeatureSet.PARAMETRIC),
    ("On-chip", FeatureSet.ONCHIP),
)


@pytest.fixture(scope="session")
def fig3_grid(dataset, profile, bench_scope):
    """CQR-CatBoost width (mV) per (feature-set label, temperature, hours).

    Shared between the Fig. 3 and Table IV benchmarks so the expensive
    grid is computed once per session.
    """
    temperatures, read_points = bench_scope
    grid = {}
    for label, feature_set in FEATURE_SETS:
        for temperature in temperatures:
            for hours in read_points:
                result = run_region_experiment(
                    dataset,
                    "CQR CatBoost",
                    temperature,
                    hours,
                    feature_set=feature_set,
                    profile=profile,
                )
                grid[(label, temperature, hours)] = result.width
    return grid
