"""Exchangeability sentinels: make distribution shift an observable event.

Every conformal guarantee in this repository -- split CP, CQR, Mondrian,
the serving soak's coverage gate -- assumes the stream is exchangeable
with the calibration set.  Fleet reality (a new fab, a drifting process
corner, a sensor re-baseline) breaks that assumption silently: coverage
rots with no exception raised anywhere.  This module turns the violation
into an event with two complementary detectors:

* :class:`ConformalTestMartingale` -- an online *conformal test
  martingale* (Vovk et al.) over the stream of conformity scores.  Each
  arriving score gets a sequential conformal p-value against the pool of
  all scores seen so far (calibration scores included, randomised
  tie-break); a mixture power martingale bets against uniformity of
  those p-values.  Under exchangeability the martingale is a
  non-negative martingale with initial value 1, so by Ville's inequality
  ``P(sup M_t >= 1/delta) <= delta``: an alarm threshold of 100 bounds
  the false-alarm probability of the *entire infinite stream* at 1 %.
  Growth past the threshold is therefore hard evidence the stream is not
  exchangeable with calibration.

* :class:`CovariateShiftDetector` -- per-feature Population Stability
  Index (PSI) and Kolmogorov-Smirnov statistics of a sliding current
  window against a fixed reference window.  Label-free: it fires on
  covariate shift before a single ground-truth Vmin arrives, which
  matters in the field where labels lag predictions by a read point.

Both sentinels are deterministic under a fixed seed and hold state
explicitly: ``arm`` installs the reference, ``observe`` consumes the
stream and returns an alarm at most once per armed period.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right, insort
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.models.base import check_fitted, check_random_state

__all__ = [
    "ConformalTestMartingale",
    "CovariateShiftAlarm",
    "CovariateShiftDetector",
    "ExchangeabilityAlarm",
]

_DEFAULT_EPSILONS = tuple(round(0.05 + 0.10 * k, 2) for k in range(10))


@dataclass(frozen=True)
class ExchangeabilityAlarm:
    """The martingale crossed its Ville threshold: the stream is shifted.

    Attributes
    ----------
    n_observed:
        Stream scores consumed (post-arm) when the threshold was crossed
        -- the detection latency in observations.
    log10_martingale:
        ``log10`` of the mixture martingale at crossing time.
    threshold:
        The configured alarm threshold (martingale scale, not log).
    """

    n_observed: int
    log10_martingale: float
    threshold: float

    def describe(self) -> str:
        """Human-readable one-line audit entry."""
        return (
            f"exchangeability rejected after {self.n_observed} observations "
            f"(martingale 1e{self.log10_martingale:.1f} >= {self.threshold:g})"
        )


class ConformalTestMartingale:
    """Online conformal test martingale over conformity scores.

    Parameters
    ----------
    threshold:
        Alarm when the mixture martingale reaches this value.  By
        Ville's inequality the probability of ever alarming on an
        exchangeable stream is at most ``1 / threshold`` (default 100:
        1 % stream-wise false-alarm budget).
    epsilons:
        Betting grid of the mixture power martingale
        ``M_t = mean_eps prod_i eps * p_i**(eps - 1)``; each epsilon in
        ``(0, 1)`` bets on a different shift severity and the mixture
        needs no tuning.  Default: ten points 0.05 ... 0.95.
    random_state:
        Seed for the randomised p-value tie-break (theta ~ U[0, 1)).
        The tie-break is what makes the p-values exactly uniform under
        exchangeability; a fixed seed makes the whole trajectory
        deterministic.
    """

    def __init__(
        self,
        threshold: float = 100.0,
        epsilons: Optional[Sequence[float]] = None,
        random_state: Optional[int] = None,
    ) -> None:
        if not threshold > 1.0:
            raise ValueError(f"threshold must be > 1, got {threshold}")
        if epsilons is None:
            epsilons = _DEFAULT_EPSILONS
        eps = tuple(float(e) for e in epsilons)
        if len(eps) == 0:
            raise ValueError("epsilons must be non-empty")
        for e in eps:
            if not 0.0 < e < 1.0:
                raise ValueError(f"every epsilon must be in (0, 1), got {e}")
        self.threshold = float(threshold)
        self.epsilons = eps
        self.random_state = random_state
        self.alarms_: Optional[List[ExchangeabilityAlarm]] = None

    def arm(self, reference_scores: np.ndarray) -> "ConformalTestMartingale":
        """Install the calibration-score reference pool and reset state.

        ``reference_scores`` seed the p-value pool, so the very first
        streamed score is already ranked against the full calibration
        set.  Re-arming resets the martingale to 1, clears alarms, and
        reseeds the tie-break RNG -- the trajectory after an ``arm`` is
        a pure function of (reference, stream, seed).
        """
        scores = np.asarray(reference_scores, dtype=np.float64).ravel()
        if scores.size == 0:
            raise ValueError("reference_scores must be non-empty")
        if not np.all(np.isfinite(scores)):
            raise ValueError("reference_scores must be finite")
        self._pool: List[float] = sorted(float(s) for s in scores)
        self._log_wealth = np.zeros(len(self.epsilons), dtype=np.float64)
        self._eps = np.asarray(self.epsilons, dtype=np.float64)
        self._rng = check_random_state(self.random_state)
        self.n_observed_ = 0
        self.log10_history_: List[float] = []
        self.alarms_ = []
        self._in_alarm = False
        return self

    @property
    def in_alarm_(self) -> bool:
        """Whether the threshold has been crossed since the last arm."""
        check_fitted(self, "alarms_")
        return self._in_alarm

    @property
    def log10_martingale_(self) -> float:
        """Current ``log10`` of the mixture martingale (0.0 at arm time)."""
        check_fitted(self, "alarms_")
        return self._log10_mixture()

    @property
    def martingale_value_(self) -> float:
        """Current mixture martingale (clamped to avoid float overflow)."""
        check_fitted(self, "alarms_")
        return float(np.exp(min(self._log10_mixture() * math.log(10.0), 700.0)))

    def _log10_mixture(self) -> float:
        peak = float(np.max(self._log_wealth))
        mixture = peak + math.log(
            float(np.sum(np.exp(self._log_wealth - peak))) / self._log_wealth.size
        )
        return mixture / math.log(10.0)

    def observe(self, scores: np.ndarray) -> Optional[ExchangeabilityAlarm]:
        """Consume a batch of conformity scores; return the first alarm.

        Each score gets its sequential conformal p-value against the
        pool of every score seen so far (itself included), updates the
        per-epsilon wealth, and joins the pool.  The first threshold
        crossing per armed period appends and returns an
        :class:`ExchangeabilityAlarm`; later crossings are latched
        (``in_alarm_`` stays true until the next :meth:`arm`).
        """
        check_fitted(self, "alarms_")
        batch = np.asarray(scores, dtype=np.float64).ravel()
        if not np.all(np.isfinite(batch)):
            raise ValueError("scores must be finite")
        fired: Optional[ExchangeabilityAlarm] = None
        log_threshold = math.log10(self.threshold)
        for raw in batch:
            score = float(raw)
            pool_size = len(self._pool)
            hi = bisect_right(self._pool, score)
            greater = pool_size - hi
            ties = (hi - bisect_left(self._pool, score)) + 1
            theta = float(self._rng.uniform())
            p_value = (greater + theta * ties) / (pool_size + 1)
            # theta can come out exactly 0.0 with nothing above the
            # score; floor keeps the log-wealth update finite.
            p_value = min(max(p_value, 1e-12), 1.0)
            self._log_wealth += np.log(self._eps) + (self._eps - 1.0) * math.log(
                p_value
            )
            insort(self._pool, score)
            self.n_observed_ += 1
            log10_mixture = self._log10_mixture()
            self.log10_history_.append(log10_mixture)
            if not self._in_alarm and log10_mixture >= log_threshold:
                self._in_alarm = True
                fired = ExchangeabilityAlarm(
                    n_observed=self.n_observed_,
                    log10_martingale=log10_mixture,
                    threshold=self.threshold,
                )
                self.alarms_.append(fired)
        return fired


@dataclass(frozen=True)
class CovariateShiftAlarm:
    """Enough monitor features drifted past the PSI threshold.

    Attributes
    ----------
    n_observed:
        Rows consumed (post-arm) when the alarm fired.
    fraction_flagged:
        Fraction of watched features whose PSI crossed the threshold.
    top_features:
        The worst offenders as ``(feature_label, psi)`` pairs, largest
        PSI first (at most five).
    """

    n_observed: int
    fraction_flagged: float
    top_features: Tuple[Tuple[str, float], ...]

    def describe(self) -> str:
        """Human-readable one-line audit entry."""
        worst = ", ".join(f"{name}={psi:.2f}" for name, psi in self.top_features)
        return (
            f"covariate shift after {self.n_observed} rows: "
            f"{self.fraction_flagged:.0%} of features past PSI threshold "
            f"({worst})"
        )


class CovariateShiftDetector:
    """Per-feature PSI / KS drift detection against a fixed reference.

    Parameters
    ----------
    n_bins:
        Quantile bins of the reference distribution used for PSI.
    window:
        Sliding current-window length (rows); older rows age out.
    psi_threshold:
        A feature counts as drifted when its PSI reaches this value
        (0.25 is the conventional "significant shift" cut).
    alarm_fraction:
        Alarm when at least this fraction of watched features is
        drifted simultaneously -- single-feature noise does not page.
    min_observations:
        Rows required in the current window before PSI is evaluated.
    epsilon:
        Proportion floor that keeps empty bins out of the PSI logs.
    feature_names:
        Optional labels for the watched columns (alarm readability);
        column indices are used when omitted.
    """

    def __init__(
        self,
        n_bins: int = 10,
        window: int = 200,
        psi_threshold: float = 0.25,
        alarm_fraction: float = 0.25,
        min_observations: int = 50,
        epsilon: float = 1e-4,
        feature_names: Optional[Sequence[str]] = None,
    ) -> None:
        if n_bins < 2:
            raise ValueError(f"n_bins must be >= 2, got {n_bins}")
        if min_observations < 1:
            raise ValueError(
                f"min_observations must be >= 1, got {min_observations}"
            )
        if window < min_observations:
            raise ValueError(
                f"window ({window}) must be >= min_observations "
                f"({min_observations})"
            )
        if not psi_threshold > 0:
            raise ValueError(f"psi_threshold must be > 0, got {psi_threshold}")
        if not 0.0 < alarm_fraction <= 1.0:
            raise ValueError(
                f"alarm_fraction must be in (0, 1], got {alarm_fraction}"
            )
        if not epsilon > 0:
            raise ValueError(f"epsilon must be > 0, got {epsilon}")
        self.n_bins = n_bins
        self.window = window
        self.psi_threshold = psi_threshold
        self.alarm_fraction = alarm_fraction
        self.min_observations = min_observations
        self.epsilon = epsilon
        self.feature_names = (
            None if feature_names is None else tuple(str(n) for n in feature_names)
        )
        self.alarms_: Optional[List[CovariateShiftAlarm]] = None

    def arm(self, reference: np.ndarray) -> "CovariateShiftDetector":
        """Freeze the reference window and reset the current window."""
        ref = np.asarray(reference, dtype=np.float64)
        if ref.ndim != 2:
            raise ValueError(f"reference must be 2-D, got shape {ref.shape}")
        if ref.shape[0] < self.n_bins:
            raise ValueError(
                f"reference needs at least n_bins={self.n_bins} rows, got "
                f"{ref.shape[0]}"
            )
        if not np.all(np.isfinite(ref)):
            raise ValueError("reference must be finite")
        if self.feature_names is not None and len(self.feature_names) != ref.shape[1]:
            raise ValueError(
                f"feature_names has {len(self.feature_names)} entries for "
                f"{ref.shape[1]} reference columns"
            )
        d = ref.shape[1]
        quantiles = np.linspace(0.0, 1.0, self.n_bins + 1)[1:-1]
        self._edges = np.quantile(ref, quantiles, axis=0).T  # (d, n_bins - 1)
        self._ref_proportions = np.empty((d, self.n_bins), dtype=np.float64)
        for feature in range(d):
            counts = np.bincount(
                np.searchsorted(self._edges[feature], ref[:, feature], side="right"),
                minlength=self.n_bins,
            )
            self._ref_proportions[feature] = np.maximum(
                counts / ref.shape[0], self.epsilon
            )
        self._ref_sorted = np.sort(ref, axis=0)
        self._rows: Deque[np.ndarray] = deque(maxlen=self.window)
        self.n_observed_ = 0
        self.alarms_ = []
        self._in_alarm = False
        return self

    @property
    def in_alarm_(self) -> bool:
        """Whether an alarm has fired since the last arm."""
        check_fitted(self, "alarms_")
        return self._in_alarm

    def _current_window(self) -> np.ndarray:
        return np.asarray(list(self._rows), dtype=np.float64)

    def _label(self, feature: int) -> str:
        if self.feature_names is not None:
            return self.feature_names[feature]
        return f"feature[{feature}]"

    def psi(self) -> np.ndarray:
        """Per-feature PSI of the current window against the reference.

        Raises ``RuntimeError`` until ``min_observations`` rows have
        been observed (PSI over a near-empty window is noise).
        """
        check_fitted(self, "alarms_")
        current = self._current_window()
        if current.shape[0] < self.min_observations:
            raise RuntimeError(
                f"need {self.min_observations} window rows for PSI, have "
                f"{current.shape[0]}"
            )
        d = self._edges.shape[0]
        psi = np.empty(d, dtype=np.float64)
        for feature in range(d):
            counts = np.bincount(
                np.searchsorted(
                    self._edges[feature], current[:, feature], side="right"
                ),
                minlength=self.n_bins,
            )
            proportions = np.maximum(counts / current.shape[0], self.epsilon)
            reference = self._ref_proportions[feature]
            psi[feature] = float(
                np.sum((proportions - reference) * np.log(proportions / reference))
            )
        return psi

    def ks(self) -> np.ndarray:
        """Per-feature two-sample KS statistic (window vs reference)."""
        check_fitted(self, "alarms_")
        current = self._current_window()
        if current.shape[0] < self.min_observations:
            raise RuntimeError(
                f"need {self.min_observations} window rows for KS, have "
                f"{current.shape[0]}"
            )
        d = self._ref_sorted.shape[1]
        n_ref = self._ref_sorted.shape[0]
        n_cur = current.shape[0]
        stats = np.empty(d, dtype=np.float64)
        for feature in range(d):
            ref_col = self._ref_sorted[:, feature]
            cur_col = np.sort(current[:, feature])
            grid = np.concatenate([ref_col, cur_col])
            cdf_ref = np.searchsorted(ref_col, grid, side="right") / n_ref
            cdf_cur = np.searchsorted(cur_col, grid, side="right") / n_cur
            stats[feature] = float(np.max(np.abs(cdf_ref - cdf_cur)))
        return stats

    def observe(self, X: np.ndarray) -> Optional[CovariateShiftAlarm]:
        """Slide a batch of rows into the window; return the first alarm.

        Evaluates PSI once the window holds ``min_observations`` rows;
        fires (once per armed period) when ``alarm_fraction`` of the
        watched features sit past ``psi_threshold``.
        """
        check_fitted(self, "alarms_")
        batch = np.asarray(X, dtype=np.float64)
        if batch.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {batch.shape}")
        if batch.shape[1] != self._edges.shape[0]:
            raise ValueError(
                f"X has {batch.shape[1]} features, detector was armed on "
                f"{self._edges.shape[0]}"
            )
        if not np.all(np.isfinite(batch)):
            raise ValueError("X must be finite")
        fired: Optional[CovariateShiftAlarm] = None
        for row in batch:
            self._rows.append(row.copy())
            self.n_observed_ += 1
        if len(self._rows) < self.min_observations or self._in_alarm:
            return None
        psi = self.psi()
        flagged = psi >= self.psi_threshold
        fraction = float(np.mean(flagged))
        if fraction >= self.alarm_fraction:
            order = np.argsort(psi)[::-1][:5]
            self._in_alarm = True
            fired = CovariateShiftAlarm(
                n_observed=self.n_observed_,
                fraction_flagged=fraction,
                top_features=tuple(
                    (self._label(int(f)), float(psi[f])) for f in order
                ),
            )
            self.alarms_.append(fired)
        return fired
