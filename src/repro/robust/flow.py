"""The hardened serving wrapper around :class:`VminPredictionFlow`.

:class:`RobustVminFlow` is the piece a real test-floor / in-field
integration deploys: the paper's calibrated CQR pipeline, front-ended
by input sanitization and backed by graceful degradation and coverage
monitoring, so that

* a NaN from one dead ROD sensor degrades the answer instead of raising,
* a dead *monitor block* falls back to a parametric-only model,
* detected coverage drift triggers online recalibration through
  :class:`~repro.core.adaptive.AdaptiveConformalPredictor` (Gibbs &
  Candès) rather than silently serving broken guarantees.

``predict_interval`` therefore returns a structured
:class:`~repro.robust.fallback.DegradedPrediction` -- never an
exception for value-level input damage -- and ``observe`` closes the
loop when ground-truth Vmin measurements trickle back from the ATE.
"""

from __future__ import annotations

import copy
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.adaptive import AdaptiveConformalPredictor
from repro.core.intervals import PredictionIntervals
from repro.core.scores import cqr_score
from repro.flow.pipeline import VminPredictionFlow
from repro.models.base import BaseRegressor, check_fitted, check_X_y, clone
from repro.robust.fallback import (
    DegradationPolicy,
    DegradationStatus,
    DegradedPrediction,
    inflate_intervals,
)
from repro.robust.guard import FeatureHealthGuard, HealthReport
from repro.robust.imputation import TrainStatImputer
from repro.robust.monitoring import CoverageAlarm, CoverageMonitor
from repro.shift.weighted import WeightedBandCalibrator
from repro.shift.weights import LogisticDensityRatio

__all__ = ["RobustVminFlow"]


def _validate_columns(
    columns: Sequence[int], n_features: int, name: str
) -> np.ndarray:
    cols = np.unique(np.asarray(list(columns), dtype=np.int64))
    if cols.size == 0:
        raise ValueError(f"{name} must be non-empty when given")
    if cols.min() < 0 or cols.max() >= n_features:
        raise ValueError(
            f"{name} indices must be in [0, {n_features}), got "
            f"[{cols.min()}, {cols.max()}]"
        )
    return cols


class RobustVminFlow:
    """Fault-tolerant Vmin interval serving with coverage monitoring.

    Parameters
    ----------
    base_model:
        Unfitted quantile-capable template for the primary (and, when
        enabled, fallback) pipeline; ``None`` uses the paper's default
        CQR CatBoost recipe (see :class:`VminPredictionFlow`).
    alpha:
        Target miscoverage of the served intervals.
    n_features, scale, calibration_fraction, random_state:
        Forwarded to the wrapped :class:`VminPredictionFlow`.
    policy:
        Degradation thresholds and inflation schedule
        (:class:`~repro.robust.fallback.DegradationPolicy`).
    guard:
        Unfitted :class:`~repro.robust.guard.FeatureHealthGuard`; a
        default-configured one when ``None``.  Fitted in place by
        :meth:`fit`.
    imputer:
        Unfitted :class:`~repro.robust.imputation.TrainStatImputer`;
        default-configured when ``None``.  Fitted in place by :meth:`fit`.
    monitor_window, monitor_tolerance, monitor_min_observations:
        Rolling-coverage monitor configuration
        (:class:`~repro.robust.monitoring.CoverageMonitor`).
    gamma, adaptation_window:
        Gibbs-Candès step size and score window for the online
        recalibration path (:class:`AdaptiveConformalPredictor`).
    """

    def __init__(
        self,
        base_model: Optional[BaseRegressor] = None,
        alpha: float = 0.1,
        n_features: Optional[int] = None,
        scale: bool = False,
        calibration_fraction: float = 0.25,
        random_state: Optional[int] = None,
        policy: Optional[DegradationPolicy] = None,
        guard: Optional[FeatureHealthGuard] = None,
        imputer: Optional[TrainStatImputer] = None,
        monitor_window: int = 50,
        monitor_tolerance: float = 0.05,
        monitor_min_observations: int = 20,
        gamma: float = 0.05,
        adaptation_window: Optional[int] = None,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if gamma < 0:
            raise ValueError(f"gamma must be >= 0, got {gamma}")
        self.base_model = base_model
        self.alpha = alpha
        self.n_features = n_features
        self.scale = scale
        self.calibration_fraction = calibration_fraction
        self.random_state = random_state
        self.policy = policy if policy is not None else DegradationPolicy()
        self.guard = guard
        self.imputer = imputer
        self.monitor_window = monitor_window
        self.monitor_tolerance = monitor_tolerance
        self.monitor_min_observations = monitor_min_observations
        self.gamma = gamma
        self.adaptation_window = adaptation_window
        self.primary_: Optional[VminPredictionFlow] = None

    # -- fitting ---------------------------------------------------------------
    def _make_flow(self, n_available: Optional[int] = None) -> VminPredictionFlow:
        template = clone(self.base_model) if self.base_model is not None else None
        n_features = self.n_features
        if n_features is not None and n_available is not None:
            n_features = min(n_features, n_available)
        return VminPredictionFlow(
            base_model=template,
            alpha=self.alpha,
            n_features=n_features,
            scale=self.scale,
            calibration_fraction=self.calibration_fraction,
            random_state=self.random_state,
        )

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        feature_names: Optional[List[str]] = None,
        fallback_columns: Optional[Sequence[int]] = None,
        monitor_columns: Optional[Sequence[int]] = None,
    ) -> "RobustVminFlow":
        """Fit guards, primary pipeline, fallback pipeline, recalibrator.

        Parameters
        ----------
        X, y, feature_names:
            Clean training chips, as for :class:`VminPredictionFlow`
            (training data must satisfy the strict ``check_X`` contract;
            robustness applies at serving time).
        fallback_columns:
            Column indices of the feature group a degraded prediction
            can still trust when the monitors die -- typically the
            time-zero parametric block.  When given, a second
            :class:`VminPredictionFlow` is fitted on just these columns.
        monitor_columns:
            Column indices whose health gates the fallback decision
            (typically the on-chip ROD/CPD block).  Defaults to the
            complement of ``fallback_columns``, or all columns.
        """
        X, y = check_X_y(X, y)
        d = X.shape[1]
        self.fallback_columns_ = (
            _validate_columns(fallback_columns, d, "fallback_columns")
            if fallback_columns is not None
            else None
        )
        if monitor_columns is not None:
            self.monitor_columns_ = _validate_columns(
                monitor_columns, d, "monitor_columns"
            )
        elif self.fallback_columns_ is not None:
            self.monitor_columns_ = np.setdiff1d(
                np.arange(d, dtype=np.int64), self.fallback_columns_
            )
        else:
            self.monitor_columns_ = np.arange(d, dtype=np.int64)

        self.guard_ = (
            self.guard if self.guard is not None else FeatureHealthGuard()
        ).fit(X)
        self.imputer_ = (
            self.imputer if self.imputer is not None else TrainStatImputer()
        ).fit(X)

        primary = self._make_flow()
        primary.fit(X, y, feature_names=feature_names)
        self.primary_ = primary

        self.fallback_ = None
        if self.fallback_columns_ is not None:
            fallback_names = (
                [feature_names[i] for i in self.fallback_columns_]
                if feature_names is not None
                else None
            )
            fallback = self._make_flow(n_available=int(self.fallback_columns_.size))
            fallback.fit(
                X[:, self.fallback_columns_], y, feature_names=fallback_names
            )
            self.fallback_ = fallback

        self.adaptive_ = AdaptiveConformalPredictor.from_fitted(
            primary.cqr_.band_,
            primary.cqr_.calibration_scores_,
            alpha=self.alpha,
            gamma=self.gamma,
            window=self.adaptation_window,
        )
        self.monitor_ = CoverageMonitor(
            target_coverage=1.0 - self.alpha,
            window=self.monitor_window,
            tolerance=self.monitor_tolerance,
            min_observations=self.monitor_min_observations,
        )
        self.n_features_in_ = d
        self.recalibrations_ = 0
        self._adaptive_active = False
        self.weighted_: Optional[WeightedBandCalibrator] = None
        self._weighted_active = False
        return self

    # -- serving ---------------------------------------------------------------
    def _validate_structure(self, X: np.ndarray) -> np.ndarray:
        """Check dimensionality and column count; value damage passes."""
        check_fitted(self, "primary_")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(
                f"X must be 2-D (n_samples, n_features), got shape {X.shape}"
            )
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, flow was fitted on "
                f"{self.n_features_in_}"
            )
        return X

    def _sanitize(self, X: np.ndarray) -> Tuple[np.ndarray, HealthReport]:
        """Health-assess and impute a batch; only structural errors raise."""
        X = self._validate_structure(X)
        report = self.guard_.assess(X)
        clean = self.imputer_.transform(X, stuck=report.stuck)
        return clean, report

    def _empty_prediction(self) -> DegradedPrediction:
        """The structured no-op answer for a zero-chip batch.

        A serving layer streaming wafers hits legitimately empty batches
        (a fully screened-out lot, a drained queue flush); those must
        round-trip as zero intervals, not crash the service.
        """
        d = self.n_features_in_
        entries = np.zeros((0, d), dtype=bool)
        columns = np.zeros(d, dtype=bool)
        return DegradedPrediction(
            intervals=PredictionIntervals(np.zeros(0), np.zeros(0)),
            status=DegradationStatus.OK,
            health=HealthReport(
                missing=entries,
                out_of_range=entries,
                stuck=columns,
                unhealthy=columns,
            ),
            notes=("empty batch: zero intervals served",),
        )

    @property
    def adaptive_active(self) -> bool:
        """True once a coverage alarm has switched serving to the
        online-recalibrated (Gibbs-Candès) margins."""
        check_fitted(self, "primary_")
        return self._adaptive_active

    @property
    def weighted_active(self) -> bool:
        """True while weighted (covariate-shift-repaired) margins serve."""
        check_fitted(self, "primary_")
        return self._weighted_active

    def _primary_intervals(self, X_clean: np.ndarray):
        # Weighted repair outranks the adaptive path: it is an explicit,
        # audited operator action targeting a diagnosed covariate shift,
        # whereas adaptation is the blind feedback controller.
        if self._weighted_active:
            return self.weighted_.predict_interval(X_clean)
        if self._adaptive_active:
            return self.adaptive_.predict_interval(X_clean)
        return self.primary_.predict_interval(X_clean)

    # -- shift-defense accessors ----------------------------------------------
    def calibration_scores(self) -> np.ndarray:
        """The primary pipeline's CQR calibration scores (a copy).

        These are the reference sample an exchangeability sentinel
        (:class:`repro.shift.ConformalTestMartingale`) is armed with.
        """
        check_fitted(self, "primary_")
        return np.array(self.primary_.cqr_.calibration_scores_)

    def calibration_features(self) -> np.ndarray:
        """The primary pipeline's calibration feature rows (a copy).

        The frozen covariate reference window for shift detectors and
        density-ratio estimation.  Raises ``RuntimeError`` for bundles
        fitted before the shift defense layer existed (no stored
        calibration features to reference).
        """
        check_fitted(self, "primary_")
        features = getattr(self.primary_.cqr_, "calibration_features_", None)
        if features is None:
            raise RuntimeError(
                "this model predates the shift defense layer and stored no "
                "calibration features; refit to enable shift detection"
            )
        return np.array(features)

    def conformity_scores(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """CQR conformity scores of labelled chips against the reference band.

        Always scored against the *primary* band -- never the adaptive
        or weighted variants -- because the exchangeability sentinel
        compares against calibration scores from that same band; mixing
        bands would alarm on our own recalibration instead of on the
        data.
        """
        check_fitted(self, "primary_")
        y = np.asarray(y, dtype=np.float64)
        if y.ndim != 1:
            raise ValueError(f"y must be 1-D, got shape {y.shape}")
        if not np.all(np.isfinite(y)):
            raise ValueError("y contains NaN or infinite values")
        X_clean, _ = self._sanitize(X)
        if X_clean.shape[0] != y.shape[0]:
            raise ValueError(
                f"X and y have inconsistent lengths: {X_clean.shape[0]} vs "
                f"{y.shape[0]}"
            )
        lower, upper = self.primary_.cqr_.band_.predict_interval(X_clean)
        return cqr_score(y, lower, upper)

    def recalibrate_weighted(
        self,
        X_recent: np.ndarray,
        ratio_columns: Optional[Sequence[int]] = None,
        min_ess: float = 10.0,
        ratio_estimator: Optional[LogisticDensityRatio] = None,
    ) -> float:
        """Repair coverage under covariate shift with weighted margins.

        Estimates the density ratio between the calibration features
        (reference) and ``X_recent`` (the shifted serving batch), builds
        a :class:`~repro.shift.WeightedBandCalibrator` around the primary
        band, and switches serving to it.  Returns the effective sample
        size of the calibration weights.

        Raises :class:`~repro.shift.DegenerateWeightsError` -- leaving
        the serving path unchanged -- when the weights degenerate below
        ``min_ess``: a shift that severe cannot be repaired by
        reweighting and needs a refit (see ``docs/SHIFT.md``).

        Parameters
        ----------
        X_recent:
            Recent serving batch representing the current distribution
            (sanitized like any serving input).
        ratio_columns:
            Columns to estimate the ratio on; defaults to
            ``monitor_columns_`` (the block that moves under process
            shift).
        min_ess:
            Effective-sample-size floor of the repair.
        ratio_estimator:
            Unfitted ratio template (deep-copied); default-configured
            :class:`~repro.shift.LogisticDensityRatio` when ``None``.
        """
        check_fitted(self, "primary_")
        X_clean, _ = self._sanitize(X_recent)
        if X_clean.shape[0] < 2:
            raise ValueError(
                f"X_recent needs at least 2 rows, got {X_clean.shape[0]}"
            )
        columns = (
            _validate_columns(ratio_columns, self.n_features_in_, "ratio_columns")
            if ratio_columns is not None
            else self.monitor_columns_
        )
        features = self.calibration_features()
        ratio = (
            copy.deepcopy(ratio_estimator)
            if ratio_estimator is not None
            else LogisticDensityRatio()
        )
        ratio.estimate(features[:, columns], X_clean[:, columns])
        weights = ratio.weights(features[:, columns])
        calibrator = WeightedBandCalibrator(
            self.primary_.cqr_.band_,
            self.calibration_scores(),
            weights,
            alpha=self.alpha,
            ratio=ratio,
            ratio_columns=columns,
            min_ess=min_ess,
        )
        self.weighted_ = calibrator
        self._weighted_active = True
        self.recalibrations_ += 1
        return calibrator.ess_

    def reset_weighted(self) -> None:
        """Return serving to the unweighted margins (e.g. after a refit)."""
        check_fitted(self, "primary_")
        self.weighted_ = None
        self._weighted_active = False

    def predict_interval(self, X: np.ndarray) -> DegradedPrediction:
        """Serve calibrated intervals with graceful degradation.

        Value-level damage (NaN, Inf, stuck or drifted sensors) never
        raises: the batch is sanitized, the degradation policy picks the
        serving path and the inflation charge, and the full story comes
        back as a :class:`DegradedPrediction`.  Structural errors (wrong
        dimensionality or column count) still raise ``ValueError`` --
        those are integration bugs, not field faults.  An *empty* batch
        (zero chips, valid column count) is a no-op: zero intervals,
        status ``OK``.
        """
        X = self._validate_structure(X)
        if X.shape[0] == 0:
            return self._empty_prediction()
        X_clean, report = self._sanitize(X)
        # Column-level damage misses row-level faults (a dropped record
        # NaNs every feature of one chip without killing any column), so
        # degradation is charged on the worse of the two views.
        overall = max(report.unhealthy_fraction, report.damaged_entry_fraction)
        monitor_frac = report.unhealthy_fraction_of(self.monitor_columns_)
        status = self.policy.classify(overall, monitor_frac)
        notes: List[str] = []
        used_fallback = False

        if status is DegradationStatus.FALLBACK and self.fallback_ is not None:
            fallback_frac = report.unhealthy_fraction_of(self.fallback_columns_)
            if fallback_frac < self.policy.fallback_threshold:
                intervals = self.fallback_.predict_interval(
                    X_clean[:, self.fallback_columns_]
                )
                used_fallback = True
                inflation = self.policy.inflation_factor(fallback_frac)
                notes.append(
                    f"monitor block {monitor_frac:.0%} unhealthy; served "
                    f"fallback model on {self.fallback_columns_.size} columns"
                )
            else:
                intervals = self._primary_intervals(X_clean)
                inflation = self.policy.max_inflation
                notes.append(
                    f"monitor block {monitor_frac:.0%} and fallback block "
                    f"{fallback_frac:.0%} unhealthy; served primary model "
                    "at maximum inflation"
                )
        elif status is DegradationStatus.FALLBACK:
            intervals = self._primary_intervals(X_clean)
            inflation = self.policy.max_inflation
            notes.append(
                f"monitor block {monitor_frac:.0%} unhealthy and no fallback "
                "model fitted; served primary model at maximum inflation"
            )
        else:
            intervals = self._primary_intervals(X_clean)
            inflation = self.policy.inflation_factor(overall)
            if status is DegradationStatus.DEGRADED:
                notes.append(
                    f"{overall:.0%} of features imputed; interval widened "
                    f"{inflation:.2f}x"
                )
        if self._weighted_active and not used_fallback:
            notes.append(
                "weighted shift repair active "
                f"(ESS={self.weighted_.ess_:.1f})"
            )
        elif self._adaptive_active and not used_fallback:
            notes.append(
                f"online recalibration active (alpha_t={self.adaptive_.alpha_t:.3f})"
            )
        if inflation > 1.0:
            intervals = inflate_intervals(intervals, inflation)
        return DegradedPrediction(
            intervals=intervals,
            status=status,
            health=report,
            inflation=inflation,
            used_fallback=used_fallback,
            notes=tuple(notes),
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Midpoint of the served interval (point estimate, V)."""
        return self.predict_interval(X).intervals.midpoint

    # -- the feedback loop -----------------------------------------------------
    def observe(self, X: np.ndarray, y: np.ndarray) -> Optional[CoverageAlarm]:
        """Stream measured Vmin labels back into the serving stack.

        Re-serves ``X`` exactly as :meth:`predict_interval` would,
        scores the outcomes against ``y``, and feeds the rolling
        coverage monitor.  On an alarm, serving switches permanently to
        the adaptive (Gibbs-Candès) margins and every subsequent
        observation updates them -- online recalibration.  Returns the
        alarm fired by this batch, if any.  A zero-label batch is a
        no-op (returns ``None`` without touching monitor or
        recalibrator state) -- the serving layer's label feedback can
        legitimately deliver nothing.
        """
        check_fitted(self, "primary_")
        y = np.asarray(y, dtype=np.float64)
        if y.ndim != 1:
            raise ValueError(f"y must be 1-D, got shape {y.shape}")
        if not np.all(np.isfinite(y)):
            raise ValueError("y contains NaN or infinite values")
        X = self._validate_structure(X)
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"X and y have inconsistent lengths: {X.shape[0]} vs "
                f"{y.shape[0]}"
            )
        if y.shape[0] == 0:
            return None
        prediction = self.predict_interval(X)
        covered = prediction.intervals.contains(y)
        alarm = self.monitor_.update(covered)
        if alarm is not None:
            self._adaptive_active = True
            self.recalibrations_ += 1
        if self._adaptive_active:
            X_clean, _ = self._sanitize(X)
            self.adaptive_.update(X_clean, y)
        return alarm

    def rolling_coverage(self) -> float:
        """Rolling empirical coverage over the observation window."""
        check_fitted(self, "primary_")
        return self.monitor_.rolling_coverage()

    @property
    def alarms_(self) -> List[CoverageAlarm]:
        """Every coverage alarm fired so far."""
        check_fitted(self, "primary_")
        return self.monitor_.alarms_

    @property
    def guaranteed_coverage_(self) -> float:
        """Finite-sample guarantee of the primary pipeline (clean inputs)."""
        check_fitted(self, "primary_")
        return self.primary_.guaranteed_coverage_
