"""Loss functions and their derivatives for every trainable model.

The paper trains point predictors with mean-squared error and quantile
predictors with the pinball loss of Eq. (5):

.. math::

    \\mathcal{L}_q(y, \\hat y) = \\max\\{q (y - \\hat y),\\ (1 - q)(\\hat y - y)\\}.

Gradient-boosting models additionally need per-sample gradients and
Hessians of the loss with respect to the prediction; the neural network
needs gradients only.  The pinball loss has a zero Hessian almost
everywhere, so boosting uses the standard unit-Hessian surrogate (the same
choice XGBoost and LightGBM make), and the neural network can optionally
use :func:`smooth_pinball_loss`, a Huberised pinball that is differentiable
at the kink.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "huber_loss",
    "mse_gradient_hessian",
    "mse_loss",
    "pinball_gradient_hessian",
    "pinball_loss",
    "smooth_pinball_gradient",
    "smooth_pinball_loss",
    "validate_quantile",
]


def validate_quantile(quantile: float) -> float:
    """Return ``quantile`` as a float after checking it lies in (0, 1)."""
    quantile = float(quantile)
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in the open interval (0, 1), got {quantile}")
    return quantile


def mse_loss(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean squared error between targets and predictions."""
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    return float(np.mean((y_true - y_pred) ** 2))


def mse_gradient_hessian(
    y_true: np.ndarray, y_pred: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-sample gradient and Hessian of ½(y − ŷ)² w.r.t. the prediction.

    The ½ factor gives gradient ``ŷ − y`` and Hessian ``1``, the convention
    used by XGBoost's ``reg:squarederror`` objective so leaf values come out
    as plain residual means.
    """
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    gradient = y_pred - y_true
    hessian = np.ones_like(gradient)
    return gradient, hessian


def pinball_loss(y_true: np.ndarray, y_pred: np.ndarray, quantile: float) -> float:
    """Mean pinball (quantile) loss, paper Eq. (5).

    For residual ``r = y − ŷ`` the per-sample loss is ``q·r`` when ``r ≥ 0``
    and ``(q − 1)·r`` otherwise; minimising it in expectation yields the
    ``q``-th conditional quantile (Koenker & Bassett, 1978).
    """
    quantile = validate_quantile(quantile)
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    residual = y_true - y_pred
    return float(np.mean(np.maximum(quantile * residual, (quantile - 1.0) * residual)))


def pinball_gradient_hessian(
    y_true: np.ndarray, y_pred: np.ndarray, quantile: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-sample (sub)gradient and surrogate Hessian of the pinball loss.

    Gradient w.r.t. the prediction is ``−q`` where ``y > ŷ`` and ``1 − q``
    where ``y < ŷ`` (either subgradient is valid at the kink; we use the
    ``y ≤ ŷ`` branch there).  The true Hessian is zero a.e., which would make
    Newton boosting degenerate, so a unit Hessian is returned -- turning the
    Newton step into a plain gradient step, exactly as XGBoost does for
    ``reg:quantileerror``.
    """
    quantile = validate_quantile(quantile)
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    gradient = np.where(y_true > y_pred, -quantile, 1.0 - quantile)
    hessian = np.ones_like(gradient)
    return gradient, hessian


def smooth_pinball_loss(
    y_true: np.ndarray, y_pred: np.ndarray, quantile: float, smoothing: float = 1e-3
) -> float:
    """Huberised pinball loss, differentiable at the kink.

    Within ``|r| ≤ smoothing`` the loss is quadratic and matches the pinball
    value and slope at the boundary; outside, it is exactly the pinball loss.
    As ``smoothing → 0`` this converges uniformly to :func:`pinball_loss`.
    """
    quantile = validate_quantile(quantile)
    if smoothing <= 0:
        raise ValueError(f"smoothing must be positive, got {smoothing}")
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    residual = y_true - y_pred
    slope = np.where(residual >= 0, quantile, 1.0 - quantile)
    absolute = np.abs(residual)
    quadratic = slope * absolute**2 / (2.0 * smoothing)
    linear = slope * (absolute - smoothing / 2.0)
    return float(np.mean(np.where(absolute <= smoothing, quadratic, linear)))


def smooth_pinball_gradient(
    y_true: np.ndarray, y_pred: np.ndarray, quantile: float, smoothing: float = 1e-3
) -> np.ndarray:
    """Gradient of :func:`smooth_pinball_loss` w.r.t. the prediction."""
    quantile = validate_quantile(quantile)
    if smoothing <= 0:
        raise ValueError(f"smoothing must be positive, got {smoothing}")
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    residual = y_true - y_pred
    slope = np.where(residual >= 0, quantile, 1.0 - quantile)
    inside = np.abs(residual) <= smoothing
    # d/dŷ of slope·r²/(2s) is −slope·r/s; of slope·|r| is −slope·sign(r).
    gradient_inside = -slope * residual / smoothing
    gradient_outside = -slope * np.sign(residual)
    return np.where(inside, gradient_inside, gradient_outside)


def huber_loss(y_true: np.ndarray, y_pred: np.ndarray, delta: float = 1.0) -> float:
    """Mean Huber loss: quadratic within ``|r| ≤ delta``, linear outside."""
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    residual = np.abs(y_true - y_pred)
    quadratic = 0.5 * residual**2
    linear = delta * (residual - 0.5 * delta)
    return float(np.mean(np.where(residual <= delta, quadratic, linear)))
