"""Tests for binning and the histogram tree grower."""

import numpy as np
import pytest

from repro.models.binning import FeatureBinner, quantile_bin_edges
from repro.models.histtree import grow_histogram_tree
from repro.models.tree import GradientTree, TreeGrowthParams


class TestQuantileBinEdges:
    def test_constant_column_has_no_edges(self):
        assert quantile_bin_edges(np.full(10, 3.0), 8).size == 0

    def test_few_distinct_values_use_midpoints(self):
        column = np.array([0.0, 0.0, 1.0, 1.0, 2.0])
        edges = quantile_bin_edges(column, 16)
        np.testing.assert_allclose(edges, [0.5, 1.5])

    def test_many_values_capped_by_max_bins(self):
        column = np.linspace(0, 1, 500)
        edges = quantile_bin_edges(column, 8)
        assert edges.size <= 7

    def test_edges_strictly_increasing(self, rng):
        edges = quantile_bin_edges(rng.normal(size=300), 16)
        assert np.all(np.diff(edges) > 0)

    def test_rejects_bad_max_bins(self):
        with pytest.raises(ValueError, match="max_bins"):
            quantile_bin_edges(np.arange(5.0), 1)


class TestFeatureBinner:
    def test_transform_codes_within_range(self, rng):
        X = rng.normal(size=(100, 5))
        binner = FeatureBinner(max_bins=8)
        codes = binner.fit_transform(X)
        assert codes.min() >= 0 and codes.max() < binner.n_bins

    def test_codes_monotone_in_value(self, rng):
        X = rng.normal(size=(50, 1))
        binner = FeatureBinner(max_bins=8).fit(X)
        order = np.argsort(X[:, 0])
        codes = binner.transform(X)[order, 0]
        assert np.all(np.diff(codes) >= 0)

    def test_threshold_maps_back_to_raw_units(self, rng):
        X = rng.normal(size=(60, 2))
        binner = FeatureBinner(max_bins=8).fit(X)
        codes = binner.transform(X)
        threshold = binner.threshold(0, 2)
        goes_right_binned = codes[:, 0] > 2
        goes_right_raw = X[:, 0] > threshold
        np.testing.assert_array_equal(goes_right_binned, goes_right_raw)

    def test_transform_rejects_wrong_width(self, rng):
        binner = FeatureBinner().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError, match="columns"):
            binner.transform(rng.normal(size=(5, 2)))

    def test_threshold_rejects_out_of_range(self, rng):
        binner = FeatureBinner(max_bins=4).fit(rng.normal(size=(10, 1)))
        with pytest.raises(IndexError):
            binner.threshold(0, 99)


class TestHistogramGrower:
    def _grow_both(self, X, grads, hess, params, max_bins=256):
        binner = FeatureBinner(max_bins=max_bins)
        binned = binner.fit_transform(X)
        hist_tree = grow_histogram_tree(binned, binner, grads, hess, params)
        exact_tree = GradientTree(params).fit_gradients(X, grads, hess)
        return hist_tree, exact_tree

    def test_equivalent_to_exact_on_small_data(self, rng):
        """With bins >= distinct values both growers see the same splits."""
        X = rng.normal(size=(40, 4))
        grads = rng.normal(size=40)
        params = TreeGrowthParams(max_depth=3, reg_lambda=1.0)
        hist_tree, exact_tree = self._grow_both(X, grads, np.ones(40), params)
        np.testing.assert_allclose(
            hist_tree.predict(X), exact_tree.predict(X), atol=1e-10
        )

    def test_equivalence_across_seeds(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            X = rng.normal(size=(25, 3))
            grads = rng.normal(size=25)
            params = TreeGrowthParams(max_depth=2, min_samples_leaf=2)
            hist_tree, exact_tree = self._grow_both(X, grads, np.ones(25), params)
            np.testing.assert_allclose(
                hist_tree.predict(X), exact_tree.predict(X), atol=1e-10
            )

    def test_respects_max_depth_zero(self, rng):
        X = rng.normal(size=(20, 2))
        grads = rng.normal(size=20)
        params = TreeGrowthParams(max_depth=0)
        binner = FeatureBinner()
        tree = grow_histogram_tree(
            binner.fit_transform(X), binner, grads, np.ones(20), params
        )
        assert tree.n_leaves == 1

    def test_prediction_operates_on_raw_features(self, rng):
        """The grown tree predicts directly on raw, un-binned matrices."""
        X = rng.normal(size=(50, 3))
        grads = np.sign(X[:, 0])
        params = TreeGrowthParams(max_depth=2)
        binner = FeatureBinner()
        tree = grow_histogram_tree(
            binner.fit_transform(X), binner, grads, np.ones(50), params
        )
        X_new = rng.normal(size=(10, 3))
        prediction = tree.predict(X_new)  # must not raise, raw inputs
        assert prediction.shape == (10,)

    def test_shortlist_keeps_strong_feature(self, rng):
        X = rng.normal(size=(80, 20))
        grads = np.sign(X[:, 7]) * 2.0 + rng.normal(scale=0.1, size=80)
        params = TreeGrowthParams(max_depth=3)
        binner = FeatureBinner()
        binned = binner.fit_transform(X)
        tree = grow_histogram_tree(
            binned, binner, grads, np.ones(80), params, feature_shortlist=3
        )
        used = set(tree.feature_[tree.feature_ >= 0].tolist())
        assert 7 in used

    def test_rejects_bad_gradient_shapes(self, rng):
        X = rng.normal(size=(10, 2))
        binner = FeatureBinner()
        binned = binner.fit_transform(X)
        with pytest.raises(ValueError):
            grow_histogram_tree(
                binned, binner, np.zeros(5), np.ones(10), TreeGrowthParams()
            )
