"""Tests for guard-banded Vmin binning."""

import numpy as np
import pytest

from repro.core.intervals import PredictionIntervals
from repro.flow.binning import (
    UNBINNABLE,
    VminBinningPolicy,
    optimize_guard_band,
)

BINS = (0.58, 0.61, 0.65, 0.72)


def _intervals(uppers, width=0.02):
    uppers = np.asarray(uppers, dtype=np.float64)
    return PredictionIntervals(uppers - width, uppers)


class TestAssignment:
    def test_lowest_safe_bin_chosen(self):
        policy = VminBinningPolicy(BINS)
        intervals = _intervals([0.57, 0.60, 0.62, 0.70])
        np.testing.assert_array_equal(policy.assign(intervals), [0, 1, 2, 3])

    def test_exact_boundary_fits(self):
        policy = VminBinningPolicy(BINS)
        intervals = _intervals([0.61])
        assert policy.assign(intervals)[0] == 1

    def test_guard_band_pushes_up_a_bin(self):
        policy = VminBinningPolicy(BINS, guard_band_v=0.005)
        intervals = _intervals([0.608])
        assert policy.assign(intervals)[0] == 2  # 0.608 + 0.005 > 0.61

    def test_unbinnable_when_above_all_bins(self):
        policy = VminBinningPolicy(BINS)
        intervals = _intervals([0.75])
        assert policy.assign(intervals)[0] == UNBINNABLE

    def test_oracle_ignores_guard_band(self):
        policy = VminBinningPolicy(BINS, guard_band_v=0.05)
        oracle = policy.assign_oracle(np.array([0.60]))
        assert oracle[0] == 1

    def test_unsorted_input_voltages_sorted(self):
        policy = VminBinningPolicy((0.72, 0.58, 0.65, 0.61))
        np.testing.assert_allclose(policy.bin_voltages, sorted(BINS))

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(ValueError):
            VminBinningPolicy((0.6, 0.6))
        with pytest.raises(ValueError):
            VminBinningPolicy(())
        with pytest.raises(ValueError):
            VminBinningPolicy(BINS, guard_band_v=-0.01)


class TestEvaluate:
    def test_escape_accounting(self):
        policy = VminBinningPolicy(BINS)
        intervals = _intervals([0.60, 0.60])
        truth = np.array([0.59, 0.62])  # second chip under-volted at 610mV bin
        outcome = policy.evaluate(intervals, truth)
        assert outcome.escape_rate == pytest.approx(0.5)

    def test_coverage_bounds_escapes(self, rng):
        """If intervals cover the truth, escapes are impossible."""
        truth = rng.uniform(0.55, 0.70, size=200)
        intervals = PredictionIntervals(truth - 0.01, truth + 0.01)
        outcome = VminBinningPolicy(BINS).evaluate(intervals, truth)
        assert outcome.escape_rate == 0.0

    def test_power_overhead_nonnegative_vs_oracle(self, rng):
        truth = rng.uniform(0.55, 0.70, size=300)
        intervals = PredictionIntervals(truth - 0.005, truth + 0.015)
        outcome = VminBinningPolicy(BINS).evaluate(intervals, truth)
        assert outcome.power_overhead >= -1e-12
        assert outcome.mean_voltage >= outcome.oracle_mean_voltage - 1e-12

    def test_unbinnable_fraction(self):
        policy = VminBinningPolicy(BINS)
        intervals = _intervals([0.60, 0.90])
        outcome = policy.evaluate(intervals, np.array([0.59, 0.89]))
        assert outcome.unbinnable_fraction == pytest.approx(0.5)

    def test_rejects_shape_mismatch(self):
        policy = VminBinningPolicy(BINS)
        with pytest.raises(ValueError, match="shape"):
            policy.evaluate(_intervals([0.6]), np.zeros(3))


class TestGuardBandOptimizer:
    def test_high_escape_cost_prefers_bigger_guard(self, rng):
        truth = rng.uniform(0.56, 0.70, size=400)
        # Systematically optimistic intervals: upper bound below truth often.
        intervals = PredictionIntervals(truth - 0.03, truth - 0.002)
        cheap_escape, _ = optimize_guard_band(
            intervals, truth, BINS, escape_cost=0.001, power_cost=1.0
        )
        dear_escape, _ = optimize_guard_band(
            intervals, truth, BINS, escape_cost=1000.0, power_cost=1.0
        )
        assert dear_escape >= cheap_escape

    def test_returns_candidate_from_grid(self, rng):
        truth = rng.uniform(0.56, 0.70, size=100)
        intervals = PredictionIntervals(truth - 0.02, truth + 0.01)
        guard, cost = optimize_guard_band(
            intervals, truth, BINS, candidates=(0.0, 0.004)
        )
        assert guard in (0.0, 0.004)
        assert np.isfinite(cost)

    def test_rejects_negative_costs(self, rng):
        truth = rng.uniform(0.56, 0.70, size=10)
        intervals = PredictionIntervals(truth - 0.02, truth + 0.01)
        with pytest.raises(ValueError):
            optimize_guard_band(intervals, truth, BINS, escape_cost=-1.0)
