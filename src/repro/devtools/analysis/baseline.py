"""Committed baseline of accepted analysis findings.

A baseline lets a project adopt the deep pass incrementally: existing
findings are recorded once (``--write-baseline``), committed, and
filtered out of subsequent runs, so CI only fails on *new* findings.

Entries are keyed by ``(path, rule_id, message)`` -- deliberately not
by line number, so unrelated edits above a finding do not invalidate
the baseline.  Matching is multiset-aware: two identical findings in
one file need two baseline entries, and fixing one of them retires one
entry.  ``unused_entries`` reports baseline rows that no longer match
anything so the file can be shrunk as debt is paid down.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.devtools.diagnostics import Diagnostic

__all__ = ["Baseline", "load_baseline", "write_baseline"]

_VERSION = 1

_Key = Tuple[str, str, str]


def _key(diagnostic: Diagnostic) -> _Key:
    return (
        Path(diagnostic.path).as_posix(),
        diagnostic.rule_id,
        diagnostic.message,
    )


class Baseline:
    """An in-memory baseline: a multiset of accepted finding keys."""

    def __init__(self, entries: Sequence[_Key] = ()) -> None:
        self._entries: Counter = Counter(entries)

    def __len__(self) -> int:
        return sum(self._entries.values())

    def filter(
        self, diagnostics: Sequence[Diagnostic]
    ) -> Tuple[List[Diagnostic], List[Diagnostic]]:
        """Split findings into (new, baselined) against this baseline."""
        remaining = Counter(self._entries)
        new: List[Diagnostic] = []
        matched: List[Diagnostic] = []
        for diagnostic in diagnostics:
            key = _key(diagnostic)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                matched.append(diagnostic)
            else:
                new.append(diagnostic)
        return new, matched

    def unused_entries(self, diagnostics: Sequence[Diagnostic]) -> List[_Key]:
        """Baseline rows no current finding consumes (stale debt)."""
        remaining = Counter(self._entries)
        for diagnostic in diagnostics:
            key = _key(diagnostic)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
        stale: List[_Key] = []
        for key, count in sorted(remaining.items()):
            stale.extend([key] * count)
        return stale


def load_baseline(path: str) -> Baseline:
    """Read a baseline file; malformed content raises ``ValueError``."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ValueError(f"{path}: baseline is not valid JSON: {error}") from None
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise ValueError(
            f"{path}: unsupported baseline format (expected version {_VERSION})"
        )
    findings = data.get("findings", [])
    if not isinstance(findings, list):
        raise ValueError(f"{path}: baseline 'findings' must be a list")
    entries: List[_Key] = []
    for row in findings:
        if not isinstance(row, dict) or not all(
            isinstance(row.get(k), str) for k in ("path", "rule_id", "message")
        ):
            raise ValueError(
                f"{path}: each baseline finding needs string "
                "'path', 'rule_id' and 'message' fields"
            )
        entries.append((row["path"], row["rule_id"], row["message"]))
    return Baseline(entries)


def write_baseline(path: str, diagnostics: Sequence[Diagnostic]) -> None:
    """Serialise current findings as the new baseline (sorted, stable)."""
    rows: List[Dict[str, str]] = [
        {"path": key[0], "rule_id": key[1], "message": key[2]}
        for key in sorted(_key(d) for d in diagnostics)
    ]
    document = {"version": _VERSION, "findings": rows}
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
