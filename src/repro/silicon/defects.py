"""Latent-defect subpopulation: the Vmin outliers CQR must adapt to.

A small fraction of manufactured automotive parts carry latent defects --
resistive vias, marginal contacts, partially bridged nets -- that survive
time-zero testing but raise SCAN Vmin, most visibly at cold (where drive
current is weakest) and increasingly under stress (early-life failure
mechanism; see He & Yu, ITC 2020, the paper's [1]).  These chips are why
constant-width intervals either over-margin the normal population or
under-cover the tail, which is the paper's core argument for CQR.

The model: each chip is defective with probability ``defect_rate``;
severity is log-normal; the Vmin penalty scales with a per-temperature
factor and grows with stress time as ``1 + growth * sqrt(t/t_ref)``.
A weak electrical signature couples into nearby CPD monitors and a
handful of leakage channels so the defect is partially -- not fully --
observable, as in real silicon.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.models.base import check_random_state

__all__ = ["DefectModel", "DefectPopulation"]


class DefectModel:
    """Sampler for per-chip latent defect states.

    Parameters
    ----------
    defect_rate:
        Fraction of chips carrying a latent defect.
    severity_median_v:
        Median time-zero Vmin penalty of a defective chip at 25 degC (V).
    severity_log_sigma:
        Log-normal sigma of the severity.
    cold_factor / hot_factor:
        Multipliers on the penalty at -45 degC / 125 degC relative to room.
    growth:
        Relative penalty growth over the full stress duration.
    t_ref_hours:
        Stress duration at which ``growth`` is reached.
    """

    def __init__(
        self,
        defect_rate: float = 0.05,
        severity_median_v: float = 0.012,
        severity_log_sigma: float = 0.5,
        cold_factor: float = 1.6,
        hot_factor: float = 1.15,
        growth: float = 0.8,
        t_ref_hours: float = 1008.0,
    ) -> None:
        if not 0.0 <= defect_rate < 1.0:
            raise ValueError(f"defect_rate must be in [0, 1), got {defect_rate}")
        for name, value in (
            ("severity_median_v", severity_median_v),
            ("severity_log_sigma", severity_log_sigma),
            ("cold_factor", cold_factor),
            ("hot_factor", hot_factor),
            ("t_ref_hours", t_ref_hours),
        ):
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if growth < 0:
            raise ValueError(f"growth must be >= 0, got {growth}")
        self.defect_rate = defect_rate
        self.severity_median_v = severity_median_v
        self.severity_log_sigma = severity_log_sigma
        self.cold_factor = cold_factor
        self.hot_factor = hot_factor
        self.growth = growth
        self.t_ref_hours = t_ref_hours

    def sample(self, n_chips: int, rng) -> "DefectPopulation":
        """Draw defect states for ``n_chips``."""
        if n_chips < 1:
            raise ValueError(f"n_chips must be >= 1, got {n_chips}")
        rng = check_random_state(rng)
        mask = rng.random(n_chips) < self.defect_rate
        severity = np.where(
            mask,
            self.severity_median_v
            * np.exp(rng.normal(0.0, self.severity_log_sigma, size=n_chips)),
            0.0,
        )
        # Die location of the defect, for monitor-proximity coupling.
        location = rng.uniform(-1.0, 1.0, size=(n_chips, 2))
        return DefectPopulation(model=self, mask=mask, severity=severity, location=location)


class DefectPopulation:
    """Frozen defect states of a population."""

    _TEMPERATURE_FACTORS: Dict[float, str] = {
        -45.0: "cold_factor",
        25.0: "room",
        125.0: "hot_factor",
    }

    def __init__(
        self,
        model: DefectModel,
        mask: np.ndarray,
        severity: np.ndarray,
        location: np.ndarray,
    ) -> None:
        if mask.ndim != 1 or severity.shape != mask.shape:
            raise ValueError("mask and severity must be 1-D with equal shape")
        if location.shape != (mask.shape[0], 2):
            raise ValueError(
                f"location must have shape ({mask.shape[0]}, 2), got {location.shape}"
            )
        self.model = model
        self.mask = mask
        self.severity = severity
        self.location = location

    @property
    def n_chips(self) -> int:
        return int(self.mask.shape[0])

    @property
    def n_defective(self) -> int:
        return int(self.mask.sum())

    def _temperature_factor(self, temperature_c: float) -> float:
        kind = self._TEMPERATURE_FACTORS.get(float(temperature_c))
        if kind is None:
            raise ValueError(
                f"temperature {temperature_c} degC is not an ATE corner; "
                f"expected one of {sorted(self._TEMPERATURE_FACTORS)}"
            )
        if kind == "room":
            return 1.0
        return getattr(self.model, kind)

    def vmin_penalty(self, temperature_c: float, hours: float) -> np.ndarray:
        """Per-chip Vmin penalty (V) at a test corner and stress time."""
        if hours < 0:
            raise ValueError(f"hours must be >= 0, got {hours}")
        factor = self._temperature_factor(temperature_c)
        time_growth = 1.0 + self.model.growth * np.sqrt(hours / self.model.t_ref_hours)
        return self.severity * factor * time_growth

    def monitor_coupling(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Defect signature seen by monitors at die sites (chip, site).

        Falls off with distance from the defect location with a Gaussian
        kernel of scale 1.0 die units; healthy chips contribute zero.
        Returned in volts of equivalent local Vth shift.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape != y.shape or x.ndim != 1:
            raise ValueError("x and y must be 1-D arrays of equal length")
        dx = x[None, :] - self.location[:, 0][:, None]
        dy = y[None, :] - self.location[:, 1][:, None]
        proximity = np.exp(-(dx**2 + dy**2) / (2.0 * 1.0**2))
        return 1.5 * self.severity[:, None] * proximity
