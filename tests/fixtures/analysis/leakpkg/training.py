"""Fit helpers: innocent on their own, leaky when fed calibration data."""


def train_model(model, features, targets):
    """Fit ``model``; parameter positions 1 and 2 reach the fit sink."""
    model.fit(features, targets)
    return model


def run_training(model, features, targets):
    """One hop further from the sink: forwards to :func:`train_model`."""
    prepared = [row for row in features]
    return train_model(model, prepared, targets)
