"""Statistical comparison of predictors across CV folds.

The paper's Section IV-D claim -- "no golden model outperforms others for
all scenarios, [but] linear regression is competitive overall" -- is a
statement about *differences between models on shared folds*.  With only
4 folds, eyeballing mean R² is not enough; this module provides the
small-sample machinery to say it properly:

* :func:`paired_fold_difference` -- mean difference with a fold-paired
  bootstrap confidence interval,
* :func:`paired_permutation_test` -- exact sign-flip permutation p-value
  for the paired difference (the right test at n = 4..6 folds, where
  t-test normality is indefensible),
* :func:`rank_models` -- average rank of each model across scenarios,
  the standard multi-dataset comparison summary (Demšar, 2006).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "PairedComparison",
    "paired_fold_difference",
    "paired_permutation_test",
    "rank_models",
]


@dataclass(frozen=True)
class PairedComparison:
    """Result of comparing two models on shared folds.

    Attributes
    ----------
    mean_difference:
        Mean of ``scores_a − scores_b`` (positive = A better, for
        higher-is-better scores).
    ci_low, ci_high:
        Bootstrap confidence interval of the mean difference.
    p_value:
        Two-sided sign-flip permutation p-value for H0: no difference.
    """

    mean_difference: float
    ci_low: float
    ci_high: float
    p_value: float

    @property
    def significant(self) -> bool:
        """Conventional alpha = 0.05 verdict."""
        return self.p_value < 0.05


def _validate_pairs(scores_a, scores_b) -> Tuple[np.ndarray, np.ndarray]:
    a = np.asarray(scores_a, dtype=np.float64)
    b = np.asarray(scores_b, dtype=np.float64)
    if a.ndim != 1 or a.shape != b.shape:
        raise ValueError(
            f"paired scores must be 1-D with equal length, got {a.shape}, {b.shape}"
        )
    if a.size < 2:
        raise ValueError("need at least 2 paired folds")
    return a, b


def paired_permutation_test(
    scores_a: Sequence[float], scores_b: Sequence[float]
) -> float:
    """Exact two-sided sign-flip permutation p-value.

    Under H0 the per-fold differences are symmetric around zero, so each
    difference's sign is exchangeable: enumerate all :math:`2^n` sign
    assignments (n ≤ 20 enumerated exactly; beyond that, 20 000 random
    flips) and report the fraction with |mean| at least as extreme.
    """
    a, b = _validate_pairs(scores_a, scores_b)
    differences = a - b
    n = differences.size
    observed = abs(differences.mean())
    if n <= 20:
        signs = np.array(list(itertools.product((1.0, -1.0), repeat=n)))
    else:
        signs = np.random.default_rng(0).choice((1.0, -1.0), size=(20_000, n))
    permuted = np.abs((signs * differences[None, :]).mean(axis=1))
    # >= with a tolerance so the observed assignment counts itself.
    return float(np.mean(permuted >= observed - 1e-15))


def paired_fold_difference(
    scores_a: Sequence[float],
    scores_b: Sequence[float],
    n_bootstrap: int = 10_000,
    confidence: float = 0.95,
    seed: int = 0,
) -> PairedComparison:
    """Mean paired difference with bootstrap CI and permutation p-value."""
    a, b = _validate_pairs(scores_a, scores_b)
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    differences = a - b
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, differences.size, size=(n_bootstrap, differences.size))
    bootstrap_means = differences[indices].mean(axis=1)
    tail = (1.0 - confidence) / 2.0
    return PairedComparison(
        mean_difference=float(differences.mean()),
        ci_low=float(np.quantile(bootstrap_means, tail)),
        ci_high=float(np.quantile(bootstrap_means, 1.0 - tail)),
        p_value=paired_permutation_test(a, b),
    )


def rank_models(
    scores_by_model: Mapping[str, Sequence[float]],
    higher_is_better: bool = True,
) -> Dict[str, float]:
    """Average rank of each model over shared scenarios (1 = best).

    ``scores_by_model[name]`` holds one score per scenario (all models
    must cover the same scenarios).  Ties share the average rank.  The
    resulting ranking is the standard way to compress a "models x
    scenarios" grid like Fig. 2 into one line.
    """
    names = list(scores_by_model)
    if not names:
        raise ValueError("scores_by_model must be non-empty")
    lengths = {len(scores_by_model[name]) for name in names}
    if len(lengths) != 1:
        raise ValueError(f"models cover different scenario counts: {lengths}")
    matrix = np.asarray([scores_by_model[name] for name in names], dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("each model needs a 1-D sequence of scenario scores")
    if not higher_is_better:
        matrix = -matrix
    # Rank per scenario (column), 1 = best, average ties.
    from scipy.stats import rankdata

    ranks = np.vstack(
        [rankdata(-matrix[:, j], method="average") for j in range(matrix.shape[1])]
    ).T
    return {name: float(ranks[i].mean()) for i, name in enumerate(names)}
