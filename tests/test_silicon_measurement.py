"""Tests for monitors, parametric tests, and the Vmin model."""

import numpy as np
import pytest

from repro.silicon.aging import AgingModel
from repro.silicon.constants import (
    N_CPD_SENSORS,
    N_PARAMETRIC_TESTS,
    N_ROD_SENSORS,
    TEMPERATURES_C,
)
from repro.silicon.defects import DefectModel
from repro.silicon.monitors import CPDSensorBank, RODSensorBank
from repro.silicon.parametric import ParametricTestBank
from repro.silicon.process import ProcessVariationModel
from repro.silicon.vmin import ScanVminModel


@pytest.fixture()
def population():
    rng = np.random.default_rng(0)
    process = ProcessVariationModel().sample(80, rng)
    aging = AgingModel().sample_amplitudes(process.vth_shift, rng)
    defects = DefectModel(defect_rate=0.2).sample(80, rng)
    return process, aging, defects


class TestRODBank:
    def test_reading_shape_and_names(self, population):
        process, aging, _ = population
        bank = RODSensorBank(random_state=0)
        bank.fabricate(process, np.random.default_rng(1))
        reading = bank.read(aging, 0, np.random.default_rng(2))
        assert reading.shape == (80, N_ROD_SENSORS)
        assert len(bank.sensor_names()) == N_ROD_SENSORS
        assert len(set(bank.sensor_names())) == N_ROD_SENSORS

    def test_slow_silicon_reads_slower(self, population):
        process, aging, _ = population
        bank = RODSensorBank(noise_ps=0.0, random_state=0)
        bank.fabricate(process, np.random.default_rng(1))
        reading = bank.read(aging, 0, np.random.default_rng(2))
        corr = np.corrcoef(process.vth_shift, reading.mean(axis=1))[0, 1]
        assert corr > 0.9

    def test_aging_increases_delay(self, population):
        process, aging, _ = population
        bank = RODSensorBank(noise_ps=0.0, random_state=0)
        bank.fabricate(process, np.random.default_rng(1))
        fresh = bank.read(aging, 0, np.random.default_rng(2))
        aged = bank.read(aging, 1008, np.random.default_rng(2))
        assert np.all(aged.mean(axis=1) > fresh.mean(axis=1))

    def test_read_before_fabricate_raises(self, population):
        _, aging, _ = population
        with pytest.raises(RuntimeError, match="fabricate"):
            RODSensorBank().read(aging, 0, 0)

    def test_readings_have_fresh_noise(self, population):
        process, aging, _ = population
        bank = RODSensorBank(random_state=0)
        bank.fabricate(process, np.random.default_rng(1))
        a = bank.read(aging, 0, np.random.default_rng(2))
        b = bank.read(aging, 0, np.random.default_rng(3))
        assert not np.allclose(a, b)


class TestCPDBank:
    def test_reading_shape(self, population):
        process, aging, defects = population
        bank = CPDSensorBank(random_state=0)
        bank.fabricate(process, defects, np.random.default_rng(1))
        reading = bank.read(aging, 24, np.random.default_rng(2))
        assert reading.shape == (80, N_CPD_SENSORS)

    def test_defect_signature_visible(self, population):
        process, aging, defects = population
        bank = CPDSensorBank(noise_ps=0.0, random_state=0)
        bank.fabricate(process, defects, np.random.default_rng(1))
        reading = bank.read(aging, 0, np.random.default_rng(2))
        # Remove the process component: compare against a defect-free twin.
        clean_defects = DefectModel(defect_rate=0.0).sample(80, np.random.default_rng(9))
        clean_bank = CPDSensorBank(noise_ps=0.0, random_state=0)
        clean_bank.fabricate(process, clean_defects, np.random.default_rng(1))
        clean = clean_bank.read(aging, 0, np.random.default_rng(2))
        extra = (reading - clean).max(axis=1)
        assert extra[defects.mask].mean() > extra[~defects.mask].mean()


class TestParametricBank:
    def test_shape_and_metadata(self, population):
        process, _, defects = population
        bank = ParametricTestBank(random_state=0)
        data = bank.measure(process, defects, np.random.default_rng(1))
        assert data.shape == (80, N_PARAMETRIC_TESTS)
        names = bank.channel_names()
        assert len(names) == N_PARAMETRIC_TESTS
        assert len(set(names)) == N_PARAMETRIC_TESTS
        temps = bank.channel_temperatures()
        assert set(temps) == set(TEMPERATURES_C)

    def test_all_finite(self, population):
        process, _, defects = population
        bank = ParametricTestBank(random_state=0)
        data = bank.measure(process, defects, np.random.default_rng(1))
        assert np.all(np.isfinite(data))

    def test_iddq_tracks_leakage(self, population):
        process, _, defects = population
        bank = ParametricTestBank(relative_noise=0.001, random_state=0)
        data = bank.measure(process, defects, np.random.default_rng(1))
        names = bank.channel_names()
        iddq_cols = [i for i, n in enumerate(names) if "iddq" in n and "_25C_" in n]
        iddq_mean = data[:, iddq_cols].mean(axis=1)
        corr = np.corrcoef(np.log(process.leakage_factor), iddq_mean)[0, 1]
        assert corr > 0.5

    def test_misc_channels_uninformative(self, population):
        process, _, defects = population
        bank = ParametricTestBank(random_state=0)
        data = bank.measure(process, defects, np.random.default_rng(1))
        names = bank.channel_names()
        misc_cols = [i for i, n in enumerate(names) if "misc" in n]
        correlations = [
            abs(np.corrcoef(process.vth_shift, data[:, c])[0, 1]) for c in misc_cols[:30]
        ]
        assert np.mean(correlations) < 0.15

    def test_vdd_trip_quantised(self, population):
        process, _, defects = population
        bank = ParametricTestBank(vdd_trip_step_v=0.005, random_state=0)
        data = bank.measure(process, defects, np.random.default_rng(1))
        names = bank.channel_names()
        col = next(i for i, n in enumerate(names) if "vdd_trip" in n)
        values = data[:, col]
        np.testing.assert_allclose(values, np.round(values / 0.005) * 0.005, atol=1e-10)


class TestScanVminModel:
    def test_true_vmin_ordering_cold_worst(self, population):
        process, aging, defects = population
        model = ScanVminModel()
        cold = model.true_vmin(process, aging, defects, -45.0, 0).mean()
        room = model.true_vmin(process, aging, defects, 25.0, 0).mean()
        hot = model.true_vmin(process, aging, defects, 125.0, 0).mean()
        assert cold > hot > room

    def test_vmin_increases_with_stress(self, population):
        process, aging, defects = population
        model = ScanVminModel()
        fresh = model.true_vmin(process, aging, defects, 25.0, 0)
        aged = model.true_vmin(process, aging, defects, 25.0, 1008)
        assert np.all(aged >= fresh)

    def test_measured_rounded_up_to_step(self, population):
        process, aging, defects = population
        model = ScanVminModel(ate_step_v=0.0025)
        measured = model.measure(
            process, aging, defects, 25.0, 0, np.random.default_rng(0)
        )
        np.testing.assert_allclose(
            measured, np.round(measured / 0.0025) * 0.0025, atol=1e-12
        )

    def test_defective_chips_noisier(self, population):
        process, aging, defects = population
        model = ScanVminModel(defect_noise_factor=3.0)
        rng_a, rng_b = np.random.default_rng(0), np.random.default_rng(1)
        a = model.measure(process, aging, defects, 25.0, 0, rng_a)
        b = model.measure(process, aging, defects, 25.0, 0, rng_b)
        spread = np.abs(a - b)
        assert spread[defects.mask].mean() > spread[~defects.mask].mean()

    def test_slow_silicon_needs_more_voltage(self, population):
        process, aging, defects = population
        model = ScanVminModel()
        vmin = model.true_vmin(process, aging, defects, 25.0, 0)
        corr = np.corrcoef(process.vth_shift, vmin)[0, 1]
        assert corr > 0.5

    def test_rejects_unknown_temperature(self, population):
        process, aging, defects = population
        with pytest.raises(ValueError):
            ScanVminModel().true_vmin(process, aging, defects, 85.0, 0)

    def test_rejects_bad_step(self):
        with pytest.raises(ValueError):
            ScanVminModel(ate_step_v=0.0)
