"""REP103 -- no mutable default arguments.

A default evaluated once at ``def`` time and mutated inside the body
leaks state across calls.  In modelling code this is how "fit results
depend on how many times you called the helper before" bugs are born
-- exactly the hidden statefulness the reproducibility contract bans.
Use ``None`` and construct the container inside the function.

Flags list/dict/set literals and comprehensions, and calls to the
``list``/``dict``/``set``/``bytearray`` constructors, used as defaults
for positional or keyword-only parameters (lambdas included).
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from typing import TYPE_CHECKING

from repro.devtools.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.devtools.engine import ModuleContext
from repro.devtools.rules.base import Rule, dotted_name

__all__ = ["MutableDefaultRule"]

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)
_MUTABLE_CONSTRUCTORS = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def _is_mutable(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func).split(".")[-1] in _MUTABLE_CONSTRUCTORS
    return False


class MutableDefaultRule(Rule):
    """Forbid mutable default argument values."""

    rule_id = "REP103"
    name = "no-mutable-defaults"
    summary = "no list/dict/set (literals or constructors) as defaults"
    rationale = (
        "defaults are evaluated once; mutating one leaks state between "
        "calls and makes results depend on call history"
    )
    scopes = frozenset({"src", "test"})

    def _check(
        self, node: _FunctionNode, context: ModuleContext
    ) -> Iterator[Diagnostic]:
        label = getattr(node, "name", "<lambda>")
        for default in (*node.args.defaults, *node.args.kw_defaults):
            if default is not None and _is_mutable(default):
                yield self.diagnostic(
                    default,
                    context,
                    f"mutable default argument in '{label}'; default to None "
                    "and build the container inside the function",
                )

    def visit_FunctionDef(
        self, node: ast.FunctionDef, context: ModuleContext
    ) -> Iterator[Diagnostic]:
        """Check defaults of a plain function or method."""
        return self._check(node, context)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef, context: ModuleContext
    ) -> Iterator[Diagnostic]:
        """Check defaults of an async function."""
        return self._check(node, context)

    def visit_Lambda(
        self, node: ast.Lambda, context: ModuleContext
    ) -> Iterator[Diagnostic]:
        """Check defaults of a lambda."""
        return self._check(node, context)
