"""Stand-in parallel primitive with the repro.perf.parallel signature."""


def parallel_map(fn, items, n_jobs=None):
    """Sequential stand-in; the analyzer matches it by name."""
    return [fn(item) for item in items]
