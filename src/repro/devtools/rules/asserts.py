"""REP104 -- no ``assert`` statements in library code.

``python -O`` strips every ``assert``; a precondition or invariant
expressed that way silently stops being checked in optimised
deployments.  Library code must raise explicit exceptions
(``ValueError`` / ``TypeError`` / ``RuntimeError``) that survive any
interpreter flag.  Tests are exempt -- pytest's ``assert`` rewriting
is the point there -- which is why this rule is scoped to ``src``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from typing import TYPE_CHECKING

from repro.devtools.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.devtools.engine import ModuleContext
from repro.devtools.rules.base import Rule

__all__ = ["NoAssertRule"]


class NoAssertRule(Rule):
    """Forbid ``assert`` outside tests."""

    rule_id = "REP104"
    name = "no-assert-in-src"
    summary = "library code must raise explicit exceptions, not assert"
    rationale = (
        "python -O removes asserts, so invariants guarded by them vanish "
        "in optimised builds; raise ValueError/RuntimeError instead"
    )
    scopes = frozenset({"src"})

    def visit_Assert(
        self, node: ast.Assert, context: ModuleContext
    ) -> Iterator[Diagnostic]:
        """Flag every ``assert`` statement in src-role files."""
        yield self.diagnostic(
            node,
            context,
            "assert is stripped under python -O; raise an explicit "
            "exception (ValueError/RuntimeError) so the check survives "
            "optimised builds",
        )
