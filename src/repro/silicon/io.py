"""Persistence for synthetic lots: share a dataset without sharing code.

``SiliconDataset.generate`` is deterministic, but downstream users (and
CI) often want a frozen artefact: the same matrices regardless of library
version, loadable without re-running the generator.  This module
round-trips the *measured* data (features + labels + minimal metadata)
through a single compressed ``.npz`` file, and exports the burn-in flow
log as CSV for spreadsheet/database ingestion.

The latent ground truth (process state, defect severities) is
intentionally **not** serialised: a persisted lot behaves like real
silicon data — you get measurements, not the hidden truth.  The defect
mask and true Vmin stay available only on freshly generated datasets.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Union

import numpy as np

from repro.silicon.ate import BurnInFlowSimulator
from repro.silicon.dataset import SiliconDataset

__all__ = ["export_flow_csv", "load_measurements", "save_measurements"]

_FORMAT_VERSION = 1


def save_measurements(dataset: SiliconDataset, path: Union[str, Path]) -> Path:
    """Write the measured blocks of ``dataset`` to a compressed ``.npz``.

    Saved content: parametric matrix + channel metadata, every ROD/CPD
    block, every measured Vmin vector, and the read-point/temperature
    axes.  Returns the resolved path.
    """
    path = Path(path)
    arrays = {
        "format_version": np.array([_FORMAT_VERSION]),
        "read_points": np.asarray(dataset.read_points, dtype=np.int64),
        "temperatures": np.asarray(dataset.temperatures, dtype=np.float64),
        "parametric": dataset.parametric,
        "parametric_names": np.asarray(dataset.parametric_names),
        "parametric_temperatures": dataset.parametric_temperatures,
        "rod_names": np.asarray(dataset.rod_names),
        "cpd_names": np.asarray(dataset.cpd_names),
    }
    for hours in dataset.read_points:
        arrays[f"rod_{hours}"] = dataset.rod[hours]
        arrays[f"cpd_{hours}"] = dataset.cpd[hours]
        for temperature in dataset.temperatures:
            arrays[f"vmin_{temperature:g}_{hours}"] = dataset.vmin[
                (temperature, hours)
            ]
    np.savez_compressed(path, **arrays)
    return path.resolve()


class _MeasurementOnlyPopulation:
    """Sentinel standing in for the latent population of a loaded lot.

    Any attribute access raises with a clear message: persisted datasets
    carry measurements only (like real silicon data).
    """

    def __getattr__(self, name: str):
        raise AttributeError(
            "this SiliconDataset was loaded from disk and carries "
            "measurements only; the latent population (ground truth, "
            f"defect states) is not persisted (requested: {name!r})"
        )


def load_measurements(path: Union[str, Path]) -> SiliconDataset:
    """Load a lot previously written by :func:`save_measurements`.

    The returned dataset supports every measurement accessor
    (``features``, ``target``, the raw blocks) but has no latent
    population: ``true_vmin`` is empty and ``population`` raises on
    access.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset format version {version}; "
                f"this library reads version {_FORMAT_VERSION}"
            )
        read_points = tuple(int(h) for h in archive["read_points"])
        temperatures = tuple(float(t) for t in archive["temperatures"])
        rod = {hours: archive[f"rod_{hours}"] for hours in read_points}
        cpd = {hours: archive[f"cpd_{hours}"] for hours in read_points}
        vmin = {
            (temperature, hours): archive[f"vmin_{temperature:g}_{hours}"]
            for hours in read_points
            for temperature in temperatures
        }
        dataset = SiliconDataset(
            parametric=archive["parametric"],
            parametric_names=[str(n) for n in archive["parametric_names"]],
            parametric_temperatures=archive["parametric_temperatures"],
            rod=rod,
            rod_names=[str(n) for n in archive["rod_names"]],
            cpd=cpd,
            cpd_names=[str(n) for n in archive["cpd_names"]],
            vmin=vmin,
            true_vmin={},
            population=_MeasurementOnlyPopulation(),  # type: ignore[arg-type]
            read_points=read_points,
            temperatures=temperatures,
        )
    return dataset


def export_flow_csv(
    dataset: SiliconDataset,
    path: Union[str, Path],
    include_parametric: bool = False,
) -> int:
    """Export the burn-in measurement log as CSV; returns the row count.

    One row per measurement event (see
    :class:`~repro.silicon.ate.MeasurementRecord`).  The parametric
    insertion is off by default — 1800 channels x n chips dominates the
    file without adding flow structure.
    """
    path = Path(path)
    simulator = BurnInFlowSimulator(
        dataset, include_parametric=include_parametric
    )
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "read_point_hours",
                "insertion",
                "temperature_c",
                "chip_index",
                "channel",
                "value",
            ]
        )
        for record in simulator.run():
            writer.writerow(
                [
                    record.read_point_hours,
                    record.insertion,
                    record.temperature_c,
                    record.chip_index,
                    record.channel,
                    repr(record.value),
                ]
            )
            count += 1
    return count
