"""CatBoost-style oblivious-tree gradient boosting (paper Section IV-C.3).

CatBoost's distinguishing inductive bias is the *oblivious* (symmetric)
tree: every node at a given depth tests the same (feature, threshold)
pair, so a depth-``d`` tree is a decision table with :math:`2^d` leaves.
On small datasets -- like the paper's 156 chips -- this acts as strong
regularisation, which is why CatBoost is the paper's best point predictor
and CQR base model.  The paper keeps CatBoost defaults but reduces the
tree count from 1000 to 100 to avoid over-fitting; we mirror that.

Implementation notes:

* features are pre-binned into at most ``max_bins`` quantile bins once per
  fit; level-wise split search then reduces to one ``np.bincount`` over
  ``(feature, leaf, bin)`` cells per level, fully vectorised,
* leaf values are Newton steps ``−G/(H+λ)`` with CatBoost's
  ``l2_leaf_reg`` as λ,
* the objective is squared error or pinball (``quantile=q``), matching the
  QR/CQR usage in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.models.base import (
    BaseRegressor,
    check_fitted,
    check_random_state,
    check_X,
    check_X_y,
)
from repro.models.binning import (
    BinnedDataset,
    histogram_cells,
    histogram_sums,
    shared_binned_dataset,
)
from repro.models.losses import (
    mse_gradient_hessian,
    pinball_gradient_hessian,
    validate_quantile,
)
from repro.models.tables import compile_oblivious

__all__ = ["ObliviousBoostingRegressor", "ObliviousTree"]


@dataclass
class ObliviousTree:
    """A fitted decision table: one (feature, threshold) per level.

    ``leaf_values`` has :math:`2^{\\text{depth}}` entries indexed by the
    binary code built from the level tests (most significant bit = first
    level).

    A depth-0 table (``features`` empty, a single leaf value) is a valid
    tree -- a fit round where no split improved on not splitting
    produces one -- and is handled here, not by callers: every row's
    leaf code is 0 and every prediction is ``leaf_values[0]``.
    """

    features: np.ndarray  # (depth,) int
    thresholds: np.ndarray  # (depth,) float
    leaf_values: np.ndarray  # (2**depth,) float

    def leaf_indices(self, X: np.ndarray) -> np.ndarray:
        """Leaf code for every row of ``X``.

        Comparisons happen in float64 whatever the dtype of ``X``: the
        thresholds are float64, and letting a float32 column be compared
        in its own precision could route boundary-straddling rows to the
        other side of a split than the fitted model intended.  For a
        depth-0 table this is all zeros (the single leaf).
        """
        X = np.asarray(X, dtype=np.float64)
        indices = np.zeros(X.shape[0], dtype=np.int64)
        for feature, threshold in zip(self.features, self.thresholds):
            indices = (indices << 1) | (X[:, feature] > threshold)
        return indices

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Leaf value for every row of ``X`` (depth-0 tables included)."""
        return self.leaf_values[self.leaf_indices(X)]


class ObliviousBoostingRegressor(BaseRegressor):
    """Gradient boosting over oblivious trees with CatBoost-like defaults.

    Parameters
    ----------
    n_estimators:
        Boosting rounds; the paper uses 100 (reduced from CatBoost's 1000).
    learning_rate:
        Shrinkage per tree (~CatBoost's auto rate for 100 iterations).
    depth:
        Oblivious-tree depth (CatBoost default 6).
    l2_leaf_reg:
        L2 regularisation λ on leaf values (CatBoost default 3).
    max_bins:
        Maximum quantile bins per feature for threshold candidates
        (CatBoost ``border_count``; 32 is ample for 156-chip data).
    rsm:
        Fraction of features sampled per *level* (CatBoost ``rsm``).
    feature_shortlist:
        Wide-data speedup: the root level of each tree scores every
        feature exactly, then deeper levels only consider the top-K
        features by root gain.  ``None`` scores all features at every
        level (exact, O(features x leaves x bins) per level).  With the
        paper's ~2000 columns and 156 chips, K=256 is indistinguishable
        in accuracy and an order of magnitude faster.
    bagging_temperature:
        Bayesian-bootstrap strength: per-round exponential sample weights
        raised to this power (0 disables).  Off by default: on the
        156-chip regime the extra split noise measurably hurts accuracy,
        and split-score randomisation already provides tree diversity.
    random_strength:
        Amplitude of the Gaussian noise added to split scores, relative to
        the score spread (CatBoost ``random_strength``, default 1).  The
        noise diversifies the trees across rounds -- without it every
        round regrows the same partition and the ensemble cannot refine
        beyond :math:`2^{depth}` cells, which changes small-data
        behaviour qualitatively (notably the quantile-overfitting the
        paper observes for QR CatBoost).
    quantile:
        ``None`` for squared error, a value in (0, 1) for pinball loss.
    random_state:
        Seed for feature sampling and score noise.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.16,
        depth: int = 6,
        l2_leaf_reg: float = 3.0,
        max_bins: int = 32,
        rsm: float = 1.0,
        feature_shortlist: Optional[int] = 256,
        random_strength: float = 1.0,
        bagging_temperature: float = 0.0,
        quantile: Optional[float] = None,
        random_state: Optional[int] = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        if l2_leaf_reg < 0:
            raise ValueError(f"l2_leaf_reg must be >= 0, got {l2_leaf_reg}")
        if max_bins < 2:
            raise ValueError(f"max_bins must be >= 2, got {max_bins}")
        if not 0.0 < rsm <= 1.0:
            raise ValueError(f"rsm must be in (0, 1], got {rsm}")
        if feature_shortlist is not None and feature_shortlist < 1:
            raise ValueError(
                f"feature_shortlist must be >= 1 or None, got {feature_shortlist}"
            )
        if random_strength < 0:
            raise ValueError(
                f"random_strength must be >= 0, got {random_strength}"
            )
        if bagging_temperature < 0:
            raise ValueError(
                f"bagging_temperature must be >= 0, got {bagging_temperature}"
            )
        if quantile is not None:
            quantile = validate_quantile(quantile)
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.depth = depth
        self.l2_leaf_reg = l2_leaf_reg
        self.max_bins = max_bins
        self.rsm = rsm
        self.feature_shortlist = feature_shortlist
        self.random_strength = random_strength
        self.bagging_temperature = bagging_temperature
        self.quantile = quantile
        self.random_state = random_state
        self.trees_: Optional[List[ObliviousTree]] = None

    # -- binning -----------------------------------------------------------
    def _bin_features(
        self, X: np.ndarray, dataset: Optional[BinnedDataset] = None
    ) -> BinnedDataset:
        """Digitise every column into a shared :class:`BinnedDataset`.

        The single binning code path for both boosting models: delegates
        to :func:`~repro.models.binning.shared_binned_dataset`, so repeat
        fits on the same matrix (the CQR lo/hi pair, CV folds, grid
        cells) reuse one binning pass.  A caller-provided ``dataset`` is
        validated against ``X`` and used as-is.
        """
        if dataset is not None:
            if dataset.codes.shape != X.shape:
                raise ValueError(
                    f"binned dataset has shape {dataset.codes.shape}, "
                    f"X has {X.shape}"
                )
            if dataset.max_bins != self.max_bins:
                raise ValueError(
                    f"binned dataset was built with max_bins="
                    f"{dataset.max_bins}, model wants {self.max_bins}"
                )
            return dataset
        return shared_binned_dataset(X, self.max_bins)

    def _gradients(self, y: np.ndarray, prediction: np.ndarray):
        if self.quantile is None:
            return mse_gradient_hessian(y, prediction)
        return pinball_gradient_hessian(y, prediction, self.quantile)

    def _leaf_values(
        self,
        y: np.ndarray,
        prediction: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        leaf_idx: np.ndarray,
        n_leaves: int,
    ) -> np.ndarray:
        """Per-leaf step values for the current round.

        Squared error uses the regularised Newton step ``-G/(H+λ)``.  For
        the pinball objective CatBoost's ``leaf_estimation_method`` is
        ``Exact``: each leaf jumps to the ``q``-th quantile of its current
        residuals, which converges orders of magnitude faster than unit-
        Hessian Newton steps on a loss whose true Hessian is zero.
        """
        if self.quantile is None:
            grad_leaf = np.bincount(leaf_idx, weights=gradients, minlength=n_leaves)
            hess_leaf = np.bincount(leaf_idx, weights=hessians, minlength=n_leaves)
            return -grad_leaf / (hess_leaf + self.l2_leaf_reg)
        residuals = y - prediction
        values = np.zeros(n_leaves)
        counts = np.bincount(leaf_idx, minlength=n_leaves)
        for leaf in np.flatnonzero(counts):
            members = residuals[leaf_idx == leaf]
            # Shrink toward zero with the same λ convention as Newton
            # leaves so l2_leaf_reg keeps meaning "resist tiny leaves".
            step = float(np.quantile(members, self.quantile))
            values[leaf] = step * counts[leaf] / (counts[leaf] + self.l2_leaf_reg)
        return values

    # -- level-wise split search --------------------------------------------
    def _best_level_split(
        self,
        binned: np.ndarray,
        leaf_idx: np.ndarray,
        gradients: np.ndarray,
        hessians: np.ndarray,
        n_leaves: int,
        candidate_features: np.ndarray,
        rng=None,
        n_bins: Optional[int] = None,
        dataset: Optional[BinnedDataset] = None,
    ) -> Tuple[int, int, float, np.ndarray]:
        """Pick the (feature, bin-threshold) with maximal summed leaf gain.

        Returns ``(feature, bin_index, score, per_feature_scores)`` where
        the split sends ``bin > bin_index`` to the right child, or
        ``(-1, -1, -inf, scores)`` when no candidate improves on not
        splitting.  ``per_feature_scores`` (aligned with
        ``candidate_features``) feeds the root-gain shortlist.

        ``n_bins`` is round-invariant (``codes.max() + 1``), so callers
        fitting many rounds pass it in rather than re-scanning the code
        matrix per level.  ``dataset`` enables the level-0 histogram
        cache: when the candidates span every column of its codes and a
        single leaf is active, the cell index (and, for unit Hessians,
        the Hessian histogram) comes from
        :meth:`BinnedDataset.root_level` -- bit-identical by
        construction.
        """
        lam = self.l2_leaf_reg
        if n_bins is None:
            n_bins = int(binned.max()) + 1 if binned.size else 1
        best_feature, best_bin, best_score = -1, -1, -np.inf

        n_candidates = candidate_features.size
        root_unit = None
        if (
            dataset is not None
            and n_leaves == 1
            and n_candidates == binned.shape[1]
            and np.array_equal(candidate_features, np.arange(binned.shape[1]))
        ):
            cell, root_unit = dataset.root_level(n_bins)
        else:
            cell = histogram_cells(
                binned, leaf_idx, n_leaves, n_bins, candidate_features
            )
        grad_cells = histogram_sums(cell, gradients, n_leaves, n_bins, n_candidates)
        if root_unit is not None and bool(np.all(hessians == 1.0)):
            hess_cells = root_unit
        else:
            hess_cells = histogram_sums(
                cell, hessians, n_leaves, n_bins, n_candidates
            )

        grad_left = np.cumsum(grad_cells, axis=2)[:, :, :-1]
        hess_left = np.cumsum(hess_cells, axis=2)[:, :, :-1]
        grad_total = grad_cells.sum(axis=2, keepdims=True)
        hess_total = hess_cells.sum(axis=2, keepdims=True)

        # Score = Σ_leaves GL²/(HL+λ) + GR²/(HR+λ); the parent term is the
        # same for every candidate so it can be dropped from the argmax.
        # With λ > 0 every denominator is strictly positive, so the
        # arithmetic below is NaN-free by construction; the in-place ops
        # keep temporary traffic down on the (F, L, bins) arrays.
        reg = max(lam, 1e-12)
        score = np.square(grad_left)
        score /= hess_left + reg
        grad_right = grad_total - grad_left
        right_term = np.square(grad_right)
        right_term /= hess_total - hess_left + reg
        score += right_term
        score = score.sum(axis=1)  # (F, n_bins-1)
        # A split must route at least one sample each way globally;
        # otherwise it is a no-op (and its bin index may not even map to a
        # real threshold for features with few distinct values).
        left_mass = hess_left.sum(axis=1)  # (F, n_bins-1)
        right_mass = hess_total.sum(axis=1) - left_mass
        score = np.where((left_mass > 0) & (right_mass > 0), score, -np.inf)
        # No-split reference: sum of G²/(H+λ) over the current leaves;
        # grad_total is identical for every candidate feature, so read it
        # off the first candidate only.
        baseline = float(
            np.sum(grad_total[0, :, 0] ** 2 / (hess_total[0, :, 0] + lam))
        )
        if score.size == 0:
            return -1, -1, -np.inf, np.full(n_candidates, -np.inf)
        if self.random_strength > 0 and rng is not None:
            # CatBoost-style score perturbation: noise proportional to the
            # spread of candidate scores breaks argmax ties differently in
            # every round, keeping the tree ensemble diverse.
            finite = score[np.isfinite(score)]
            if finite.size > 1:
                spread = float(finite.std())
                if spread > 0:
                    score = score + rng.normal(
                        0.0, self.random_strength * spread * 0.1, size=score.shape
                    )
        flat_best = int(np.argmax(score))
        feature_pos, bin_pos = np.unravel_index(flat_best, score.shape)
        best = float(score[feature_pos, bin_pos])
        per_feature = score.max(axis=1)
        if best <= baseline + 1e-12:
            return -1, -1, -np.inf, per_feature
        best_feature = int(candidate_features[feature_pos])
        best_bin = int(bin_pos)
        best_score = best
        return best_feature, best_bin, best_score, per_feature

    # -- fitting ---------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        binned: Optional[BinnedDataset] = None,
    ) -> "ObliviousBoostingRegressor":
        """Fit the ensemble; ``binned`` optionally supplies a pre-binned
        :class:`~repro.models.binning.BinnedDataset` whose codes come
        from this very ``X`` at this ``max_bins`` (bit-identical to
        binning from scratch)."""
        X, y = check_X_y(X, y)
        self.n_features_in_ = X.shape[1]
        rng = check_random_state(self.random_state)
        dataset = self._bin_features(X, dataset=binned)
        binned = dataset.codes
        edges = dataset.binner.edges_
        n_bins = dataset.codes_max + 1
        n_samples, n_features = X.shape

        if self.quantile is None:
            self.base_score_ = float(np.mean(y))
        else:
            self.base_score_ = float(np.quantile(y, self.quantile))

        prediction = np.full(n_samples, self.base_score_)
        trees: List[ObliviousTree] = []
        for _ in range(self.n_estimators):
            gradients, hessians = self._gradients(y, prediction)
            if self.bagging_temperature > 0:
                # CatBoost's default Bayesian bootstrap: exponential-like
                # per-sample weights each round, diversifying the trees.
                weights = (
                    -np.log(rng.uniform(1e-12, 1.0, size=n_samples))
                ) ** self.bagging_temperature
            else:
                weights = np.ones(n_samples)
            weighted_grad = gradients * weights
            weighted_hess = hessians * weights

            leaf_idx = np.zeros(n_samples, dtype=np.int64)
            features: List[int] = []
            thresholds: List[float] = []
            n_leaves = 1
            shortlist = None
            for _level in range(self.depth):
                if shortlist is not None:
                    candidates = shortlist
                elif self.rsm < 1.0:
                    n_cols = max(1, int(round(self.rsm * n_features)))
                    candidates = rng.choice(n_features, size=n_cols, replace=False)
                else:
                    candidates = np.arange(n_features)
                feature, bin_index, _score, feature_scores = self._best_level_split(
                    binned, leaf_idx, weighted_grad, weighted_hess, n_leaves,
                    candidates, rng, n_bins=n_bins, dataset=dataset,
                )
                if (
                    shortlist is None
                    and self.feature_shortlist is not None
                    and candidates.size > self.feature_shortlist
                ):
                    top = np.argsort(feature_scores)[-self.feature_shortlist :]
                    shortlist = np.sort(candidates[top])
                if feature < 0:
                    break
                feature_edges = edges[feature]
                threshold = float(feature_edges[bin_index])
                features.append(feature)
                thresholds.append(threshold)
                leaf_idx = (leaf_idx << 1) | (binned[:, feature] > bin_index)
                n_leaves *= 2

            leaf_values = self._leaf_values(
                y, prediction, gradients, hessians, leaf_idx, n_leaves
            )
            if not features:
                tree = ObliviousTree(
                    features=np.empty(0, dtype=np.int64),
                    thresholds=np.empty(0),
                    leaf_values=leaf_values[:1],
                )
                trees.append(tree)
                prediction += self.learning_rate * leaf_values[0]
                continue
            tree = ObliviousTree(
                features=np.asarray(features, dtype=np.int64),
                thresholds=np.asarray(thresholds),
                leaf_values=leaf_values,
            )
            trees.append(tree)
            prediction += self.learning_rate * leaf_values[leaf_idx]

        self.trees_ = trees
        self.compiled_ = compile_oblivious(trees)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Boosted prediction for every row of ``X``.

        Scores through the compiled decision-table kernel when the fit
        produced one (``compiled_``,
        :class:`~repro.models.tables.CompiledObliviousTables`), falling
        back to the per-tree reference loop for models unpickled from
        older bundles.  The two paths are bit-identical; comparisons
        always happen in float64 regardless of the dtype of ``X``.
        """
        check_fitted(self, "trees_")
        X = self._check_predict_X(X)
        compiled = getattr(self, "compiled_", None)
        if compiled is not None:
            return compiled.predict(X, self.base_score_, self.learning_rate)
        return self._predict_loop(X)

    def staged_predict(self, X: np.ndarray) -> np.ndarray:
        """Predictions after each boosting round, shape (n_trees, n).

        Mirrors :meth:`GradientBoostingRegressor.staged_predict`; used by
        convergence diagnostics.  The last stage always equals
        ``predict(X)`` exactly.
        """
        check_fitted(self, "trees_")
        X = self._check_predict_X(X)
        compiled = getattr(self, "compiled_", None)
        if compiled is not None:
            return compiled.staged_predict(
                X, self.base_score_, self.learning_rate
            )
        return self._staged_predict_loop(X)

    def _check_predict_X(self, X: np.ndarray) -> np.ndarray:
        X = check_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.n_features_in_}"
            )
        return X

    def _predict_loop(self, X: np.ndarray) -> np.ndarray:
        """Reference per-tree accumulation: the parity oracle for
        ``compiled_`` and the fallback for pre-kernel pickles.  Depth-0
        tables predict like any other tree (see :class:`ObliviousTree`)."""
        prediction = np.full(X.shape[0], self.base_score_)
        for tree in self.trees_:
            prediction += self.learning_rate * tree.predict(X)
        return prediction

    def _staged_predict_loop(self, X: np.ndarray) -> np.ndarray:
        """Reference per-round accumulation matching ``_predict_loop``."""
        prediction = np.full(X.shape[0], self.base_score_)
        stages = np.empty((len(self.trees_), X.shape[0]))
        for i, tree in enumerate(self.trees_):
            prediction = prediction + self.learning_rate * tree.predict(X)
            stages[i] = prediction
        return stages

    @property
    def feature_importances_(self) -> np.ndarray:
        """Normalised level-usage counts per feature across all trees."""
        check_fitted(self, "trees_")
        counts = np.zeros(self.n_features_in_)
        for tree in self.trees_:
            for feature in tree.features:
                counts[feature] += 1.0
        total = counts.sum()
        return counts / total if total > 0 else counts
