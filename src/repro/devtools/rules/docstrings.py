"""REP108 -- docstring coverage for the exported API.

If a name is in ``__all__`` it is public API, and public API without a
docstring is an interface whose contract lives only in the author's
head.  The rule requires:

* a module docstring on every ``src`` module, and
* a docstring on every ``__all__``-exported function/class *defined in
  that module* (re-exports are checked where they are defined).

Constants listed in ``__all__`` are exempt -- assignments cannot carry
docstrings -- and so are ``@overload`` stubs.  Method-level coverage is
deliberately out of scope: ``__all__`` is the exported contract, and
the class docstring owns its methods.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from typing import TYPE_CHECKING

from repro.devtools.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.devtools.engine import ModuleContext
from repro.devtools.rules.base import Rule, dotted_name
from repro.devtools.rules.exports import read_dunder_all

__all__ = ["DocstringCoverageRule"]

_Documentable = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef]


def _has_docstring(node: _Documentable) -> bool:
    return ast.get_docstring(node, clean=False) is not None


def _is_overload_stub(node: ast.AST) -> bool:
    decorators = getattr(node, "decorator_list", [])
    return any(dotted_name(d).split(".")[-1] == "overload" for d in decorators)


class DocstringCoverageRule(Rule):
    """Require docstrings on modules and everything exported in ``__all__``."""

    rule_id = "REP108"
    name = "docstring-coverage"
    summary = "module + every __all__-exported def/class carries a docstring"
    rationale = (
        "the API reference is generated from __all__; an undocumented "
        "export ships a contract nobody wrote down"
    )
    scopes = frozenset({"src"})

    def finish_module(self, context: ModuleContext) -> Iterator[Diagnostic]:
        """Check the module docstring and each exported definition."""
        tree = context.tree
        if tree.body and ast.get_docstring(tree, clean=False) is None:
            yield self.diagnostic(
                tree.body[0],
                context,
                "module has no docstring; state what the module provides "
                "and why it exists",
            )
        _, exported = read_dunder_all(tree)
        exported_set = set(exported)
        for statement in tree.body:
            if not isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if statement.name not in exported_set:
                continue
            if not _has_docstring(statement) and not _is_overload_stub(statement):
                kind = "class" if isinstance(statement, ast.ClassDef) else "function"
                yield self.diagnostic(
                    statement,
                    context,
                    f"exported {kind} '{statement.name}' has no docstring",
                )
