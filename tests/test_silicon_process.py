"""Tests for process variation, aging, and defect models."""

import numpy as np
import pytest

from repro.silicon.aging import AgingModel
from repro.silicon.defects import DefectModel
from repro.silicon.process import ProcessSample, ProcessVariationModel


class TestProcessVariation:
    def test_population_statistics(self):
        model = ProcessVariationModel(vth_sigma_v=0.010)
        sample = model.sample(5000, np.random.default_rng(0))
        assert sample.vth_shift.std() == pytest.approx(0.010, rel=0.1)
        assert abs(sample.vth_shift.mean()) < 0.001
        assert np.median(sample.leakage_factor) == pytest.approx(1.0, rel=0.25)

    def test_fast_silicon_leaks_more(self):
        model = ProcessVariationModel()
        sample = model.sample(5000, np.random.default_rng(1))
        corr = np.corrcoef(sample.vth_shift, np.log(sample.leakage_factor))[0, 1]
        # Default coupling 0.6 implies r ~ -0.29 analytically.
        assert corr < -0.2

    def test_deterministic_given_seed(self):
        model = ProcessVariationModel()
        a = model.sample(50, 7)
        b = model.sample(50, 7)
        np.testing.assert_array_equal(a.vth_shift, b.vth_shift)

    def test_local_vth_combines_global_and_gradient(self):
        sample = ProcessSample(
            vth_shift=np.array([0.01]),
            leff_shift=np.zeros(1),
            leakage_factor=np.ones(1),
            gradient_x=np.array([0.002]),
            gradient_y=np.array([-0.001]),
        )
        local = sample.local_vth(np.array([1.0]), np.array([1.0]))
        assert local[0, 0] == pytest.approx(0.01 + 0.002 - 0.001)

    def test_local_vth_shape(self):
        model = ProcessVariationModel()
        sample = model.sample(10, 0)
        local = sample.local_vth(np.linspace(-1, 1, 7), np.zeros(7))
        assert local.shape == (10, 7)

    def test_mismatch_shape_and_scale(self):
        model = ProcessVariationModel()
        mismatch = model.mismatch(200, 30, 0.002, np.random.default_rng(0))
        assert mismatch.shape == (200, 30)
        assert mismatch.std() == pytest.approx(0.002, rel=0.1)

    def test_sample_validates_inputs(self):
        with pytest.raises(ValueError):
            ProcessVariationModel().sample(0, 0)
        with pytest.raises(ValueError):
            ProcessVariationModel(vth_sigma_v=0.0)

    def test_process_sample_shape_validation(self):
        with pytest.raises(ValueError):
            ProcessSample(
                vth_shift=np.zeros(3),
                leff_shift=np.zeros(2),
                leakage_factor=np.ones(3),
                gradient_x=np.zeros(3),
                gradient_y=np.zeros(3),
            )


class TestAging:
    def test_zero_at_time_zero(self):
        model = AgingModel()
        aged = model.sample_amplitudes(np.zeros(20), np.random.default_rng(0))
        np.testing.assert_array_equal(aged.vth_shift_at(0), 0.0)

    def test_monotone_in_time(self):
        model = AgingModel()
        aged = model.sample_amplitudes(np.zeros(50), np.random.default_rng(0))
        previous = aged.vth_shift_at(0)
        for hours in (24, 48, 168, 504, 1008):
            current = aged.vth_shift_at(hours)
            assert np.all(current >= previous)
            previous = current

    def test_power_law_sublinear_early(self):
        """BTI grows fastest early: half the shift accumulates well before
        half the stress time."""
        model = AgingModel(hci_median_v=1e-9)  # isolate the BTI term
        aged = model.sample_amplitudes(np.zeros(500), np.random.default_rng(0))
        mid = aged.vth_shift_at(504).mean()
        full = aged.vth_shift_at(1008).mean()
        assert mid > 0.5 * full

    def test_median_magnitude_at_reference(self):
        model = AgingModel(bti_median_v=0.018, hci_median_v=0.004)
        aged = model.sample_amplitudes(np.zeros(5000), np.random.default_rng(0))
        median = np.median(aged.vth_shift_at(1008))
        assert median == pytest.approx(0.022, rel=0.15)

    def test_fast_silicon_ages_harder(self):
        model = AgingModel(vth_coupling=0.5)
        vth = np.concatenate([np.full(2000, -0.01), np.full(2000, 0.01)])
        aged = model.sample_amplitudes(vth, np.random.default_rng(0))
        shift = aged.vth_shift_at(1008)
        assert shift[:2000].mean() > shift[2000:].mean()

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            AgingModel(bti_exponent=1.5)
        with pytest.raises(ValueError):
            AgingModel(bti_median_v=0.0)

    def test_negative_hours_rejected(self):
        aged = AgingModel().sample_amplitudes(np.zeros(5), 0)
        with pytest.raises(ValueError):
            aged.vth_shift_at(-1)


class TestDefects:
    def test_defect_rate_approximate(self):
        model = DefectModel(defect_rate=0.05)
        pop = model.sample(20000, np.random.default_rng(0))
        assert pop.n_defective / pop.n_chips == pytest.approx(0.05, abs=0.01)

    def test_healthy_chips_have_zero_severity(self):
        pop = DefectModel().sample(500, np.random.default_rng(1))
        np.testing.assert_array_equal(pop.severity[~pop.mask], 0.0)

    def test_penalty_worst_at_cold(self):
        pop = DefectModel().sample(2000, np.random.default_rng(2))
        cold = pop.vmin_penalty(-45.0, 0).sum()
        room = pop.vmin_penalty(25.0, 0).sum()
        hot = pop.vmin_penalty(125.0, 0).sum()
        assert cold > hot > room

    def test_penalty_grows_with_stress(self):
        pop = DefectModel(growth=0.8).sample(2000, np.random.default_rng(3))
        early = pop.vmin_penalty(25.0, 24).sum()
        late = pop.vmin_penalty(25.0, 1008).sum()
        assert late > early

    def test_monitor_coupling_zero_for_healthy(self):
        pop = DefectModel().sample(300, np.random.default_rng(4))
        coupling = pop.monitor_coupling(np.zeros(3), np.zeros(3))
        np.testing.assert_array_equal(coupling[~pop.mask], 0.0)

    def test_monitor_coupling_decays_with_distance(self):
        model = DefectModel(defect_rate=0.999)
        pop = model.sample(200, np.random.default_rng(5))
        near = pop.monitor_coupling(pop.location[:, 0], pop.location[:, 1])
        far = pop.monitor_coupling(
            pop.location[:, 0] + 3.0, pop.location[:, 1] + 3.0
        )
        defective = pop.mask
        assert np.all(near[defective, np.arange(200)[defective]] >=
                      far[defective, np.arange(200)[defective]])

    def test_unknown_temperature_rejected(self):
        pop = DefectModel().sample(10, 0)
        with pytest.raises(ValueError, match="corner"):
            pop.vmin_penalty(60.0, 0)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            DefectModel(defect_rate=1.0)
