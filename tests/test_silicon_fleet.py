"""Tests for the multi-fab shifted fleet generator."""

import numpy as np
import pytest

from repro.silicon.fleet import (
    CornerDrift,
    FabProfile,
    FleetGenerator,
    ProcessCorner,
    ProductSpec,
)

FAST = dict(read_points=(0,), temperatures=(25.0,))


@pytest.fixture(scope="module")
def fleet() -> FleetGenerator:
    return FleetGenerator(
        products=[ProductSpec("alpha", n_chips=60)],
        fabs=[
            FabProfile(
                "ref",
                ProcessCorner("nominal"),
                drift=CornerDrift(vth_v_per_khour=0.003),
            ),
            FabProfile("new", ProcessCorner("slow", vth_offset_v=0.02)),
        ],
        seed=2024,
    )


def _vmin(lot):
    return lot.dataset.vmin[(25.0, 0)]


class TestValidation:
    def test_requires_products_and_fabs(self):
        with pytest.raises(ValueError, match="product"):
            FleetGenerator(products=[], fabs=[FabProfile("f", ProcessCorner("n"))])
        with pytest.raises(ValueError, match="fab"):
            FleetGenerator(products=[ProductSpec("p")], fabs=[])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            FleetGenerator(
                products=[ProductSpec("p"), ProductSpec("p")],
                fabs=[FabProfile("f", ProcessCorner("n"))],
            )
        with pytest.raises(ValueError, match="duplicate"):
            FleetGenerator(
                products=[ProductSpec("p")],
                fabs=[
                    FabProfile("f", ProcessCorner("n")),
                    FabProfile("f", ProcessCorner("s")),
                ],
            )

    def test_unknown_coordinates_raise(self, fleet):
        with pytest.raises(KeyError, match="unknown product"):
            fleet.lot("nope", "ref", **FAST)
        with pytest.raises(KeyError, match="unknown fab"):
            fleet.lot("alpha", "nope", **FAST)
        with pytest.raises(KeyError, match="unknown product"):
            fleet.design_seed("nope")

    def test_negative_coordinates_raise(self, fleet):
        with pytest.raises(ValueError, match="calendar_hours"):
            fleet.lot("alpha", "ref", calendar_hours=-1, **FAST)
        with pytest.raises(ValueError, match="lot_index"):
            fleet.lot("alpha", "ref", lot_index=-1, **FAST)


class TestDeterminism:
    def test_same_coordinates_reproduce_the_lot(self, fleet):
        a = fleet.lot("alpha", "ref", lot_index=1, **FAST)
        b = fleet.lot("alpha", "ref", lot_index=1, **FAST)
        np.testing.assert_array_equal(_vmin(a), _vmin(b))
        np.testing.assert_array_equal(
            a.dataset.features(0)[0], b.dataset.features(0)[0]
        )

    def test_lot_index_changes_data_not_design(self, fleet):
        a = fleet.lot("alpha", "ref", lot_index=0, **FAST)
        b = fleet.lot("alpha", "ref", lot_index=1, **FAST)
        assert not np.array_equal(_vmin(a), _vmin(b))
        assert a.dataset.features(0)[1] == b.dataset.features(0)[1]

    def test_instrument_design_is_shared_across_fabs(self, fleet):
        """Monitor banks belong to the product: features of a lot from
        either fab are measured by identical instruments, which is the
        premise of every cross-lot covariate comparison."""
        ref = fleet.lot("alpha", "ref", **FAST)
        new = fleet.lot("alpha", "new", **FAST)
        assert ref.dataset.features(0)[1] == new.dataset.features(0)[1]
        assert fleet.design_seed("alpha") == fleet.design_seed("alpha")


class TestShiftPhysics:
    def test_corner_offset_raises_vmin(self, fleet):
        ref = fleet.lot("alpha", "ref", **FAST)
        new = fleet.lot("alpha", "new", **FAST)
        assert _vmin(new).mean() > _vmin(ref).mean() + 0.005

    def test_calendar_drift_raises_vmin_monotonically(self, fleet):
        means = [
            _vmin(fleet.lot("alpha", "ref", calendar_hours=h, **FAST)).mean()
            for h in (0, 3000, 6000)
        ]
        assert means[0] < means[1] < means[2]

    def test_drift_moves_the_corner(self, fleet):
        drifted = fleet.lot("alpha", "ref", calendar_hours=6000, **FAST)
        baseline = fleet.lot("alpha", "ref", calendar_hours=0, **FAST)
        assert drifted.corner.vth_offset_v > baseline.corner.vth_offset_v

    def test_undrifted_fab_ignores_calendar_time(self, fleet):
        early = fleet.lot("alpha", "new", calendar_hours=0, **FAST)
        late = fleet.lot("alpha", "new", calendar_hours=6000, **FAST)
        assert early.corner.vth_offset_v == late.corner.vth_offset_v


class TestLotStructure:
    def test_zones_label_every_chip(self, fleet):
        lot = fleet.lot("alpha", "ref", **FAST)
        zones = lot.zones(3)
        assert zones.shape[0] == _vmin(lot).shape[0]
        assert set(np.unique(zones)) <= {0, 1, 2}

    def test_fleet_returns_one_lot_per_product_fab_pair(self, fleet):
        lots = fleet.fleet(**FAST)
        assert len(lots) == 2
        assert {(lot.product, lot.fab) for lot in lots} == {
            ("alpha", "ref"),
            ("alpha", "new"),
        }

    def test_n_chips_override(self, fleet):
        lot = fleet.lot("alpha", "ref", n_chips=30, **FAST)
        assert _vmin(lot).shape[0] == 30


class TestCornerDrift:
    def test_rejects_non_finite_rates(self):
        with pytest.raises(ValueError, match="finite"):
            CornerDrift(vth_v_per_khour=float("nan"))
        with pytest.raises(ValueError, match="calendar_hours"):
            CornerDrift().applied(ProcessCorner("nominal"), -1.0)

    def test_applied_scales_with_hours(self):
        drift = CornerDrift(vth_v_per_khour=0.002)
        corner = ProcessCorner("nominal")
        assert drift.applied(corner, 0.0).vth_offset_v == pytest.approx(0.0)
        assert drift.applied(corner, 1000.0).vth_offset_v == pytest.approx(
            0.002
        )
