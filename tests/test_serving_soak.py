"""End-to-end soak of the serving stack under injected deployment faults.

One compact :func:`~repro.eval.stress.run_serving_campaign` run covers
the ISSUE's acceptance invariants directly: no unverified artifact is
ever served, zero requests drop across a hot-swap, empirical coverage
stays within tolerance of the promised level, drift triggers at least
one recalibration republication, corruption triggers quarantine, and
every downgrade carries a recorded reason code.
"""

import numpy as np
import pytest

from repro.eval.stress import ServingStressReport, run_serving_campaign
from repro.models import QuantileLinearRegression
from repro.robust import RobustVminFlow

N_PARAMETRIC = 4
N_MONITORS = 8
D = N_PARAMETRIC + N_MONITORS
N_TRAIN = 200


@pytest.fixture(scope="module")
def campaign(tmp_path_factory):
    """One soak campaign shared by the assertion tests below."""
    rng = np.random.default_rng(23)
    X = rng.normal(size=(700, D))
    w = np.concatenate(
        [np.array([2.0, -1.0, 1.5, 1.0]), np.full(N_MONITORS, 0.3)]
    )
    y = X @ w + rng.normal(scale=0.5, size=700)
    flow = RobustVminFlow(
        base_model=QuantileLinearRegression(),
        alpha=0.1,
        random_state=0,
        monitor_min_observations=15,
        monitor_window=30,
    ).fit(
        X[:N_TRAIN],
        y[:N_TRAIN],
        fallback_columns=list(range(N_PARAMETRIC)),
        monitor_columns=list(range(N_PARAMETRIC, D)),
    )
    root = tmp_path_factory.mktemp("soak-registry")
    return run_serving_campaign(
        flow,
        X[N_TRAIN:],
        y[N_TRAIN:],
        root,
        batch_size=20,
        n_clean_batches=2,
        n_crash_batches=2,
        n_swap_batches=3,
        n_drift_batches=8,
        n_recovery_batches=5,
        min_recal_labels=30,
        seed=23,
    )


class TestSoakInvariants:
    def test_campaign_passes_outright(self, campaign):
        assert isinstance(campaign, ServingStressReport)
        assert campaign.ok(), campaign.to_table()

    def test_never_serves_unverified_artifacts(self, campaign):
        assert campaign.unverified_serves == 0

    def test_hot_swap_drops_zero_requests(self, campaign):
        assert campaign.dropped_during_swap == 0

    def test_coverage_within_tolerance(self, campaign):
        assert campaign.coverage >= (
            campaign.target_coverage - campaign.tolerance
        )
        assert campaign.target_coverage == pytest.approx(0.9)

    def test_transient_crashes_were_retried_away(self, campaign):
        # Phase 2 injects a real SIGKILLed worker plus in-process
        # crashes; all of them must have been recovered, not dropped.
        assert campaign.n_retried >= 1
        assert campaign.n_served == campaign.n_requests - campaign.n_overloaded

    def test_drift_triggered_recalibration(self, campaign):
        assert campaign.n_recalibrations >= 1
        # Recalibration republishes, so the registry grew beyond the
        # seed version plus the phase-3 swap target.
        assert campaign.n_versions >= 3

    def test_corruption_was_quarantined(self, campaign):
        assert campaign.n_quarantined >= 1

    def test_every_downgrade_has_a_reason_code(self, campaign):
        assert campaign.downgrades, "soak recorded no downgrades at all"
        assert all(reason for reason, _ in campaign.downgrades)
        reasons = {reason for reason, _ in campaign.downgrades}
        assert "artifact_corrupt" in reasons
        assert "rolled_back" in reasons

    def test_service_ends_ready(self, campaign):
        assert campaign.final_state == "ready"

    def test_report_table_carries_the_audit(self, campaign):
        table = campaign.to_table()
        assert "Serving soak report" in table
        assert "Downgrade audit:" in table
        assert "artifact_corrupt" in table
