"""Tests for the deterministic parallel execution engine (repro.perf.parallel)."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.perf import parallel as parallel_mod
from repro.perf.parallel import (
    effective_n_jobs,
    parallel_map,
    parallel_map_outcomes,
    spawn_seeds,
)
from repro.runtime.retry import PermanentFault, RetryPolicy, TransientFault
from repro.runtime.watchdog import TaskTimeout, check_deadline


# ---------------------------------------------------------------------------
# effective_n_jobs
# ---------------------------------------------------------------------------

class TestEffectiveNJobs:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "8")
        assert effective_n_jobs(3) == 3

    def test_none_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_N_JOBS", raising=False)
        assert effective_n_jobs(None) == 1

    def test_none_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "6")
        assert effective_n_jobs(None) == 6

    def test_empty_environment_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "")
        assert effective_n_jobs(None) == 1

    def test_garbage_environment_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_N_JOBS"):
            effective_n_jobs(None)

    def test_minus_one_uses_cpu_count(self):
        import os

        assert effective_n_jobs(-1) == max(1, os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", [0, -2])
    def test_nonpositive_raises(self, bad):
        with pytest.raises(ValueError):
            effective_n_jobs(bad)


# ---------------------------------------------------------------------------
# spawn_seeds
# ---------------------------------------------------------------------------

class TestSpawnSeeds:
    def test_none_parent_gives_none_children(self):
        assert spawn_seeds(None, 3) == [None, None, None]

    def test_deterministic(self):
        assert spawn_seeds(42, 5) == spawn_seeds(42, 5)

    def test_children_distinct(self):
        seeds = spawn_seeds(7, 8)
        assert len(set(seeds)) == 8

    def test_prefix_stable(self):
        # Growing the worker count must not reshuffle earlier seeds.
        assert spawn_seeds(11, 3) == spawn_seeds(11, 6)[:3]

    def test_different_parents_differ(self):
        assert spawn_seeds(1, 4) != spawn_seeds(2, 4)


# ---------------------------------------------------------------------------
# parallel_map
# ---------------------------------------------------------------------------

def _square(value):
    return value * value


class TestParallelMap:
    def test_ordered_results_serial(self):
        assert parallel_map(_square, range(10), n_jobs=1) == [
            i * i for i in range(10)
        ]

    def test_ordered_results_threads(self):
        assert parallel_map(_square, range(20), n_jobs=4) == [
            i * i for i in range(20)
        ]

    def test_ordered_results_processes(self):
        result = parallel_map(_square, range(6), n_jobs=2, backend="process")
        assert result == [i * i for i in range(6)]

    def test_closures_work_with_threads(self):
        data = np.arange(12.0)

        def pick(index):
            return float(data[index])

        assert parallel_map(pick, range(12), n_jobs=4) == list(map(float, data))

    def test_identical_to_serial(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 3))

        def fit_stub(seed):
            local = np.random.default_rng(seed)
            return float(X.sum() + local.normal())

        seeds = spawn_seeds(123, 8)
        serial = parallel_map(fit_stub, seeds, n_jobs=1)
        threaded = parallel_map(fit_stub, seeds, n_jobs=4)
        assert serial == threaded

    def test_exception_propagates_serial(self):
        def boom(value):
            raise RuntimeError(f"bad item {value}")

        with pytest.raises(RuntimeError, match="bad item"):
            parallel_map(boom, [1], n_jobs=1)

    def test_exception_propagates_parallel(self):
        def maybe_boom(value):
            if value == 3:
                raise ValueError("worker exploded")
            return value

        with pytest.raises(ValueError, match="worker exploded"):
            parallel_map(maybe_boom, range(8), n_jobs=4)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "1")
        calls = []

        def record(value):
            calls.append(value)
            return value

        assert parallel_map(record, range(5)) == list(range(5))
        assert calls == list(range(5))  # serial preserves submission order

    def test_single_item_stays_serial(self, monkeypatch):
        def no_pool(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool created for a single item")

        monkeypatch.setattr(parallel_mod, "ThreadPoolExecutor", no_pool)
        assert parallel_map(_square, [7], n_jobs=4) == [49]

    def test_pool_unavailable_falls_back_to_serial(self, monkeypatch):
        class Unavailable:
            def __init__(self, *args, **kwargs):
                raise OSError("no threads in this sandbox")

        monkeypatch.setattr(parallel_mod, "ThreadPoolExecutor", Unavailable)
        assert parallel_map(_square, range(6), n_jobs=4) == [
            i * i for i in range(6)
        ]

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="backend"):
            parallel_map(_square, range(3), n_jobs=2, backend="rayon")

    def test_empty_items(self):
        assert parallel_map(_square, [], n_jobs=4) == []

    def test_first_failure_in_input_order_raised(self):
        def two_failures(value):
            if value == 2:
                raise KeyError("earlier")
            if value == 5:
                raise IndexError("later")
            return value

        # Task 5 may finish failing before task 2 under a pool; input
        # order, not completion order, decides which error the caller sees.
        with pytest.raises(KeyError, match="earlier"):
            parallel_map(two_failures, range(8), n_jobs=4)


# ---------------------------------------------------------------------------
# parallel_map_outcomes: capture, retries, timeouts
# ---------------------------------------------------------------------------

class _Flaky:
    """Thread-safe per-item failure budget, then success."""

    def __init__(self, failing_items, n_failures=1):
        self.failing = set(failing_items)
        self.n_failures = n_failures
        self.counts = {}
        self.lock = threading.Lock()

    def __call__(self, item):
        with self.lock:
            used = self.counts.get(item, 0)
            if item in self.failing and used < self.n_failures:
                self.counts[item] = used + 1
                raise TransientFault(f"blip on {item}")
        return item * 10


def _cooperative_hang(item):
    if item == 1:
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            check_deadline()
            time.sleep(0.005)
    return item


def _process_hang(item):  # pragma: no cover - runs in worker processes
    if item == 1:
        time.sleep(60)
    return item * 10


class TestParallelMapOutcomes:
    def test_all_success_matches_parallel_map(self):
        outcomes = parallel_map_outcomes(_square, range(6), n_jobs=3)
        assert [o.value for o in outcomes] == [i * i for i in range(6)]
        assert all(o.ok and o.attempts == 1 for o in outcomes)
        assert [o.index for o in outcomes] == list(range(6))

    def test_failures_do_not_discard_siblings(self):
        def boom_on_two(value):
            if value == 2:
                raise ValueError("bad cell")
            return value

        outcomes = parallel_map_outcomes(boom_on_two, range(5), n_jobs=2)
        assert [o.ok for o in outcomes] == [True, True, False, True, True]
        assert isinstance(outcomes[2].error, ValueError)
        assert [o.value for o in outcomes if o.ok] == [0, 1, 3, 4]

    def test_retry_policy_recovers_transient_faults(self):
        fn = _Flaky(failing_items={1, 3}, n_failures=2)
        policy = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)
        outcomes = parallel_map_outcomes(fn, range(5), n_jobs=2, retry_policy=policy)
        assert all(o.ok for o in outcomes)
        assert [o.value for o in outcomes] == [i * 10 for i in range(5)]
        assert [o.attempts for o in outcomes] == [1, 3, 1, 3, 1]

    def test_permanent_fault_not_retried(self):
        def permanent(value):
            raise PermanentFault("unfixable")

        policy = RetryPolicy(max_attempts=5, backoff_base=0.0, jitter=0.0)
        outcomes = parallel_map_outcomes(permanent, [0], retry_policy=policy)
        assert not outcomes[0].ok and outcomes[0].attempts == 1

    def test_retried_results_identical_to_clean_run(self):
        clean = parallel_map_outcomes(_square, range(6), n_jobs=2)
        flaky = _Flaky(failing_items={0, 2, 4}, n_failures=1)

        def flaky_square(item):
            flaky(item)  # raises on the first attempt for selected items
            return item * item

        policy = RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0)
        retried = parallel_map_outcomes(
            flaky_square, range(6), n_jobs=2, retry_policy=policy
        )
        assert [o.value for o in retried] == [o.value for o in clean]

    def test_cooperative_timeout_threads(self):
        outcomes = parallel_map_outcomes(
            _cooperative_hang, range(3), n_jobs=2, timeout=0.2
        )
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok and outcomes[1].timed_out
        assert isinstance(outcomes[1].error, TaskTimeout)

    def test_cooperative_timeout_serial(self):
        outcomes = parallel_map_outcomes(
            _cooperative_hang, range(3), n_jobs=1, timeout=0.2
        )
        assert [o.ok for o in outcomes] == [True, False, True]

    def test_stuck_process_worker_killed_and_requeued(self):
        start = time.monotonic()
        outcomes = parallel_map_outcomes(
            _process_hang, range(4), n_jobs=2, backend="process", timeout=1.0
        )
        elapsed = time.monotonic() - start
        assert elapsed < 30.0  # the 60 s hang was cut short
        assert not outcomes[1].ok and outcomes[1].timed_out
        good = [o for i, o in enumerate(outcomes) if i != 1]
        assert all(o.ok for o in good)
        assert [o.value for o in good] == [0, 20, 30]

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            parallel_map_outcomes(_square, range(3), timeout=0.0)

    def test_empty_items(self):
        assert parallel_map_outcomes(_square, [], n_jobs=4) == []
