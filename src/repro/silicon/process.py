"""Process-variation model for the synthetic chip population.

Each chip carries a small latent state that every downstream measurement
(Vmin, monitors, parametric tests) is a view of:

* ``vth_shift`` -- chip-global threshold-voltage deviation (V).  The
  dominant speed knob: slow (high-Vth) silicon needs more voltage.
* ``leff_shift`` -- normalised effective-channel-length deviation; acts
  like a second, partially independent speed/leakage knob.
* ``leakage_factor`` -- log-normal multiplier on all leakage currents,
  anti-correlated with ``vth_shift`` (fast silicon leaks more).
* ``gradient_x/gradient_y`` -- within-die systematic variation slopes, so
  monitors at different die locations see coherently different silicon.
* ``mismatch(n_sites)`` -- per-site local random mismatch draws.

Amplitudes default to a plausible 5 nm corner (sigma ~ 10 mV global Vth)
and are constructor-tunable for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.models.base import check_random_state

__all__ = ["ProcessSample", "ProcessVariationModel"]


@dataclass(frozen=True)
class ProcessSample:
    """Latent process state of a chip population (arrays over chips)."""

    vth_shift: np.ndarray
    """Global threshold-voltage deviation per chip (V)."""

    leff_shift: np.ndarray
    """Normalised channel-length deviation per chip (unitless, ~N(0,1))."""

    leakage_factor: np.ndarray
    """Log-normal leakage multiplier per chip (unitless, median 1)."""

    gradient_x: np.ndarray
    """Within-die systematic Vth slope along x (V per normalised die unit)."""

    gradient_y: np.ndarray
    """Within-die systematic Vth slope along y (V per normalised die unit)."""

    def __post_init__(self) -> None:
        n = self.vth_shift.shape[0]
        for name in ("leff_shift", "leakage_factor", "gradient_x", "gradient_y"):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise ValueError(
                    f"{name} must have shape ({n},), got {arr.shape}"
                )

    @property
    def n_chips(self) -> int:
        return int(self.vth_shift.shape[0])

    def local_vth(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Systematic Vth at normalised die coordinates, per (chip, site).

        ``x``/``y`` are arrays of shape (n_sites,) in [-1, 1]; the result
        has shape (n_chips, n_sites): global shift plus the chip's planar
        gradient evaluated at each site.
        """
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.shape != y.shape or x.ndim != 1:
            raise ValueError("x and y must be 1-D arrays of equal length")
        return (
            self.vth_shift[:, None]
            + self.gradient_x[:, None] * x[None, :]
            + self.gradient_y[:, None] * y[None, :]
        )


class ProcessVariationModel:
    """Sampler for :class:`ProcessSample` populations.

    Parameters
    ----------
    vth_sigma_v:
        Standard deviation of the global Vth shift (V).
    leff_sigma:
        Standard deviation of the normalised channel-length shift.
    leakage_log_sigma:
        Sigma of the log-normal leakage factor.
    leakage_vth_coupling:
        Strength of the fast-silicon-leaks-more anti-correlation; the
        leakage log-mean shifts by ``-coupling * vth_shift / vth_sigma``.
    gradient_sigma_v:
        Standard deviation of each within-die slope (V per die unit).
    """

    def __init__(
        self,
        vth_sigma_v: float = 0.010,
        leff_sigma: float = 1.0,
        leakage_log_sigma: float = 0.35,
        leakage_vth_coupling: float = 0.6,
        gradient_sigma_v: float = 0.004,
    ) -> None:
        for name, value in (
            ("vth_sigma_v", vth_sigma_v),
            ("leff_sigma", leff_sigma),
            ("leakage_log_sigma", leakage_log_sigma),
            ("gradient_sigma_v", gradient_sigma_v),
        ):
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if leakage_vth_coupling < 0:
            raise ValueError(
                f"leakage_vth_coupling must be >= 0, got {leakage_vth_coupling}"
            )
        self.vth_sigma_v = vth_sigma_v
        self.leff_sigma = leff_sigma
        self.leakage_log_sigma = leakage_log_sigma
        self.leakage_vth_coupling = leakage_vth_coupling
        self.gradient_sigma_v = gradient_sigma_v

    def sample(self, n_chips: int, rng) -> ProcessSample:
        """Draw a population of ``n_chips`` latent states."""
        if n_chips < 1:
            raise ValueError(f"n_chips must be >= 1, got {n_chips}")
        rng = check_random_state(rng)
        vth = rng.normal(0.0, self.vth_sigma_v, size=n_chips)
        leff = rng.normal(0.0, self.leff_sigma, size=n_chips)
        log_leak = rng.normal(0.0, self.leakage_log_sigma, size=n_chips)
        log_leak -= self.leakage_vth_coupling * vth / self.vth_sigma_v * (
            self.leakage_log_sigma / 2.0
        )
        leakage = np.exp(log_leak)
        gx = rng.normal(0.0, self.gradient_sigma_v, size=n_chips)
        gy = rng.normal(0.0, self.gradient_sigma_v, size=n_chips)
        return ProcessSample(
            vth_shift=vth,
            leff_shift=leff,
            leakage_factor=leakage,
            gradient_x=gx,
            gradient_y=gy,
        )

    def mismatch(self, n_chips: int, n_sites: int, sigma_v: float, rng) -> np.ndarray:
        """Per-(chip, site) local random Vth mismatch (V)."""
        if sigma_v < 0:
            raise ValueError(f"sigma_v must be >= 0, got {sigma_v}")
        rng = check_random_state(rng)
        return rng.normal(0.0, sigma_v, size=(n_chips, n_sites))
