"""Tests for the finite-sample conformal quantile (Eq. 7/9 machinery)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calibration import (
    conformal_quantile,
    effective_coverage_level,
    required_calibration_size,
)


class TestConformalQuantile:
    def test_exact_small_case(self):
        # M=9, alpha=0.1: rank = ceil(10*0.9) = 9 -> 9th smallest = max.
        scores = np.arange(1.0, 10.0)
        assert conformal_quantile(scores, 0.1) == 9.0

    def test_rank_formula_mid_alpha(self):
        # M=10, alpha=0.5: rank = ceil(11*0.5) = 6 -> 6th smallest.
        scores = np.arange(10.0)
        assert conformal_quantile(scores, 0.5) == 5.0

    def test_infinite_when_calibration_too_small(self):
        # M=5, alpha=0.1: rank = ceil(6*0.9) = 6 > 5 -> +inf.
        assert conformal_quantile(np.arange(5.0), 0.1) == float("inf")

    def test_unsorted_input_handled(self):
        scores = np.array([3.0, 1.0, 2.0])
        assert conformal_quantile(scores, 0.5) == 2.0

    def test_negative_scores_allowed(self):
        # CQR scores can be negative (band shrinkage).
        scores = np.array([-5.0, -3.0, -2.0, -1.0, 0.5, 1.0, 2.0, 3.0, 4.0])
        assert conformal_quantile(scores, 0.1) == 4.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            conformal_quantile(np.array([]), 0.1)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            conformal_quantile(np.array([1.0, np.nan]), 0.1)

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.5])
    def test_rejects_bad_alpha(self, alpha):
        with pytest.raises(ValueError, match="alpha"):
            conformal_quantile(np.arange(10.0), alpha)

    @given(
        m=st.integers(1, 200),
        alpha=st.floats(0.01, 0.5),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=80)
    def test_rank_property(self, m, alpha, seed):
        """The returned value is the ceil((M+1)(1-alpha))-th order statistic
        whenever that rank exists; at least rank scores are <= it."""
        scores = np.random.default_rng(seed).normal(size=m)
        rank = math.ceil((m + 1) * (1 - alpha))
        q = conformal_quantile(scores, alpha)
        if rank > m:
            assert q == float("inf")
        else:
            assert np.sum(scores <= q) >= rank
            assert q in scores


class TestCoverageArithmetic:
    def test_effective_level_exceeds_nominal(self):
        for m in (9, 29, 100):
            assert effective_coverage_level(m, 0.1) >= 0.9

    def test_effective_level_converges(self):
        assert effective_coverage_level(10_000, 0.1) == pytest.approx(0.9, abs=1e-3)

    def test_effective_level_capped_at_one(self):
        assert effective_coverage_level(3, 0.1) == 1.0

    def test_required_size_at_paper_alpha(self):
        assert required_calibration_size(0.1) == 9

    def test_required_size_matches_finiteness(self):
        for alpha in (0.05, 0.1, 0.25):
            m = required_calibration_size(alpha)
            assert conformal_quantile(np.arange(float(m)), alpha) < float("inf")
            if m > 1:
                assert conformal_quantile(np.arange(float(m - 1)), alpha) == float("inf")


class TestMonteCarloGuarantee:
    def test_split_quantile_covers_fresh_point(self):
        """Core conformal property: for iid scores, a fresh score falls at
        or below the conformal quantile with probability >= 1 - alpha."""
        rng = np.random.default_rng(42)
        alpha = 0.2
        hits = 0
        trials = 3000
        for _ in range(trials):
            scores = rng.exponential(size=20)
            fresh = rng.exponential()
            if fresh <= conformal_quantile(scores, alpha):
                hits += 1
        coverage = hits / trials
        # Expected >= 0.8; binomial std ~ 0.007 -> allow 4 sigma below.
        assert coverage >= 0.8 - 0.03
