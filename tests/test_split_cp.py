"""Tests for split conformal prediction."""

import numpy as np
import pytest

from repro.core.split_cp import SplitConformalRegressor, split_train_calibration
from repro.models.linear import LinearRegression
from repro.models.tree import DecisionTreeRegressor


class TestSplitHelper:
    def test_disjoint_and_complete(self, rng):
        train, cal = split_train_calibration(100, 0.25, rng)
        assert len(set(train) & set(cal)) == 0
        assert len(train) + len(cal) == 100
        assert len(cal) == 25

    def test_at_least_one_each_side(self, rng):
        train, cal = split_train_calibration(2, 0.01, rng)
        assert len(train) == 1 and len(cal) == 1

    def test_rejects_bad_fraction(self, rng):
        with pytest.raises(ValueError):
            split_train_calibration(10, 1.0, rng)

    def test_rejects_tiny_population(self, rng):
        with pytest.raises(ValueError):
            split_train_calibration(1, 0.5, rng)


class TestSplitConformal:
    def test_constant_width_by_construction(self, linear_data):
        X, y, *_ = linear_data
        cp = SplitConformalRegressor(LinearRegression(), alpha=0.1, random_state=0)
        cp.fit(X, y)
        intervals = cp.predict_interval(X)
        np.testing.assert_allclose(intervals.width, intervals.width[0])
        assert intervals.width[0] == pytest.approx(2 * cp.quantile_)

    def test_marginal_coverage_monte_carlo(self):
        """Average coverage over many (train, test) draws >= 1 - alpha."""
        rng = np.random.default_rng(7)
        coverages = []
        for _ in range(40):
            X = rng.normal(size=(120, 3))
            y = X[:, 0] + rng.normal(scale=0.5, size=120)
            cp = SplitConformalRegressor(
                LinearRegression(), alpha=0.2, random_state=int(rng.integers(1e6))
            ).fit(X[:80], y[:80])
            coverages.append(cp.predict_interval(X[80:]).coverage(y[80:]))
        assert np.mean(coverages) >= 0.8 - 0.02

    def test_point_prediction_delegates(self, linear_data):
        X, y, *_ = linear_data
        cp = SplitConformalRegressor(LinearRegression(), random_state=0).fit(X, y)
        assert cp.score(X, y) > 0.9

    def test_coverage_holds_with_bad_model(self, rng):
        """The guarantee is model-agnostic: even a useless model covers."""
        X = rng.normal(size=(400, 2))
        y = np.sin(5 * X[:, 0]) + rng.normal(scale=0.1, size=400)
        cp = SplitConformalRegressor(
            DecisionTreeRegressor(max_depth=1), alpha=0.1, random_state=0
        ).fit(X[:300], y[:300])
        coverage = cp.predict_interval(X[300:]).coverage(y[300:])
        assert coverage >= 0.8

    def test_difficulty_estimator_adapts_width(self, hetero_data):
        X, y = hetero_data
        cp = SplitConformalRegressor(
            LinearRegression(),
            alpha=0.1,
            difficulty_estimator=DecisionTreeRegressor(max_depth=3),
            random_state=0,
        ).fit(X[:450], y[:450])
        intervals = cp.predict_interval(X[450:])
        width = intervals.width
        assert np.std(width) > 0  # adaptive, not constant
        # Wider where the true noise is larger (x0 high end).
        noisy = X[450:, 0] > 1.0
        assert width[noisy].mean() > width[~noisy].mean()
        assert intervals.coverage(y[450:]) >= 0.8

    def test_template_unfitted_after_use(self, linear_data):
        X, y, *_ = linear_data
        template = LinearRegression()
        SplitConformalRegressor(template, random_state=0).fit(X, y)
        assert template.coef_ is None

    def test_infinite_quantile_raises_at_predict(self, rng):
        X = rng.normal(size=(12, 2))
        y = rng.normal(size=12)
        # 25% of 12 -> 3 calibration points, too few for alpha=0.05.
        cp = SplitConformalRegressor(
            LinearRegression(), alpha=0.05, random_state=0
        ).fit(X, y)
        with pytest.raises(RuntimeError, match="too small"):
            cp.predict_interval(X)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            SplitConformalRegressor(LinearRegression(), alpha=1.0)

    def test_deterministic_given_seed(self, linear_data):
        X, y, *_ = linear_data
        a = SplitConformalRegressor(LinearRegression(), random_state=3).fit(X, y)
        b = SplitConformalRegressor(LinearRegression(), random_state=3).fit(X, y)
        assert a.quantile_ == b.quantile_
