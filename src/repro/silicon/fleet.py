"""Multi-product, multi-fab fleet generation with process-corner drift.

A single :class:`~repro.silicon.dataset.SiliconDataset` lot is one
product from one fab at one moment -- exactly the exchangeable world
where split CP/CQR guarantees hold.  Real fleets are not that world:
the same design is fabbed at multiple sites with distinct process
corners, corners drift over calendar time as a line ages or re-centres,
and each fab has its own wafer-level signature.  This module makes those
violations *generatable and seeded* so the shift defense layer
(:mod:`repro.shift`, :mod:`repro.serve.shiftguard`,
:func:`repro.eval.stress.run_shift_campaign`) can be exercised against
known ground truth.

The shift mechanism is deliberately physical rather than an abstract
feature perturbation: a :class:`ProcessCorner` offsets the latent
process state (global Vth, channel length, leakage) that *every*
monitor and the Vmin label are views of, so a fab change moves the
joint feature/label distribution coherently -- covariate shift with the
conditional Vmin law essentially preserved, which is precisely the
regime weighted conformal repair targets.

Seeding is hierarchical: one fleet seed plus the (product, fab,
calendar-time, lot) coordinates derive each lot's seed through
``np.random.SeedSequence``, so any lot is reproducible in isolation and
adding lots never reshuffles existing ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.silicon.constants import (
    N_CHIPS_DEFAULT,
    READ_POINTS_HOURS,
    TEMPERATURES_C,
)
from repro.silicon.dataset import SiliconDataset
from repro.silicon.process import ProcessSample, ProcessVariationModel
from repro.silicon.wafer import WaferLayout, WaferModel

__all__ = [
    "CorneredProcessModel",
    "CornerDrift",
    "FabProfile",
    "FleetGenerator",
    "FleetLot",
    "ProcessCorner",
    "ProductSpec",
]


@dataclass(frozen=True)
class ProcessCorner:
    """Systematic offset of a fab's process centre from nominal.

    Offsets add to the latent state of every chip the fab produces:
    ``vth_offset_v`` shifts the global threshold voltage (the dominant
    Vmin knob; the nominal population sigma is ~10 mV, so 0.02 V is a
    two-sigma corner), ``leff_offset`` shifts the normalised channel
    length, and ``leakage_log_offset`` scales leakage by its exponent.
    """

    name: str
    vth_offset_v: float = 0.0
    leff_offset: float = 0.0
    leakage_log_offset: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("corner name must be non-empty")
        for attr in ("vth_offset_v", "leff_offset", "leakage_log_offset"):
            if not np.isfinite(getattr(self, attr)):
                raise ValueError(f"{attr} must be finite")


@dataclass(frozen=True)
class CornerDrift:
    """Linear calendar-time drift of a process corner (per 1000 hours).

    Models a line slowly walking off centre between re-qualifications.
    Rates are per kilo-hour of *calendar* time (fab time, not device
    field time -- a lot fabbed later is shifted further, whatever its
    own age).
    """

    vth_v_per_khour: float = 0.0
    leff_per_khour: float = 0.0
    leakage_log_per_khour: float = 0.0

    def __post_init__(self) -> None:
        for attr in ("vth_v_per_khour", "leff_per_khour", "leakage_log_per_khour"):
            if not np.isfinite(getattr(self, attr)):
                raise ValueError(f"{attr} must be finite")

    def applied(self, corner: ProcessCorner, calendar_hours: float) -> ProcessCorner:
        """The corner as it stands after ``calendar_hours`` of drift."""
        if not (np.isfinite(calendar_hours) and calendar_hours >= 0):
            raise ValueError(
                f"calendar_hours must be finite and >= 0, got {calendar_hours}"
            )
        khours = calendar_hours / 1000.0
        return replace(
            corner,
            vth_offset_v=corner.vth_offset_v + self.vth_v_per_khour * khours,
            leff_offset=corner.leff_offset + self.leff_per_khour * khours,
            leakage_log_offset=(
                corner.leakage_log_offset + self.leakage_log_per_khour * khours
            ),
        )


class CorneredProcessModel(ProcessVariationModel):
    """A :class:`ProcessVariationModel` recentred on a process corner.

    Random variation (sigmas, couplings, gradients) is inherited from
    the base model unchanged; only the population *centre* moves.  The
    corner therefore shifts the marginal feature distribution while
    leaving the physics that maps latent state to monitors and Vmin
    untouched -- covariate shift, not concept drift.

    Parameters
    ----------
    corner:
        The systematic offsets to apply.
    base:
        Variation amplitudes to inherit; a default
        :class:`ProcessVariationModel` when ``None``.
    """

    def __init__(
        self,
        corner: ProcessCorner,
        base: Optional[ProcessVariationModel] = None,
    ) -> None:
        base = base if base is not None else ProcessVariationModel()
        super().__init__(
            vth_sigma_v=base.vth_sigma_v,
            leff_sigma=base.leff_sigma,
            leakage_log_sigma=base.leakage_log_sigma,
            leakage_vth_coupling=base.leakage_vth_coupling,
            gradient_sigma_v=base.gradient_sigma_v,
        )
        self.corner = corner

    def sample(self, n_chips: int, rng) -> ProcessSample:
        """Draw from the base model, then recentre on the corner."""
        nominal = super().sample(n_chips, rng)
        return ProcessSample(
            vth_shift=nominal.vth_shift + self.corner.vth_offset_v,
            leff_shift=nominal.leff_shift + self.corner.leff_offset,
            leakage_factor=(
                nominal.leakage_factor * np.exp(self.corner.leakage_log_offset)
            ),
            gradient_x=nominal.gradient_x,
            gradient_y=nominal.gradient_y,
        )


@dataclass(frozen=True)
class FabProfile:
    """One fabrication site: a process corner, its drift, its wafers."""

    name: str
    corner: ProcessCorner
    drift: CornerDrift = field(default_factory=CornerDrift)
    wafer_model: Optional[WaferModel] = None
    """Site wafer signature; a default :class:`WaferModel` when ``None``."""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("fab name must be non-empty")

    def corner_at(self, calendar_hours: float) -> ProcessCorner:
        """The fab's effective corner after calendar-time drift."""
        return self.drift.applied(self.corner, calendar_hours)


@dataclass(frozen=True)
class ProductSpec:
    """One product line: base process variation and lot size."""

    name: str
    process: Optional[ProcessVariationModel] = None
    """Nominal variation amplitudes; package default when ``None``."""

    n_chips: int = N_CHIPS_DEFAULT

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("product name must be non-empty")
        if self.n_chips < 2:
            raise ValueError(f"n_chips must be >= 2, got {self.n_chips}")


@dataclass(frozen=True)
class FleetLot:
    """One generated lot: the dataset plus its fleet coordinates."""

    product: str
    fab: str
    calendar_hours: int
    lot_index: int
    corner: ProcessCorner
    """The *drifted* corner the lot was actually fabbed at."""

    seed: int
    dataset: SiliconDataset
    wafer_layout: WaferLayout

    def zones(self, n_rings: int = 3) -> np.ndarray:
        """Wafer ring-zone label per chip (the Mondrian taxonomy)."""
        if self.dataset.wafer is None:
            raise RuntimeError("lot was generated without wafer provenance")
        return self.dataset.wafer.zone(self.wafer_layout, n_rings)


class FleetGenerator:
    """Seeded generator of shifted lots across products, fabs, and time.

    Parameters
    ----------
    products:
        Product lines; names must be unique.
    fabs:
        Fabrication sites; names must be unique.  The first fab is
        conventionally the reference site models are trained on.
    seed:
        Fleet master seed.  Lot seeds derive from it and the lot's
        (product, fab, calendar-time, lot-index) coordinates, so every
        lot is individually reproducible.

    Examples
    --------
    >>> fleet = FleetGenerator(
    ...     products=[ProductSpec("alpha")],
    ...     fabs=[
    ...         FabProfile("ref", ProcessCorner("nominal")),
    ...         FabProfile("new", ProcessCorner("slow", vth_offset_v=0.02)),
    ...     ],
    ...     seed=7,
    ... )
    >>> reference = fleet.lot("alpha", "ref")
    >>> shifted = fleet.lot("alpha", "new")  # same physics, moved corner
    """

    def __init__(
        self,
        products: Sequence[ProductSpec],
        fabs: Sequence[FabProfile],
        seed: int = 0,
    ) -> None:
        products = list(products)
        fabs = list(fabs)
        if not products:
            raise ValueError("at least one product is required")
        if not fabs:
            raise ValueError("at least one fab is required")
        product_names = [p.name for p in products]
        fab_names = [f.name for f in fabs]
        if len(set(product_names)) != len(product_names):
            raise ValueError(f"duplicate product names in {product_names}")
        if len(set(fab_names)) != len(fab_names):
            raise ValueError(f"duplicate fab names in {fab_names}")
        self.products: Dict[str, ProductSpec] = {p.name: p for p in products}
        self.fabs: Dict[str, FabProfile] = {f.name: f for f in fabs}
        self._product_index = {name: i for i, name in enumerate(product_names)}
        self._fab_index = {name: i for i, name in enumerate(fab_names)}
        self.seed = int(seed)

    def _lot_seed(
        self, product: str, fab: str, calendar_hours: int, lot_index: int
    ) -> int:
        sequence = np.random.SeedSequence(
            [
                self.seed,
                self._product_index[product],
                self._fab_index[fab],
                int(calendar_hours),
                int(lot_index),
            ]
        )
        return int(sequence.generate_state(1)[0])

    def design_seed(self, product_name: str) -> int:
        """The product's instrument-design seed, shared by all its lots.

        Monitor and parametric bank designs are part of the product, not
        the lot: every lot of ``product_name`` -- whatever its fab,
        calendar time, or index -- is measured by identical instruments,
        so feature columns are comparable across lots (the premise of
        every covariate-shift comparison in :mod:`repro.shift`).
        """
        if product_name not in self.products:
            raise KeyError(
                f"unknown product {product_name!r}; have {sorted(self.products)}"
            )
        sequence = np.random.SeedSequence(
            [self.seed, self._product_index[product_name]]
        )
        return int(sequence.generate_state(1)[0])

    def lot(
        self,
        product_name: str,
        fab_name: str,
        calendar_hours: int = 0,
        lot_index: int = 0,
        n_chips: Optional[int] = None,
        read_points: Tuple[int, ...] = READ_POINTS_HOURS,
        temperatures: Tuple[float, ...] = TEMPERATURES_C,
    ) -> FleetLot:
        """Generate one lot of ``product_name`` fabbed at ``fab_name``.

        ``calendar_hours`` is the fab-calendar time of fabrication (it
        selects the drifted corner and a distinct seed); ``lot_index``
        distinguishes same-coordinate lots, so exchangeable control data
        is one index increment away from the training lot.
        """
        if product_name not in self.products:
            raise KeyError(
                f"unknown product {product_name!r}; have {sorted(self.products)}"
            )
        if fab_name not in self.fabs:
            raise KeyError(f"unknown fab {fab_name!r}; have {sorted(self.fabs)}")
        if calendar_hours < 0:
            raise ValueError(f"calendar_hours must be >= 0, got {calendar_hours}")
        if lot_index < 0:
            raise ValueError(f"lot_index must be >= 0, got {lot_index}")
        product = self.products[product_name]
        fab = self.fabs[fab_name]
        corner = fab.corner_at(calendar_hours)
        process = CorneredProcessModel(corner, base=product.process)
        wafer_model = fab.wafer_model if fab.wafer_model is not None else WaferModel()
        seed = self._lot_seed(product_name, fab_name, calendar_hours, lot_index)
        dataset = SiliconDataset.generate(
            n_chips=n_chips if n_chips is not None else product.n_chips,
            seed=seed,
            process_model=process,
            wafer_model=wafer_model,
            read_points=read_points,
            temperatures=temperatures,
            design_seed=self.design_seed(product_name),
        )
        return FleetLot(
            product=product_name,
            fab=fab_name,
            calendar_hours=int(calendar_hours),
            lot_index=int(lot_index),
            corner=corner,
            seed=seed,
            dataset=dataset,
            wafer_layout=wafer_model.layout,
        )

    def fleet(
        self,
        calendar_hours: int = 0,
        lot_index: int = 0,
        n_chips: Optional[int] = None,
        read_points: Tuple[int, ...] = READ_POINTS_HOURS,
        temperatures: Tuple[float, ...] = TEMPERATURES_C,
    ) -> List[FleetLot]:
        """One lot per (product, fab) pair at the given calendar time."""
        return [
            self.lot(
                product_name,
                fab_name,
                calendar_hours=calendar_hours,
                lot_index=lot_index,
                n_chips=n_chips,
                read_points=read_points,
                temperatures=temperatures,
            )
            for product_name in self.products
            for fab_name in self.fabs
        ]
