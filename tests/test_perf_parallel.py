"""Tests for the deterministic parallel execution engine (repro.perf.parallel)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf import parallel as parallel_mod
from repro.perf.parallel import effective_n_jobs, parallel_map, spawn_seeds


# ---------------------------------------------------------------------------
# effective_n_jobs
# ---------------------------------------------------------------------------

class TestEffectiveNJobs:
    def test_explicit_value_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "8")
        assert effective_n_jobs(3) == 3

    def test_none_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_N_JOBS", raising=False)
        assert effective_n_jobs(None) == 1

    def test_none_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "6")
        assert effective_n_jobs(None) == 6

    def test_empty_environment_is_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "")
        assert effective_n_jobs(None) == 1

    def test_garbage_environment_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_N_JOBS"):
            effective_n_jobs(None)

    def test_minus_one_uses_cpu_count(self):
        import os

        assert effective_n_jobs(-1) == max(1, os.cpu_count() or 1)

    @pytest.mark.parametrize("bad", [0, -2])
    def test_nonpositive_raises(self, bad):
        with pytest.raises(ValueError):
            effective_n_jobs(bad)


# ---------------------------------------------------------------------------
# spawn_seeds
# ---------------------------------------------------------------------------

class TestSpawnSeeds:
    def test_none_parent_gives_none_children(self):
        assert spawn_seeds(None, 3) == [None, None, None]

    def test_deterministic(self):
        assert spawn_seeds(42, 5) == spawn_seeds(42, 5)

    def test_children_distinct(self):
        seeds = spawn_seeds(7, 8)
        assert len(set(seeds)) == 8

    def test_prefix_stable(self):
        # Growing the worker count must not reshuffle earlier seeds.
        assert spawn_seeds(11, 3) == spawn_seeds(11, 6)[:3]

    def test_different_parents_differ(self):
        assert spawn_seeds(1, 4) != spawn_seeds(2, 4)


# ---------------------------------------------------------------------------
# parallel_map
# ---------------------------------------------------------------------------

def _square(value):
    return value * value


class TestParallelMap:
    def test_ordered_results_serial(self):
        assert parallel_map(_square, range(10), n_jobs=1) == [
            i * i for i in range(10)
        ]

    def test_ordered_results_threads(self):
        assert parallel_map(_square, range(20), n_jobs=4) == [
            i * i for i in range(20)
        ]

    def test_ordered_results_processes(self):
        result = parallel_map(_square, range(6), n_jobs=2, backend="process")
        assert result == [i * i for i in range(6)]

    def test_closures_work_with_threads(self):
        data = np.arange(12.0)

        def pick(index):
            return float(data[index])

        assert parallel_map(pick, range(12), n_jobs=4) == list(map(float, data))

    def test_identical_to_serial(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 3))

        def fit_stub(seed):
            local = np.random.default_rng(seed)
            return float(X.sum() + local.normal())

        seeds = spawn_seeds(123, 8)
        serial = parallel_map(fit_stub, seeds, n_jobs=1)
        threaded = parallel_map(fit_stub, seeds, n_jobs=4)
        assert serial == threaded

    def test_exception_propagates_serial(self):
        def boom(value):
            raise RuntimeError(f"bad item {value}")

        with pytest.raises(RuntimeError, match="bad item"):
            parallel_map(boom, [1], n_jobs=1)

    def test_exception_propagates_parallel(self):
        def maybe_boom(value):
            if value == 3:
                raise ValueError("worker exploded")
            return value

        with pytest.raises(ValueError, match="worker exploded"):
            parallel_map(maybe_boom, range(8), n_jobs=4)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_N_JOBS", "1")
        calls = []

        def record(value):
            calls.append(value)
            return value

        assert parallel_map(record, range(5)) == list(range(5))
        assert calls == list(range(5))  # serial preserves submission order

    def test_single_item_stays_serial(self, monkeypatch):
        def no_pool(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool created for a single item")

        monkeypatch.setattr(parallel_mod, "ThreadPoolExecutor", no_pool)
        assert parallel_map(_square, [7], n_jobs=4) == [49]

    def test_pool_unavailable_falls_back_to_serial(self, monkeypatch):
        class Unavailable:
            def __init__(self, *args, **kwargs):
                raise OSError("no threads in this sandbox")

        monkeypatch.setattr(parallel_mod, "ThreadPoolExecutor", Unavailable)
        assert parallel_map(_square, range(6), n_jobs=4) == [
            i * i for i in range(6)
        ]

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="backend"):
            parallel_map(_square, range(3), n_jobs=2, backend="rayon")

    def test_empty_items(self):
        assert parallel_map(_square, [], n_jobs=4) == []
