"""Preprocessing transformers used across the prediction flow.

Parametric ATE data mixes units spanning many decades (nA leakage next to
mA supply currents), so linear/GP/NN models are preceded by
standardisation; dead channels (constant columns, e.g. disabled monitors)
are dropped before any correlation-based selection.  All transformers
follow the ``fit`` / ``transform`` / ``fit_transform`` convention and can
be composed with :class:`Pipeline`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ConstantFeatureDropper", "Pipeline", "StandardScaler"]


class StandardScaler:
    """Standardise features to zero mean and unit variance.

    Zero-variance columns are mapped to exactly zero (their mean is still
    subtracted) instead of dividing by zero.
    """

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: Optional[np.ndarray] = None) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std == 0.0, 1.0, std)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"X must be 2-D with {self.mean_.shape[0]} columns, got {X.shape}"
            )
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("StandardScaler is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return X * self.scale_ + self.mean_

    def fit_transform(self, X: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        return self.fit(X, y).transform(X)


class ConstantFeatureDropper:
    """Remove columns whose training-set variance is (near) zero.

    ``tolerance`` is an absolute standard-deviation threshold; the default
    keeps anything that moves at all, dropping only truly dead channels.
    """

    def __init__(self, tolerance: float = 0.0) -> None:
        if tolerance < 0:
            raise ValueError(f"tolerance must be >= 0, got {tolerance}")
        self.tolerance = tolerance
        self.kept_: Optional[np.ndarray] = None

    def fit(
        self, X: np.ndarray, y: Optional[np.ndarray] = None
    ) -> "ConstantFeatureDropper":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        std = X.std(axis=0)
        self.kept_ = np.flatnonzero(std > self.tolerance)
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.kept_ is None:
            raise RuntimeError("ConstantFeatureDropper is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X must be 2-D with {self.n_features_in_} columns, got {X.shape}"
            )
        return X[:, self.kept_]

    def fit_transform(self, X: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        return self.fit(X, y).transform(X)


class Pipeline:
    """Minimal transformer/estimator chain.

    All steps but the last must expose ``fit``/``transform``; the last step
    may be a transformer or an estimator (``fit``/``predict``).  The
    pipeline itself then mirrors whichever interface the last step has.
    """

    def __init__(self, steps: Sequence[Tuple[str, object]]) -> None:
        if not steps:
            raise ValueError("Pipeline needs at least one step")
        names = [name for name, _ in steps]
        if len(set(names)) != len(names):
            raise ValueError(f"step names must be unique, got {names}")
        self.steps = list(steps)

    def _transformers(self) -> List[object]:
        return [step for _, step in self.steps[:-1]]

    @property
    def final_step(self) -> object:
        return self.steps[-1][1]

    def fit(self, X: np.ndarray, y: Optional[np.ndarray] = None) -> "Pipeline":
        for transformer in self._transformers():
            X = _fit_transform_step(transformer, X, y)
        final = self.final_step
        if y is not None and hasattr(final, "predict"):
            final.fit(X, y)
        else:
            _fit_step(final, X, y)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        for transformer in self._transformers():
            X = transformer.transform(X)
        final = self.final_step
        if not hasattr(final, "transform"):
            raise TypeError("final pipeline step has no transform()")
        return final.transform(X)

    def predict(self, X: np.ndarray) -> np.ndarray:
        for transformer in self._transformers():
            X = transformer.transform(X)
        final = self.final_step
        if not hasattr(final, "predict"):
            raise TypeError("final pipeline step has no predict()")
        return final.predict(X)

    def fit_transform(self, X: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        self.fit(X, y)
        return self.transform(X)


def _fit_step(step: object, X: np.ndarray, y: Optional[np.ndarray]) -> None:
    try:
        step.fit(X, y)
    except TypeError:
        step.fit(X)


def _fit_transform_step(
    step: object, X: np.ndarray, y: Optional[np.ndarray]
) -> np.ndarray:
    _fit_step(step, X, y)
    return step.transform(X)
