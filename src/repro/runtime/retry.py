"""Deterministic retry policies and the transient/permanent fault taxonomy.

A cross-validation grid of the paper (model x alpha x seed cells) dies
today on the first worker exception, even when the failure is a blip --
an exhausted file descriptor, a killed worker process, a cooperative
timeout.  This module defines the vocabulary the execution runtime uses
to tell those blips apart from real bugs and to re-run them on a
*deterministic* schedule:

* :class:`TransientFault` / :class:`PermanentFault` -- the taxonomy.
  Transient faults (and their subclasses, e.g.
  :class:`~repro.runtime.watchdog.TaskTimeout`) are worth retrying;
  permanent faults are never retried no matter what the policy allows.
  The fault injectors of :mod:`repro.robust.faults` raise exactly these
  types, so stress campaigns exercise the same code path as production
  failures.
* :class:`RetryPolicy` -- max attempts, exponential backoff with
  *seeded* jitter, and an exception allowlist.  The backoff schedule for
  a task is a pure function of ``(policy.seed, task_key)``: two runs of
  the same grid sleep the same amounts, in keeping with the repository's
  reproducibility contract (jitter still decorrelates *different* tasks
  so retries do not stampede).
* :func:`call_with_retry` / :func:`run_attempts` -- the retry loop
  itself, usable directly or through
  :func:`repro.perf.parallel.parallel_map`.

Delays only shape *when* work re-runs, never *what* it computes, so a
retried grid is bit-identical to a clean one -- the test suite asserts
this end to end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple, Type, TypeVar

import numpy as np

__all__ = [
    "Attempt",
    "PermanentFault",
    "RetryPolicy",
    "TransientFault",
    "call_with_retry",
    "run_attempts",
]

R = TypeVar("R")


class TransientFault(RuntimeError):
    """A failure that is expected to succeed on re-execution.

    Raise (or subclass) this for infrastructure-shaped problems: a
    killed worker, a timed-out task, a dropped connection.  The default
    :class:`RetryPolicy` retries exactly this family and nothing else,
    so genuine bugs (``ValueError`` from bad data, shape mismatches)
    still fail fast.
    """


class PermanentFault(RuntimeError):
    """A failure that re-execution cannot fix.

    Never retried, even by a policy whose ``retry_on`` allowlist would
    otherwise match -- the taxonomy beats the configuration.
    """


@dataclass(frozen=True)
class Attempt:
    """Outcome of :func:`run_attempts`: the value or the final error.

    ``attempts`` counts executions actually made (1 = first try
    succeeded).  Exactly one of ``value`` / ``error`` is meaningful,
    discriminated by ``ok``.
    """

    value: Optional[object]
    error: Optional[BaseException]
    attempts: int

    @property
    def ok(self) -> bool:
        """Whether the call eventually succeeded."""
        return self.error is None

    def unwrap(self) -> object:
        """Return the value, or re-raise the final error."""
        if self.error is not None:
            raise self.error
        return self.value


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential-backoff retry schedule.

    Parameters
    ----------
    max_attempts:
        Total executions allowed (1 = no retries).
    backoff_base:
        Delay before the first retry, in seconds.
    backoff_factor:
        Multiplier applied to the delay after every retry.
    backoff_max:
        Ceiling on any single delay, in seconds.
    jitter:
        Fractional jitter: each delay is scaled by a factor drawn
        uniformly from ``[1, 1 + jitter)`` using a generator seeded from
        ``(seed, task_key)`` -- deterministic per task, decorrelated
        across tasks.  ``0`` disables jitter entirely.
    seed:
        Base seed for the jitter stream.
    retry_on:
        Exception types worth retrying.  :class:`PermanentFault` is
        never retried regardless of this allowlist.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    retry_on: Tuple[Type[BaseException], ...] = field(
        default=(TransientFault,)
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_base < 0:
            raise ValueError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max < 0:
            raise ValueError(
                f"backoff_max must be >= 0, got {self.backoff_max}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        for exc in self.retry_on:
            if not (isinstance(exc, type) and issubclass(exc, BaseException)):
                raise TypeError(
                    f"retry_on entries must be exception types, got {exc!r}"
                )

    def should_retry(self, error: BaseException) -> bool:
        """Whether ``error`` is worth another attempt under this policy."""
        if isinstance(error, PermanentFault):
            return False
        return isinstance(error, tuple(self.retry_on))

    def delays(self, task_key: int = 0) -> Tuple[float, ...]:
        """The full backoff schedule for one task: ``max_attempts - 1`` delays.

        A pure function of ``(self.seed, task_key)`` -- calling it twice
        returns the same tuple, which is what makes retried runs
        reproducible (and testable) down to their sleep pattern.
        """
        n_delays = self.max_attempts - 1
        if n_delays == 0:
            return ()
        if self.jitter > 0.0:
            entropy = (int(self.seed), abs(int(task_key)))
            rng = np.random.default_rng(np.random.SeedSequence(entropy))
            factors = 1.0 + self.jitter * rng.uniform(size=n_delays)
        else:
            factors = np.ones(n_delays)
        delays = []
        delay = float(self.backoff_base)
        for i in range(n_delays):
            delays.append(min(delay, self.backoff_max) * float(factors[i]))
            delay *= self.backoff_factor
        return tuple(delays)


AttemptRunner = Callable[[], object]
SleepFn = Callable[[float], None]


def run_attempts(
    fn: AttemptRunner,
    policy: Optional[RetryPolicy] = None,
    task_key: int = 0,
    sleep: Optional[SleepFn] = None,
) -> Attempt:
    """Run ``fn`` under ``policy``, capturing the outcome instead of raising.

    ``fn`` takes no arguments (close over the work item).  With
    ``policy=None`` the call runs exactly once.  ``sleep`` is injectable
    for tests; it defaults to :func:`time.sleep`.

    Returns an :class:`Attempt` -- the caller decides whether to unwrap
    (raise) or to record the failure and keep going, which is how
    :func:`repro.perf.parallel.parallel_map_outcomes` keeps one bad cell
    from discarding its siblings.
    """
    do_sleep = time.sleep if sleep is None else sleep
    max_attempts = 1 if policy is None else policy.max_attempts
    delays = () if policy is None else policy.delays(task_key)
    attempt = 0
    while True:
        attempt += 1
        try:
            return Attempt(value=fn(), error=None, attempts=attempt)
        except Exception as error:  # noqa: BLE001 - outcome capture by design
            exhausted = attempt >= max_attempts
            if exhausted or policy is None or not policy.should_retry(error):
                return Attempt(value=None, error=error, attempts=attempt)
            delay = delays[attempt - 1]
            if delay > 0.0:
                do_sleep(delay)


def call_with_retry(
    fn: AttemptRunner,
    policy: Optional[RetryPolicy] = None,
    task_key: int = 0,
    sleep: Optional[SleepFn] = None,
) -> object:
    """Run ``fn`` under ``policy`` and return its value.

    The raising twin of :func:`run_attempts`: when every attempt fails
    the *final* exception propagates unchanged, so existing ``except``
    clauses keep working.
    """
    return run_attempts(fn, policy=policy, task_key=task_key, sleep=sleep).unwrap()
