"""Tests for metrics, cross-validation, and reporting."""

import numpy as np
import pytest

from repro.core.intervals import PredictionIntervals
from repro.eval.crossval import (
    KFold,
    cross_validate_intervals,
    cross_validate_point,
)
from repro.eval.metrics import (
    coverage_width_criterion,
    empirical_coverage,
    mean_interval_width,
    pinball_score,
    r2_score,
    rmse,
)
from repro.eval.reporting import format_series, format_table
from repro.models.linear import LinearRegression, QuantileLinearRegression
from repro.models.quantile import QuantileBandRegressor


class TestMetrics:
    def test_r2_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0

    def test_r2_mean_prediction_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)

    def test_r2_worse_than_mean_negative(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, np.array([3.0, 2.0, 1.0])) < 0

    def test_r2_constant_target(self):
        y = np.full(4, 5.0)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1) == 0.0

    def test_rmse_known_value(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_interval_metrics_accept_tuple_or_object(self):
        lower, upper = np.zeros(4), np.ones(4)
        y = np.array([0.5, 0.5, 2.0, -1.0])
        as_tuple = empirical_coverage((lower, upper), y)
        as_object = empirical_coverage(PredictionIntervals(lower, upper), y)
        assert as_tuple == as_object == 0.5
        assert mean_interval_width((lower, upper)) == 1.0

    def test_cwc_penalises_undercoverage(self):
        y = np.linspace(0, 1, 100)
        tight = PredictionIntervals(y + 0.2, y + 0.3)  # zero coverage
        honest = PredictionIntervals(y - 0.5, y + 0.5)
        assert coverage_width_criterion(tight, y) > coverage_width_criterion(honest, y)

    def test_cwc_equals_width_when_covered(self):
        y = np.zeros(10)
        wide = PredictionIntervals(np.full(10, -1.0), np.full(10, 1.0))
        assert coverage_width_criterion(wide, y, alpha=0.1) == pytest.approx(2.0)

    def test_pinball_score_wrapper(self):
        assert pinball_score(np.array([1.0]), np.array([0.0]), 0.9) == pytest.approx(0.9)

    def test_metrics_reject_empty(self):
        with pytest.raises(ValueError):
            r2_score(np.array([]), np.array([]))


class TestKFold:
    def test_partitions_all_samples(self):
        kfold = KFold(n_splits=4, random_state=0)
        seen = []
        for train, test in kfold.split(103):
            assert len(set(train) & set(test)) == 0
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(103))

    def test_fold_sizes_balanced(self):
        sizes = [len(test) for _, test in KFold(n_splits=4, random_state=0).split(10)]
        assert sorted(sizes) == [2, 2, 3, 3]

    def test_same_seed_same_folds(self):
        a = [test.tolist() for _, test in KFold(4, random_state=3).split(50)]
        b = [test.tolist() for _, test in KFold(4, random_state=3).split(50)]
        assert a == b

    def test_no_shuffle_contiguous(self):
        folds = list(KFold(2, shuffle=False).split(6))
        np.testing.assert_array_equal(folds[0][1], [0, 1, 2])

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(5).split(3))

    def test_rejects_bad_n_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)


class TestCrossValidate:
    def test_point_cv_scores_reasonable(self, rng):
        X = rng.normal(size=(120, 3))
        y = X[:, 0] + rng.normal(scale=0.1, size=120)
        result = cross_validate_point(
            lambda Xt, yt: LinearRegression().fit(Xt, yt),
            X,
            y,
            KFold(4, random_state=0),
        )
        assert result.n_folds == 4
        assert result.r2 > 0.9
        assert result.rmse < 0.2

    def test_interval_cv_collects_both_metrics(self, rng):
        X = rng.normal(size=(200, 2))
        y = X[:, 0] + rng.normal(size=200)

        def builder(Xt, yt):
            return QuantileBandRegressor(QuantileLinearRegression(), alpha=0.2).fit(
                Xt, yt
            )

        result = cross_validate_intervals(builder, X, y, KFold(4, random_state=0))
        assert 0.5 < result.coverage <= 1.0
        assert result.width > 0
        assert len(result.width_per_fold) == 4

    def test_builder_never_sees_test_data(self, rng):
        X = rng.normal(size=(40, 2))
        y = rng.normal(size=40)
        seen_sizes = []

        def builder(Xt, yt):
            seen_sizes.append(len(yt))
            return LinearRegression().fit(Xt, yt)

        cross_validate_point(builder, X, y, KFold(4, random_state=0))
        assert all(size == 30 for size in seen_sizes)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["A", "BB"], [[1.5, "x"], [2.25, "yy"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_table_title(self):
        text = format_table(["A"], [[1.0]], title="My Table")
        assert text.startswith("My Table")

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["A", "B"], [[1.0]])

    def test_format_series_columns(self):
        text = format_series("x", [0, 1], {"s1": [1.0, 2.0], "s2": [3.0, 4.0]})
        assert "s1" in text and "s2" in text
        assert "3.00" in text

    def test_format_series_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="points"):
            format_series("x", [0, 1], {"s": [1.0]})
