"""Tests for coverage diagnostics."""

import numpy as np
import pytest

from repro.core.intervals import PredictionIntervals
from repro.core.split_cp import SplitConformalRegressor
from repro.eval.diagnostics import (
    calibration_curve,
    coverage_by_group,
    width_quantiles,
)
from repro.models.linear import LinearRegression


@pytest.fixture()
def intervals():
    lower = np.array([0.0, 0.0, 0.0, 0.0])
    upper = np.array([1.0, 2.0, 1.0, 2.0])
    return PredictionIntervals(lower, upper)


class TestCoverageByGroup:
    def test_per_group_numbers(self, intervals):
        y = np.array([0.5, 3.0, 0.5, 1.5])
        groups = ["a", "a", "b", "b"]
        report = coverage_by_group(intervals, y, groups)
        assert report.groups == ("a", "b")
        assert report.counts == (2, 2)
        assert report.coverages == (0.5, 1.0)
        assert report.mean_widths == (1.5, 1.5)

    def test_worst_group(self, intervals):
        y = np.array([0.5, 3.0, 0.5, 1.5])
        report = coverage_by_group(intervals, y, ["a", "a", "b", "b"])
        assert report.worst_group() == "a"

    def test_render_contains_groups(self, intervals):
        y = np.zeros(4)
        text = coverage_by_group(intervals, y, [0, 0, 1, 1]).render()
        assert "Coverage by group" in text and "0" in text

    def test_boolean_groups(self, intervals):
        y = np.array([0.5, 0.5, 0.5, 0.5])
        report = coverage_by_group(
            intervals, y, np.array([True, False, True, False])
        )
        assert set(report.groups) == {True, False}

    def test_rejects_length_mismatch(self, intervals):
        with pytest.raises(ValueError, match="labels"):
            coverage_by_group(intervals, np.zeros(4), ["a"])


class TestCalibrationCurve:
    def test_conformal_tracks_diagonal(self, rng):
        X = rng.normal(size=(600, 2))
        y = X[:, 0] + rng.normal(scale=0.3, size=600)
        X_train, y_train = X[:400], y[:400]
        X_test, y_test = X[400:], y[400:]

        def builder(alpha):
            return SplitConformalRegressor(
                LinearRegression(), alpha=alpha, random_state=0
            ).fit(X_train, y_train)

        curve = calibration_curve(builder, X_test, y_test, alphas=(0.1, 0.3, 0.5))
        for alpha, coverage in curve.items():
            assert coverage == pytest.approx(1 - alpha, abs=0.1)

    def test_coverage_monotone_in_level(self, rng):
        X = rng.normal(size=(400, 2))
        y = X[:, 0] + rng.normal(size=400)

        def builder(alpha):
            return SplitConformalRegressor(
                LinearRegression(), alpha=alpha, random_state=0
            ).fit(X[:300], y[:300])

        curve = calibration_curve(builder, X[300:], y[300:], alphas=(0.1, 0.5))
        assert curve[0.1] >= curve[0.5]

    def test_rejects_bad_alpha(self, rng):
        with pytest.raises(ValueError):
            calibration_curve(lambda a: None, np.zeros((2, 2)), np.zeros(2), alphas=(0.0,))


class TestWidthQuantiles:
    def test_constant_width_degenerate(self):
        intervals = PredictionIntervals(np.zeros(10), np.full(10, 2.0))
        quantiles = width_quantiles(intervals)
        assert all(v == pytest.approx(2.0) for v in quantiles.values())

    def test_quantile_ordering(self, rng):
        lower = np.zeros(100)
        upper = rng.uniform(1.0, 3.0, size=100)
        quantiles = width_quantiles(PredictionIntervals(lower, upper))
        assert quantiles[0.1] <= quantiles[0.5] <= quantiles[0.9]

    def test_rejects_out_of_range(self):
        intervals = PredictionIntervals(np.zeros(3), np.ones(3))
        with pytest.raises(ValueError):
            width_quantiles(intervals, quantiles=(1.5,))
