"""Correlation Feature Selection (Hall 1999), paper Section IV-C.

CFS scores a feature subset ``S`` by the merit

.. math::

    \\mathrm{merit}(S) = \\frac{k\\,\\overline{r_{fy}}}
        {\\sqrt{k + k(k-1)\\,\\overline{r_{ff}}}},

where ``k = |S|``, :math:`\\overline{r_{fy}}` is the mean absolute
feature--target correlation and :math:`\\overline{r_{ff}}` the mean
absolute pairwise feature--feature correlation.  Good subsets contain
features highly correlated with the target yet uncorrelated with each
other -- exactly what is needed to pick a handful of informative channels
out of 1800 redundant parametric tests.

:class:`CFSSelector` runs a greedy forward search: starting from the
single best feature, it repeatedly adds the feature maximising the merit
of the enlarged subset, recording the best subset of every size up to
``k_max`` so the 1..10 sweep of the paper comes out of one search.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.features.correlation import (
    feature_target_correlation,
    pearson_correlation,
)

__all__ = ["CFSSelector", "cfs_merit"]


def cfs_merit(mean_rfy: float, mean_rff: float, k: int) -> float:
    """CFS merit of a subset from its two mean absolute correlations.

    ``mean_rfy`` is the mean |feature-target| correlation, ``mean_rff`` the
    mean |feature-feature| correlation over distinct pairs (defined as 0
    when ``k == 1``).
    """
    if k < 1:
        raise ValueError(f"subset size k must be >= 1, got {k}")
    if mean_rfy < 0 or mean_rff < 0:
        raise ValueError("mean absolute correlations must be non-negative")
    denominator = np.sqrt(k + k * (k - 1) * mean_rff)
    if denominator == 0.0:
        return 0.0
    return float(k * mean_rfy / denominator)


class CFSSelector:
    """Greedy forward CFS over a feature matrix.

    Parameters
    ----------
    k_max:
        Largest subset size to record (paper sweeps 1..10).
    method:
        Correlation flavour, ``"pearson"`` (paper) or ``"spearman"``.

    Attributes
    ----------
    selected_:
        Indices of the ``k_max`` features in greedy order; the best subset
        of size ``k`` is ``selected_[:k]``.
    merits_:
        Merit of each prefix subset, aligned with ``selected_``.
    """

    def __init__(self, k_max: int = 10, method: str = "pearson") -> None:
        if k_max < 1:
            raise ValueError(f"k_max must be >= 1, got {k_max}")
        if method not in ("pearson", "spearman"):
            raise ValueError(f"method must be 'pearson' or 'spearman', got {method!r}")
        self.k_max = k_max
        self.method = method
        self.selected_: Optional[List[int]] = None
        self.merits_: Optional[List[float]] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "CFSSelector":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
            raise ValueError(
                f"X must be 2-D and y 1-D with matching length, got {X.shape}, {y.shape}"
            )
        if not np.all(np.isfinite(X)) or not np.all(np.isfinite(y)):
            # A single NaN silently zeroes whole correlation columns and
            # corrupts the greedy search; fail loudly instead.
            raise ValueError("CFS inputs must be finite (no NaN/inf)")
        n_features = X.shape[1]
        k_max = min(self.k_max, n_features)

        target_corr = np.abs(feature_target_correlation(X, y, self.method))

        selected: List[int] = []
        merits: List[float] = []
        # Running sums for incremental merit evaluation: for each candidate
        # feature we track the sum of its |corr| with the selected set.
        candidate_ff_sums = np.zeros(n_features)
        selected_mask = np.zeros(n_features, dtype=bool)
        rfy_sum = 0.0
        ff_pair_sum = 0.0

        for step in range(k_max):
            k = step + 1
            pairs = k * (k - 1) / 2.0
            with np.errstate(divide="ignore", invalid="ignore"):
                mean_rfy = (rfy_sum + target_corr) / k
                mean_rff = (
                    (ff_pair_sum + candidate_ff_sums) / pairs if pairs > 0 else 0.0
                )
                denominator = np.sqrt(k + k * (k - 1) * mean_rff)
                merit = np.where(denominator > 0, k * mean_rfy / denominator, 0.0)
            merit = np.where(selected_mask, -np.inf, merit)
            best = int(np.argmax(merit))
            if not np.isfinite(merit[best]):
                break
            selected.append(best)
            merits.append(float(merit[best]))
            selected_mask[best] = True
            rfy_sum += target_corr[best]
            ff_pair_sum += candidate_ff_sums[best]
            # Update each candidate's correlation-sum with the new member.
            new_column = X[:, best]
            if self.method == "spearman":
                from scipy import stats

                new_rank = stats.rankdata(new_column)
                ranked = stats.rankdata(X, axis=0)
                corr_with_new = _batch_abs_pearson(ranked, new_rank)
            else:
                corr_with_new = _batch_abs_pearson(X, new_column)
            candidate_ff_sums += corr_with_new

        self.selected_ = selected
        self.merits_ = merits
        return self

    def subset(self, k: int) -> List[int]:
        """The selected indices of the best greedy subset of size ``k``."""
        if self.selected_ is None:
            raise RuntimeError("CFSSelector is not fitted")
        if not 1 <= k <= len(self.selected_):
            raise ValueError(
                f"k must be in [1, {len(self.selected_)}], got {k}"
            )
        return self.selected_[:k]

    def transform(self, X: np.ndarray, k: Optional[int] = None) -> np.ndarray:
        """Project ``X`` onto the best subset of size ``k`` (all by default)."""
        if self.selected_ is None:
            raise RuntimeError("CFSSelector is not fitted")
        k = len(self.selected_) if k is None else k
        return np.asarray(X, dtype=np.float64)[:, self.subset(k)]


def _batch_abs_pearson(X: np.ndarray, column: np.ndarray) -> np.ndarray:
    """|Pearson correlation| of every column of ``X`` with ``column``."""
    X_centered = X - X.mean(axis=0)
    c_centered = column - column.mean()
    x_std = X_centered.std(axis=0)
    c_std = c_centered.std()
    if c_std == 0.0:
        return np.zeros(X.shape[1])
    with np.errstate(divide="ignore", invalid="ignore"):
        corr = (X_centered * c_centered[:, None]).mean(axis=0) / (x_std * c_std)
    return np.abs(np.where(x_std == 0.0, 0.0, corr))
