"""XGBoost-style second-order gradient boosting (paper Section IV-C.2).

Reproduces the algorithmic core of XGBoost (Chen & Guestrin, 2016) used by
the paper with its default hyper-parameters: 100 boosting rounds of
depth-6 trees, learning rate 0.3, L2 leaf regularisation λ=1.  Each round
fits a :class:`~repro.models.tree.GradientTree` to the per-sample gradient
and Hessian of the objective at the current prediction and takes a
shrunken Newton step.

Two objectives are supported, selected by the ``quantile`` parameter:

* ``quantile=None`` -- squared error, for :math:`V_{min}` point prediction,
* ``quantile=q`` -- pinball loss of paper Eq. (5), for the QR/CQR region
  predictors (Section IV-E).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.models.base import (
    BaseRegressor,
    check_fitted,
    check_random_state,
    check_X,
    check_X_y,
)
from repro.models.binning import BinnedDataset, shared_binned_dataset
from repro.models.histtree import grow_histogram_tree
from repro.models.losses import (
    mse_gradient_hessian,
    pinball_gradient_hessian,
    validate_quantile,
)
from repro.models.tables import compile_depthwise
from repro.models.tree import GradientTree, TreeGrowthParams

__all__ = ["GradientBoostingRegressor"]


class GradientBoostingRegressor(BaseRegressor):
    """Newton-boosted regression trees with XGBoost defaults.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds (XGBoost default 100).
    learning_rate:
        Shrinkage η applied to every tree's contribution (default 0.3).
    max_depth:
        Depth limit per tree (default 6).
    reg_lambda, gamma, min_child_weight:
        XGBoost regularisation knobs, passed to the tree grower.
    subsample:
        Row subsampling fraction per round (without replacement).
    colsample_bytree:
        Column subsampling fraction per round.
    quantile:
        ``None`` for squared error; a value in (0, 1) switches the
        objective to the pinball loss for that quantile.
    tree_method:
        ``"hist"`` (default) grows trees on quantile-binned features with
        level-batched histogram split search; ``"exact"`` uses the
        per-node exact greedy reference grower (slow on wide data).
    max_bins:
        Histogram resolution for ``tree_method="hist"``.
    feature_shortlist:
        Wide-data speedup for ``tree_method="hist"``: each tree's root
        level scores every candidate column exactly, deeper levels only
        the top-K by root gain.  ``None`` disables (exact at all levels);
        ignored by ``tree_method="exact"``.
    random_state:
        Seed for the sub-sampling draws.
    """

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.3,
        max_depth: int = 6,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        min_child_weight: float = 1.0,
        subsample: float = 1.0,
        colsample_bytree: float = 1.0,
        quantile: Optional[float] = None,
        tree_method: str = "hist",
        max_bins: int = 32,
        feature_shortlist: Optional[int] = 256,
        random_state: Optional[int] = None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {learning_rate}")
        if not 0.0 < subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        if not 0.0 < colsample_bytree <= 1.0:
            raise ValueError(
                f"colsample_bytree must be in (0, 1], got {colsample_bytree}"
            )
        if quantile is not None:
            quantile = validate_quantile(quantile)
        if tree_method not in ("hist", "exact"):
            raise ValueError(
                f"tree_method must be 'hist' or 'exact', got {tree_method!r}"
            )
        if feature_shortlist is not None and feature_shortlist < 1:
            raise ValueError(
                f"feature_shortlist must be >= 1 or None, got {feature_shortlist}"
            )
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.min_child_weight = min_child_weight
        self.subsample = subsample
        self.colsample_bytree = colsample_bytree
        self.quantile = quantile
        self.tree_method = tree_method
        self.max_bins = max_bins
        self.feature_shortlist = feature_shortlist
        self.random_state = random_state
        self.trees_: Optional[List[GradientTree]] = None

    def _gradients(self, y: np.ndarray, prediction: np.ndarray):
        if self.quantile is None:
            return mse_gradient_hessian(y, prediction)
        return pinball_gradient_hessian(y, prediction, self.quantile)

    def _loss(self, y: np.ndarray, prediction: np.ndarray) -> float:
        from repro.models.losses import mse_loss, pinball_loss

        if self.quantile is None:
            return mse_loss(y, prediction)
        return pinball_loss(y, prediction, self.quantile)

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        eval_set=None,
        early_stopping_rounds: Optional[int] = None,
        binned: Optional[BinnedDataset] = None,
    ) -> "GradientBoostingRegressor":
        """Fit the boosting ensemble.

        Parameters
        ----------
        X, y:
            Training data.
        eval_set:
            Optional ``(X_val, y_val)`` pair monitored after every round
            (objective loss, recorded in ``eval_history_``).
        early_stopping_rounds:
            Stop when the validation loss has not improved for this many
            consecutive rounds, keeping the ensemble truncated at the best
            round (XGBoost semantics).  Requires ``eval_set``.
        binned:
            Optional pre-binned :class:`~repro.models.binning.BinnedDataset`
            for ``tree_method="hist"``: its codes must come from this very
            ``X`` at this ``max_bins``.  When omitted the fit goes through
            :func:`~repro.models.binning.shared_binned_dataset`, so repeat
            fits on the same matrix (the CQR lo/hi pair, CV folds, grid
            cells) reuse one binning pass automatically.  Bit-identical to
            binning from scratch either way.

        Notes
        -----
        When early stopping truncates the ensemble, the bookkeeping is
        truncated with it: ``eval_history_`` keeps exactly one entry per
        kept tree and ``best_round_ == len(trees_) - 1`` -- the losses of
        the discarded probe rounds are gone along with their trees, so
        ``eval_history_[best_round_]`` is always the loss of the last
        kept round.  A fit that runs to completion keeps the full
        history (one entry per tree) with ``best_round_`` marking its
        argmin.  Fitting also compiles the ensemble into flat decision
        tables (``compiled_``,
        :class:`~repro.models.tables.CompiledDepthwiseTables`) that
        ``predict``/``staged_predict`` evaluate batch-at-once.
        """
        X, y = check_X_y(X, y)
        self.n_features_in_ = X.shape[1]
        rng = check_random_state(self.random_state)
        if early_stopping_rounds is not None:
            if early_stopping_rounds < 1:
                raise ValueError(
                    f"early_stopping_rounds must be >= 1, got {early_stopping_rounds}"
                )
            if eval_set is None:
                raise ValueError("early_stopping_rounds requires an eval_set")
        if eval_set is not None:
            X_val, y_val = check_X_y(*eval_set)
            if X_val.shape[1] != X.shape[1]:
                raise ValueError(
                    f"eval_set has {X_val.shape[1]} features, train has {X.shape[1]}"
                )
        else:
            X_val = y_val = None

        if self.quantile is None:
            self.base_score_ = float(np.mean(y))
        else:
            # Starting from the empirical quantile keeps early rounds from
            # wasting capacity on a global shift.
            self.base_score_ = float(np.quantile(y, self.quantile))

        params = TreeGrowthParams(
            max_depth=self.max_depth,
            min_samples_leaf=1,
            min_child_weight=self.min_child_weight,
            reg_lambda=self.reg_lambda,
            gamma=self.gamma,
        )

        n_samples, n_features = X.shape
        if self.tree_method == "hist":
            if binned is not None:
                if binned.codes.shape != X.shape:
                    raise ValueError(
                        f"binned dataset has shape {binned.codes.shape}, "
                        f"X has {X.shape}"
                    )
                if binned.max_bins != self.max_bins:
                    raise ValueError(
                        f"binned dataset was built with max_bins="
                        f"{binned.max_bins}, model wants {self.max_bins}"
                    )
                dataset = binned
            else:
                dataset = shared_binned_dataset(X, self.max_bins)
            binner = dataset.binner
            codes = dataset.codes
        else:
            dataset = None
            binner = None
            codes = None

        prediction = np.full(n_samples, self.base_score_)
        trees: List[GradientTree] = []
        eval_history: List[float] = []
        val_prediction = (
            np.full(X_val.shape[0], self.base_score_) if X_val is not None else None
        )
        best_round = 0
        best_loss = np.inf
        for round_index in range(self.n_estimators):
            gradients, hessians = self._gradients(y, prediction)

            if self.subsample < 1.0:
                n_rows = max(1, int(round(self.subsample * n_samples)))
                rows = rng.choice(n_samples, size=n_rows, replace=False)
            else:
                # Full-matrix round: no row copy, no RNG draw (the draw
                # never happened on this branch, so seeds are unchanged).
                rows = None
            if self.colsample_bytree < 1.0:
                n_cols = max(1, int(round(self.colsample_bytree * n_features)))
                cols = rng.choice(n_features, size=n_cols, replace=False)
            else:
                cols = np.arange(n_features)

            if self.tree_method == "hist":
                if rows is None:
                    tree = grow_histogram_tree(
                        codes, binner, gradients, hessians,
                        params, cols, self.feature_shortlist, dataset=dataset,
                    )
                else:
                    tree = grow_histogram_tree(
                        codes[rows], binner, gradients[rows], hessians[rows],
                        params, cols, self.feature_shortlist,
                    )
            elif rows is None:
                tree = GradientTree(params)
                tree.fit_gradients(X, gradients, hessians, cols)
            else:
                tree = GradientTree(params)
                tree.fit_gradients(X[rows], gradients[rows], hessians[rows], cols)
            trees.append(tree)
            prediction += self.learning_rate * tree.predict(X)

            if X_val is not None:
                val_prediction += self.learning_rate * tree.predict(X_val)
                loss = self._loss(y_val, val_prediction)
                eval_history.append(loss)
                if loss < best_loss - 1e-12:
                    best_loss = loss
                    best_round = round_index
                elif (
                    early_stopping_rounds is not None
                    and round_index - best_round >= early_stopping_rounds
                ):
                    # Discarded probe rounds take their losses with them:
                    # after truncation, eval_history_ has one entry per
                    # kept tree and best_round_ is the last kept index.
                    trees = trees[: best_round + 1]
                    eval_history = eval_history[: best_round + 1]
                    break

        self.trees_ = trees
        self.eval_history_ = eval_history
        self.best_round_ = best_round if X_val is not None else None
        self.compiled_ = compile_depthwise(trees)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Boosted prediction for every row of ``X``.

        Scores through the compiled decision-table kernel when the fit
        produced one (``compiled_``), falling back to the per-tree
        reference loop for models unpickled from older bundles.  The two
        paths are bit-identical; comparisons always happen in float64
        regardless of the dtype of ``X``.
        """
        check_fitted(self, "trees_")
        X = self._check_predict_X(X)
        compiled = getattr(self, "compiled_", None)
        if compiled is not None:
            return compiled.predict(X, self.base_score_, self.learning_rate)
        return self._predict_loop(X)

    def staged_predict(self, X: np.ndarray) -> np.ndarray:
        """Predictions after each boosting round, shape (n_estimators, n).

        Useful for picking an early-stopping round and for the learning-
        curve diagnostics in the benchmarks.  Uses the compiled kernel
        when available, like :meth:`predict`; the last stage always
        equals ``predict(X)`` exactly.
        """
        check_fitted(self, "trees_")
        X = self._check_predict_X(X)
        compiled = getattr(self, "compiled_", None)
        if compiled is not None:
            return compiled.staged_predict(
                X, self.base_score_, self.learning_rate
            )
        return self._staged_predict_loop(X)

    def _check_predict_X(self, X: np.ndarray) -> np.ndarray:
        X = check_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.n_features_in_}"
            )
        return X

    def _predict_loop(self, X: np.ndarray) -> np.ndarray:
        """Reference per-tree accumulation: the parity oracle for
        ``compiled_`` and the fallback for pre-kernel pickles."""
        prediction = np.full(X.shape[0], self.base_score_)
        for tree in self.trees_:
            prediction += self.learning_rate * tree.predict(X)
        return prediction

    def _staged_predict_loop(self, X: np.ndarray) -> np.ndarray:
        """Reference per-round accumulation matching ``_predict_loop``."""
        prediction = np.full(X.shape[0], self.base_score_)
        stages = np.empty((len(self.trees_), X.shape[0]))
        for i, tree in enumerate(self.trees_):
            prediction = prediction + self.learning_rate * tree.predict(X)
            stages[i] = prediction
        return stages

    @property
    def feature_importances_(self) -> np.ndarray:
        """Normalised split counts across all trees (XGBoost 'weight')."""
        check_fitted(self, "trees_")
        counts = np.zeros(self.n_features_in_)
        for tree in self.trees_:
            counts += tree.feature_importances(self.n_features_in_)
        total = counts.sum()
        return counts / total if total > 0 else counts
