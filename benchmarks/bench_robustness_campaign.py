"""Robustness extension -- coverage/length degradation under faults.

Serves a held-out lot through :class:`repro.robust.RobustVminFlow` (the
hardened CQR-CatBoost serving stack, with a parametric-only fallback
model) under the standard fault campaign over the on-chip monitor
block.  Expected shape: coverage stays within a few points of nominal
across all dead/stuck-sensor severities -- paid for with interval width
(policy inflation, fallback) rather than silent under-coverage -- and
the unhealthy-column accounting tracks the injected severity.
"""

from __future__ import annotations

from conftest import BENCH_SEED, bench_profile_name, publish

from repro.eval.stress import run_fault_campaign
from repro.models import ObliviousBoostingRegressor
from repro.robust import FaultCampaign, RobustVminFlow

N_TRAIN = 110


def _render(dataset, profile) -> str:
    X, names = dataset.features(0)
    y = dataset.target(25.0, 0)
    parametric = [i for i, n in enumerate(names) if n.startswith("par_")]
    monitors = [i for i, n in enumerate(names) if not n.startswith("par_")]
    flow = RobustVminFlow(
        base_model=ObliviousBoostingRegressor(
            n_estimators=profile.catboost_estimators,
            quantile=0.5,
            random_state=BENCH_SEED,
        ),
        alpha=0.1,
        random_state=BENCH_SEED,
    )
    flow.fit(
        X[:N_TRAIN],
        y[:N_TRAIN],
        feature_names=names,
        fallback_columns=parametric,
        monitor_columns=monitors,
    )
    severities = (0.1,) if bench_profile_name() == "smoke" else (0.05, 0.1, 0.2, 0.4)
    campaign = FaultCampaign.standard(
        severities=severities, columns=monitors, seed=BENCH_SEED
    )
    report = run_fault_campaign(flow, X[N_TRAIN:], y[N_TRAIN:], campaign)
    summary = (
        f"\nworst-case coverage drop vs nominal: "
        f"{report.coverage_drop()*100:+.1f} points "
        f"(dead sensors only: {report.coverage_drop('dead_sensors')*100:+.1f})"
    )
    return (
        report.to_table(title="Robustness | fault campaign on monitor block (25C, 0h)")
        + summary
    )


def test_robustness_campaign(benchmark, dataset, profile):
    text = benchmark.pedantic(_render, args=(dataset, profile), rounds=1, iterations=1)
    publish("robustness_campaign", text)
