"""Tests for the checksum-verified model registry.

The registry accepts any picklable object, so these tests publish small
plain dictionaries -- the verification, quarantine, and pointer
semantics are model-agnostic.
"""

import pickle

import pytest

from repro.runtime.artifacts import (
    ArtifactCorruptionError,
    ArtifactError,
    write_checksum,
)
from repro.serve import (
    MANIFEST_SCHEMA_VERSION,
    ModelRegistry,
    ModelVersion,
    RegistryError,
)


def _corrupt_bundle(registry, name):
    """Flip bytes in a version's bundle without touching its sidecar."""
    bundle = registry.versions_dir / name / "bundle.pkl"
    bundle.write_bytes(b"\x00" * 64 + bundle.read_bytes()[64:])


class TestPublish:
    def test_first_publish_is_v0001_and_latest(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        record = registry.publish({"w": [1.0, 2.0]})
        assert record.name == "v0001" and record.number == 1
        assert registry.versions() == ["v0001"]
        assert registry.latest() == "v0001"
        assert (record.path / "bundle.pkl").exists()
        assert (record.path / "bundle.pkl.sha256").exists()
        assert (record.path / "manifest.json.sha256").exists()

    def test_versions_are_monotonic_and_latest_moves(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.publish({"gen": 1})
        registry.publish({"gen": 2})
        assert registry.versions() == ["v0001", "v0002"]
        assert registry.latest() == "v0002"
        # The old version's bytes are untouched by the second publish.
        model, record = registry.load("v0001")
        assert model == {"gen": 1} and record.name == "v0001"

    def test_manifest_records_reason_parent_and_metadata(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.publish({"gen": 1})
        record = registry.publish(
            {"gen": 2},
            reason="recalibrated",
            parent="v0001",
            metadata={"alpha_t": 0.08},
        )
        described = registry.describe(record.name)
        assert isinstance(described, ModelVersion)
        assert described.manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert described.reason == "recalibrated"
        assert described.parent == "v0001"
        assert described.manifest["metadata"] == {"alpha_t": 0.08}

    def test_unknown_parent_is_rejected(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(RegistryError, match="parent"):
            registry.publish({}, parent="v0099")

    def test_root_must_be_a_directory(self, tmp_path):
        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("occupied")
        with pytest.raises(RegistryError, match="not a directory"):
            ModelRegistry(not_a_dir)


class TestVerifiedLoad:
    def test_load_roundtrips_the_model(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.publish({"w": [3.0]})
        model, record = registry.load()
        assert model == {"w": [3.0]}
        assert record.name == "v0001"

    def test_corrupt_bundle_is_quarantined_not_served(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.publish({"gen": 1})
        registry.publish({"gen": 2})
        _corrupt_bundle(registry, "v0002")
        with pytest.raises(ArtifactCorruptionError, match="mismatch"):
            registry.load("v0002")
        assert registry.quarantined() == ["v0002"]
        assert registry.versions() == ["v0001"]
        # LATEST named the corrupt version: it must repoint to the
        # newest surviving intact one, never dangle.
        assert registry.latest() == "v0001"

    def test_missing_sidecar_is_treated_as_corruption(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        record = registry.publish({"gen": 1})
        (record.path / "bundle.pkl.sha256").unlink()
        with pytest.raises(ArtifactCorruptionError, match="unverifiable"):
            registry.load("v0001")
        assert registry.quarantined() == ["v0001"]
        assert registry.latest() is None

    def test_verified_but_unpicklable_bundle_is_quarantined(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        record = registry.publish({"gen": 1})
        bundle = record.path / "bundle.pkl"
        bundle.write_bytes(b"these bytes are not a pickle stream")
        write_checksum(bundle)  # digest agrees, content is garbage
        with pytest.raises(ArtifactCorruptionError, match="deserialise"):
            registry.load("v0001")
        assert registry.quarantined() == ["v0001"]

    def test_unknown_version_is_registry_error(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(RegistryError, match="unknown registry version"):
            registry.load("v0042")

    def test_empty_registry_has_no_latest_to_load(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        assert registry.latest() is None
        with pytest.raises(RegistryError, match="no live LATEST"):
            registry.load()

    def test_corrupt_manifest_is_corruption_error(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        record = registry.publish({"gen": 1})
        (record.path / "manifest.json").write_text("{not json")
        with pytest.raises(ArtifactCorruptionError, match="manifest"):
            registry.describe("v0001")


class TestLastKnownGood:
    def test_prefers_newest_intact_version(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.publish({"gen": 1})
        registry.publish({"gen": 2})
        registry.publish({"gen": 3})
        _corrupt_bundle(registry, "v0003")
        assert registry.last_known_good() == "v0002"
        # The probe is read-only: the corrupt version stays in place.
        assert registry.versions() == ["v0001", "v0002", "v0003"]
        assert registry.quarantined() == []

    def test_exclude_skips_named_versions(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.publish({"gen": 1})
        registry.publish({"gen": 2})
        assert registry.last_known_good(exclude=("v0002",)) == "v0001"

    def test_all_corrupt_returns_none(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.publish({"gen": 1})
        _corrupt_bundle(registry, "v0001")
        assert registry.last_known_good() is None


class TestQuarantine:
    def test_unknown_name_is_error(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(RegistryError, match="quarantine unknown"):
            registry.quarantine("v0007")

    def test_name_collisions_get_numeric_suffixes(self, tmp_path):
        # Quarantining the only version empties the registry, so the
        # next publish reuses the name -- quarantining *that* one too
        # must not clobber the first piece of evidence.
        registry = ModelRegistry(tmp_path)
        registry.publish({"gen": 1})
        registry.quarantine("v0001")
        assert registry.publish({"gen": 2}).name == "v0001"
        destination = registry.quarantine("v0001")
        assert destination.name == "v0001.1"
        assert registry.quarantined() == ["v0001", "v0001.1"]

    def test_quarantining_non_latest_leaves_pointer_alone(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.publish({"gen": 1})
        registry.publish({"gen": 2})
        registry.quarantine("v0001")
        assert registry.latest() == "v0002"


class TestErrorHierarchy:
    def test_registry_error_keeps_cli_exit_mapping(self):
        # The CLI maps ValueError to exit 2; both artifact error types
        # must stay inside that hierarchy.
        assert issubclass(RegistryError, ArtifactError)
        assert issubclass(ArtifactCorruptionError, ArtifactError)
        assert issubclass(ArtifactError, ValueError)

    def test_published_bundle_is_plain_pickle(self, tmp_path):
        # The on-disk format is inspectable: no wrapper framing beyond
        # pickle itself, so ops tooling can examine a quarantined bundle.
        registry = ModelRegistry(tmp_path)
        record = registry.publish({"inspect": True})
        raw = (record.path / "bundle.pkl").read_bytes()
        assert pickle.loads(raw) == {"inspect": True}
