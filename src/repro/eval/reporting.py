"""Plain-text renderers for benchmark output.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that formatting in one place.  No plotting backend is
required -- "figures" are rendered as aligned numeric series, which is
what a regression harness can diff.  :func:`write_report` persists a
rendered artefact atomically so the results directory never holds a
half-written table.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.runtime.artifacts import write_text_atomic

__all__ = ["format_series", "format_table", "write_report"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render a monospace table with one header row.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Column widths adapt to content.
    """
    if not headers:
        raise ValueError("headers must be non-empty")
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        rendered.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines: List[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    for i, row in enumerate(rendered):
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append(separator)
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Dict[str, Sequence[float]],
    title: Optional[str] = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render figure-style data: one x column plus one column per series.

    This is how the harness regenerates "figures" (Fig. 2, Fig. 3) as
    diffable text: same x axis, same named series as the paper's plot.
    """
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points for "
                f"{len(x_values)} x values"
            )
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][i] for name in series]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title, float_format=float_format)


def write_report(path: Union[str, Path], text: str) -> Path:
    """Persist one rendered table/series artefact crash-safely.

    A trailing newline is appended when missing, and the write is
    atomic (temp file + rename) so a killed benchmark run leaves either
    the previous artefact or the new one -- never a torn file the
    regression differ would mis-read.  Returns the path.
    """
    if not text.endswith("\n"):
        text += "\n"
    return write_text_atomic(path, text)
