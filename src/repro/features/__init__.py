"""Feature selection and preprocessing (paper Section IV-C).

The paper's dataset has ~2000 input columns for only 156 chips, so the
non-tree models (linear regression, Gaussian process, neural network) are
given a small informative subset chosen by Correlation Feature Selection
(CFS, Hall 1999) with the Pearson correlation, sweeping 1 to 10 selected
features.  Tree-boosting models receive all raw columns and rely on their
intrinsic split-based selection.

Modules
-------
* :mod:`repro.features.correlation` -- Pearson/Spearman utilities,
* :mod:`repro.features.cfs` -- the CFS merit and greedy forward search,
* :mod:`repro.features.selection` -- top-k and best-k-sweep wrappers,
* :mod:`repro.features.preprocessing` -- scaling / constant-column
  handling / pipeline composition.
"""

from repro.features.cfs import CFSSelector, cfs_merit
from repro.features.correlation import (
    feature_feature_correlation,
    feature_target_correlation,
    pearson_correlation,
    spearman_correlation,
)
from repro.features.preprocessing import (
    ConstantFeatureDropper,
    Pipeline,
    StandardScaler,
)
from repro.features.selection import BestKSweepSelector, SelectKBest

__all__ = [
    "BestKSweepSelector",
    "CFSSelector",
    "ConstantFeatureDropper",
    "Pipeline",
    "SelectKBest",
    "StandardScaler",
    "cfs_merit",
    "feature_feature_correlation",
    "feature_target_correlation",
    "pearson_correlation",
    "spearman_correlation",
]
