"""Tests for the fault injectors and the declarative campaign."""

import numpy as np
import pytest

from repro.robust.faults import (
    AgingDrift,
    DeadSensors,
    FaultCampaign,
    FaultScenario,
    NoiseBurst,
    RowDropout,
    StuckSensors,
    TemperatureOffset,
    column_scales,
)

ALL_INJECTORS = [
    DeadSensors(0.3),
    StuckSensors(0.3),
    AgingDrift(1.5, fraction=0.5),
    TemperatureOffset(1.0, row_fraction=0.5),
    NoiseBurst(0.5, row_fraction=0.5),
    RowDropout(0.3),
]


@pytest.fixture()
def X(rng):
    return rng.normal(size=(40, 10)) * np.arange(1, 11)


class TestInjectorContract:
    @pytest.mark.parametrize("injector", ALL_INJECTORS, ids=lambda i: type(i).__name__)
    def test_input_never_mutated(self, injector, X):
        before = X.copy()
        injector.inject(X, np.random.default_rng(0))
        np.testing.assert_array_equal(X, before)

    @pytest.mark.parametrize("injector", ALL_INJECTORS, ids=lambda i: type(i).__name__)
    def test_shape_preserved(self, injector, X):
        out = injector.inject(X, np.random.default_rng(0))
        assert out.shape == X.shape

    @pytest.mark.parametrize("injector", ALL_INJECTORS, ids=lambda i: type(i).__name__)
    def test_seeded_reproducibility(self, injector, X):
        a = injector.inject(X, np.random.default_rng(7))
        b = injector.inject(X, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("injector", ALL_INJECTORS, ids=lambda i: type(i).__name__)
    def test_describe_names_the_class(self, injector):
        assert type(injector).__name__ in injector.describe()

    def test_fraction_validated(self):
        for cls in (DeadSensors, StuckSensors, RowDropout):
            with pytest.raises(ValueError, match=r"\[0, 1\]"):
                cls(1.5)
        with pytest.raises(ValueError, match="finite"):
            AgingDrift(np.inf)
        with pytest.raises(ValueError, match=">= 0"):
            NoiseBurst(-1.0)


class TestDeadSensors:
    def test_kills_requested_fraction_of_columns(self, X):
        out = DeadSensors(0.3).inject(X, np.random.default_rng(0))
        dead = np.isnan(out).all(axis=0)
        assert dead.sum() == 3
        assert np.isfinite(out[:, ~dead]).all()

    def test_explicit_columns(self, X):
        out = DeadSensors(1.0, columns=[1, 4]).inject(X, np.random.default_rng(0))
        assert np.isnan(out[:, [1, 4]]).all()
        assert np.isfinite(np.delete(out, [1, 4], axis=1)).all()

    def test_rejects_out_of_range_columns(self, X):
        with pytest.raises(ValueError, match="column indices"):
            DeadSensors(1.0, columns=[99]).inject(X, np.random.default_rng(0))

    def test_zero_fraction_is_identity(self, X):
        out = DeadSensors(0.0).inject(X, np.random.default_rng(0))
        np.testing.assert_array_equal(out, X)


class TestStuckSensors:
    def test_stuck_columns_are_batch_constant_and_finite(self, X):
        out = StuckSensors(0.4).inject(X, np.random.default_rng(1))
        frozen = (out == out[0]).all(axis=0)  # reprolint: disable=REP102
        assert frozen.sum() == 4
        assert np.isfinite(out).all()

    def test_stuck_value_is_a_real_reading(self, X):
        out = StuckSensors(1.0, columns=[2]).inject(X, np.random.default_rng(3))
        assert out[0, 2] in X[:, 2]


class TestDriftAndNoise:
    def test_aging_drift_shifts_by_column_scale(self, X):
        out = AgingDrift(2.0).inject(X, np.random.default_rng(0))
        np.testing.assert_allclose(out - X, 2.0 * column_scales(X) * np.ones_like(X))

    def test_temperature_offset_hits_rows(self, X):
        out = TemperatureOffset(3.0, row_fraction=0.25).inject(
            X, np.random.default_rng(0)
        )
        changed_rows = np.any(out != X, axis=1)
        assert changed_rows.sum() == 10

    def test_noise_burst_leaves_other_rows_alone(self, X):
        out = NoiseBurst(1.0, row_fraction=0.1).inject(X, np.random.default_rng(0))
        changed_rows = np.any(out != X, axis=1)
        assert changed_rows.sum() == 4

    def test_row_dropout_nans_whole_rows(self, X):
        out = RowDropout(0.25).inject(X, np.random.default_rng(0))
        dropped = np.isnan(out).all(axis=1)
        assert dropped.sum() == 10
        assert np.isfinite(out[~dropped]).all()


class TestColumnScales:
    def test_matches_std_on_clean_data(self, X):
        np.testing.assert_allclose(column_scales(X), X.std(axis=0, ddof=1))

    def test_ignores_non_finite_entries(self, X):
        corrupted = X.copy()
        corrupted[:5, 0] = np.nan
        expected = X[5:, 0].std(ddof=1)
        assert column_scales(corrupted)[0] == pytest.approx(expected)

    def test_all_nan_column_gets_zero_scale(self, X):
        corrupted = X.copy()
        corrupted[:, 3] = np.nan
        assert column_scales(corrupted)[3] == 0.0

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            column_scales(np.zeros(5))


class TestScenarioAndCampaign:
    def test_scenario_apply_is_deterministic(self, X):
        scenario = FaultScenario(
            name="combo",
            injectors=(DeadSensors(0.2), NoiseBurst(0.5, row_fraction=0.5)),
            severity=0.2,
            seed=11,
        )
        np.testing.assert_array_equal(scenario.apply(X), scenario.apply(X))

    def test_scenario_composes_in_order(self, X):
        scenario = FaultScenario(
            name="dead-then-stuck",
            injectors=(DeadSensors(1.0, columns=[0]), StuckSensors(1.0, columns=[1])),
            seed=0,
        )
        out = scenario.apply(X)
        assert np.isnan(out[:, 0]).all()
        assert (out[:, 1] == out[0, 1]).all()  # reprolint: disable=REP102

    def test_standard_campaign_covers_taxonomy_per_severity(self):
        campaign = FaultCampaign.standard(severities=(0.1, 0.2))
        assert len(campaign) == 12
        names = {s.name for s in campaign}
        assert names == {
            "dead_sensors",
            "stuck_sensors",
            "aging_drift",
            "temperature_offset",
            "noise_burst",
            "row_dropout",
        }

    def test_standard_campaign_seeds_are_distinct(self):
        campaign = FaultCampaign.standard(severities=(0.1, 0.2), seed=5)
        seeds = [s.seed for s in campaign]
        assert len(set(seeds)) == len(seeds)

    def test_standard_campaign_respects_column_restriction(self, X):
        campaign = FaultCampaign.standard(severities=(1.0,), columns=[0, 1])
        for scenario in campaign:
            if scenario.name == "dead_sensors":
                out = scenario.apply(X)
                assert np.isfinite(out[:, 2:]).all()

    def test_standard_rejects_negative_severity(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultCampaign.standard(severities=(-0.1,))
