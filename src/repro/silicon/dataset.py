"""Assembly of the full Table-II-shaped dataset.

:class:`SiliconDataset` is what the rest of the library consumes: the
measured feature blocks (parametric at time 0; ROD/CPD at every read
point), the measured SCAN Vmin labels per (temperature, read point), and
-- kept separate, for evaluation only -- the ground-truth Vmin and the
latent population.

``SiliconDataset.generate(seed=...)`` is fully deterministic and is the
single entry point used by examples, tests, and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.models.base import check_random_state
from repro.silicon.aging import AgingModel
from repro.silicon.chip import ChipPopulation
from repro.silicon.constants import (
    N_CHIPS_DEFAULT,
    READ_POINTS_HOURS,
    TEMPERATURES_C,
    validate_read_point,
    validate_temperature,
)
from repro.silicon.defects import DefectModel
from repro.silicon.monitors import CPDSensorBank, RODSensorBank
from repro.silicon.parametric import ParametricTestBank
from repro.silicon.process import ProcessSample, ProcessVariationModel
from repro.silicon.vmin import ScanVminModel
from repro.silicon.wafer import WaferModel, WaferProvenance

__all__ = ["SiliconDataset"]


@dataclass
class SiliconDataset:
    """Measured data for one generated lot.

    Attributes
    ----------
    parametric:
        (n_chips, 1800) time-zero parametric block.
    parametric_names, parametric_temperatures:
        Channel metadata aligned with ``parametric`` columns.
    rod, cpd:
        Read-point-indexed monitor blocks: ``rod[hours]`` is
        (n_chips, 168), ``cpd[hours]`` is (n_chips, 10).
    vmin:
        Measured SCAN Vmin (V): ``vmin[(temperature, hours)]`` -> (n_chips,).
    true_vmin:
        Noise-free ground truth with the same keys (evaluation only).
    population:
        Latent chip states (evaluation only).
    """

    parametric: np.ndarray
    parametric_names: List[str]
    parametric_temperatures: np.ndarray
    rod: Dict[int, np.ndarray]
    rod_names: List[str]
    cpd: Dict[int, np.ndarray]
    cpd_names: List[str]
    vmin: Dict[Tuple[float, int], np.ndarray]
    true_vmin: Dict[Tuple[float, int], np.ndarray]
    population: ChipPopulation
    read_points: Tuple[int, ...] = READ_POINTS_HOURS
    temperatures: Tuple[float, ...] = TEMPERATURES_C
    wafer: Optional[WaferProvenance] = None
    """Per-chip wafer provenance when generated with a ``wafer_model``
    (wafer id, die coordinates, applied Vth overlay); ``None`` otherwise."""

    # -- generation ------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        n_chips: int = N_CHIPS_DEFAULT,
        seed: int = 0,
        process_model: Optional[ProcessVariationModel] = None,
        aging_model: Optional[AgingModel] = None,
        defect_model: Optional[DefectModel] = None,
        vmin_model: Optional[ScanVminModel] = None,
        wafer_model: Optional[WaferModel] = None,
        read_points: Tuple[int, ...] = READ_POINTS_HOURS,
        temperatures: Tuple[float, ...] = TEMPERATURES_C,
        design_seed: Optional[int] = None,
    ) -> "SiliconDataset":
        """Generate a complete synthetic lot.

        Distinct child seeds drive fabrication, each measurement event,
        and each test insertion, so e.g. regenerating with a different
        ``n_chips`` changes all draws coherently while the same arguments
        reproduce identical data.

        ``design_seed``, when given, pins the monitor-bank and
        parametric-bank *design* draws (sensor placement, nominal
        delays, channel definitions) to a seed independent of the lot
        seed.  Lots sharing a ``design_seed`` are the same product
        measured by the same instruments -- their feature columns are
        directly comparable -- while process, fabrication, and
        measurement draws still vary per lot.  This is what
        :class:`repro.silicon.fleet.FleetGenerator` uses to make
        cross-lot covariate comparisons meaningful; ``None`` preserves
        the historical per-lot design draw bit-for-bit.
        """
        if n_chips < 2:
            raise ValueError(f"n_chips must be >= 2, got {n_chips}")
        read_points = tuple(validate_read_point(h) for h in read_points)
        temperatures = tuple(validate_temperature(t) for t in temperatures)

        root = np.random.default_rng(seed)
        seeds = {
            name: np.random.default_rng(root.integers(0, 2**63 - 1))
            for name in (
                "process",
                "aging",
                "defects",
                "fabrication",
                "parametric",
                "monitors",
                "vmin",
                "wafer",
            )
        }

        process_model = process_model or ProcessVariationModel()
        aging_model = aging_model or AgingModel()
        defect_model = defect_model or DefectModel()
        vmin_model = vmin_model or ScanVminModel()

        process = process_model.sample(n_chips, seeds["process"])
        wafer_provenance = None
        if wafer_model is not None:
            # Wafer hierarchy is an additive overlay on the global Vth
            # shift; every downstream measurement sees it coherently.
            wafer_provenance = wafer_model.sample(n_chips, seeds["wafer"])
            process = ProcessSample(
                vth_shift=process.vth_shift + wafer_provenance.vth_overlay_v,
                leff_shift=process.leff_shift,
                leakage_factor=process.leakage_factor,
                gradient_x=process.gradient_x,
                gradient_y=process.gradient_y,
            )
        aging = aging_model.sample_amplitudes(process.vth_shift, seeds["aging"])
        defects = defect_model.sample(n_chips, seeds["defects"])
        population = ChipPopulation(process=process, aging=aging, defects=defects)

        # Monitor banks: design is part of the product.  Without a
        # design_seed the design derives from the lot seed (stable per
        # dataset, historical behaviour); with one, it derives from the
        # design seed alone so every lot of the product shares identical
        # instruments.
        fab_rng = seeds["fabrication"]
        if design_seed is not None:
            design_rng = np.random.default_rng(design_seed)
            rod_state = int(design_rng.integers(0, 2**31 - 1))
            cpd_state = int(design_rng.integers(0, 2**31 - 1))
            parametric_state = int(design_rng.integers(0, 2**31 - 1))
        else:
            rod_state = int(fab_rng.integers(0, 2**31 - 1))
            cpd_state = int(fab_rng.integers(0, 2**31 - 1))
            parametric_state = int(seeds["parametric"].integers(0, 2**31 - 1))
        rod_bank = RODSensorBank(random_state=rod_state)
        cpd_bank = CPDSensorBank(random_state=cpd_state)
        rod_bank.fabricate(process, fab_rng)
        cpd_bank.fabricate(process, defects, fab_rng)

        parametric_bank = ParametricTestBank(random_state=parametric_state)
        parametric = parametric_bank.measure(process, defects, seeds["parametric"])

        rod: Dict[int, np.ndarray] = {}
        cpd: Dict[int, np.ndarray] = {}
        for hours in read_points:
            rod[hours] = rod_bank.read(aging, hours, seeds["monitors"])
            cpd[hours] = cpd_bank.read(aging, hours, seeds["monitors"])

        vmin: Dict[Tuple[float, int], np.ndarray] = {}
        true_vmin: Dict[Tuple[float, int], np.ndarray] = {}
        for hours in read_points:
            for temperature in temperatures:
                key = (temperature, hours)
                vmin[key] = vmin_model.measure(
                    process, aging, defects, temperature, hours, seeds["vmin"]
                )
                true_vmin[key] = vmin_model.true_vmin(
                    process, aging, defects, temperature, hours
                )

        return cls(
            parametric=parametric,
            parametric_names=parametric_bank.channel_names(),
            parametric_temperatures=parametric_bank.channel_temperatures(),
            rod=rod,
            rod_names=rod_bank.sensor_names(),
            cpd=cpd,
            cpd_names=cpd_bank.sensor_names(),
            vmin=vmin,
            true_vmin=true_vmin,
            population=population,
            read_points=read_points,
            temperatures=temperatures,
            wafer=wafer_provenance,
        )

    # -- shape helpers -----------------------------------------------------------
    @property
    def n_chips(self) -> int:
        return int(self.parametric.shape[0])

    def target(self, temperature_c: float, hours: int) -> np.ndarray:
        """Measured SCAN Vmin labels at a corner and read point (V)."""
        key = (validate_temperature(temperature_c), validate_read_point(hours))
        return self.vmin[key]

    def features(
        self,
        hours: int,
        include_parametric: bool = True,
        include_onchip: bool = True,
    ) -> Tuple[np.ndarray, List[str]]:
        """Feature matrix for predicting Vmin at read point ``hours``.

        Implements the paper's Fig. 1 feature-availability rule
        (Section IV-B):

        * at time 0 (production test): parametric data and on-chip data
          collected at time 0;
        * at later read points (simulated in-field): parametric data from
          time 0 plus on-chip monitor data from *all* read points up to
          and including ``hours`` -- parametric retest is impossible once
          parts are deployed.

        Returns the matrix and the aligned column names.
        """
        hours = validate_read_point(hours)
        if not include_parametric and not include_onchip:
            raise ValueError("at least one feature block must be included")
        blocks: List[np.ndarray] = []
        names: List[str] = []
        if include_parametric:
            blocks.append(self.parametric)
            names.extend(self.parametric_names)
        if include_onchip:
            for past in self.read_points:
                if past > hours:
                    break
                blocks.append(self.rod[past])
                names.extend(f"{name}@{past}h" for name in self.rod_names)
                blocks.append(self.cpd[past])
                names.extend(f"{name}@{past}h" for name in self.cpd_names)
        return np.hstack(blocks), names

    def defect_mask(self) -> np.ndarray:
        """Latent defect indicator per chip (evaluation only)."""
        return self.population.defects.mask.copy()

    def summary(self) -> str:
        """Human-readable one-paragraph description of the lot."""
        n_defective = self.population.defects.n_defective
        vmin_room = self.vmin[(25.0, 0)]
        return (
            f"SiliconDataset: {self.n_chips} chips, "
            f"{self.parametric.shape[1]} parametric channels, "
            f"{len(self.rod_names)} ROD + {len(self.cpd_names)} CPD monitors "
            f"at read points {self.read_points} h; "
            f"{n_defective} latent-defective chips; "
            f"SCAN Vmin @25C/0h: median {np.median(vmin_room)*1e3:.1f} mV, "
            f"range [{vmin_room.min()*1e3:.1f}, {vmin_room.max()*1e3:.1f}] mV."
        )
