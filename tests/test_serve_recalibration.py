"""Tests for drift-triggered recalibration and republication."""

import numpy as np
import pytest

from repro.models import QuantileLinearRegression
from repro.robust import RobustVminFlow
from repro.serve import (
    DriftRecalibrator,
    ModelRegistry,
    ReasonCode,
    VminServingService,
)

N_PARAMETRIC = 4
N_MONITORS = 8
D = N_PARAMETRIC + N_MONITORS
N_TRAIN = 200


def _make_data(n=600, seed=23):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, D))
    w = np.concatenate(
        [np.array([2.0, -1.0, 1.5, 1.0]), np.full(N_MONITORS, 0.3)]
    )
    y = X @ w + rng.normal(scale=0.5, size=n)
    return X, y


def _started_service(tmp_path, seed=23):
    X, y = _make_data(seed=seed)
    flow = RobustVminFlow(
        base_model=QuantileLinearRegression(),
        alpha=0.1,
        random_state=0,
        monitor_min_observations=10,
        monitor_window=20,
    ).fit(
        X[:N_TRAIN],
        y[:N_TRAIN],
        fallback_columns=list(range(N_PARAMETRIC)),
        monitor_columns=list(range(N_PARAMETRIC, D)),
    )
    registry = ModelRegistry(tmp_path / "registry")
    registry.publish(flow)
    service = VminServingService(registry)
    service.start()
    return service, X[N_TRAIN:], y[N_TRAIN:]


class TestTrigger:
    def test_min_labels_validated(self, tmp_path):
        service, _, _ = _started_service(tmp_path)
        with pytest.raises(ValueError, match="min_labels"):
            DriftRecalibrator(service, min_labels=0)

    def test_empty_ingest_is_noop(self, tmp_path):
        service, _, _ = _started_service(tmp_path)
        recalibrator = DriftRecalibrator(service, min_labels=1)
        assert recalibrator.ingest(np.empty((0, D)), np.empty(0)) is None
        assert recalibrator.events_ == []
        assert service.registry.versions() == ["v0001"]

    def test_no_republish_without_drift(self, tmp_path):
        service, Xh, _ = _started_service(tmp_path)
        recalibrator = DriftRecalibrator(service, min_labels=20)
        # Labels at the served interval midpoints: coverage is 100% by
        # construction, so the monitor can never alarm.
        for start in range(0, 100, 10):
            batch = Xh[start : start + 10]
            prediction = service.served_model.predict_interval(batch)
            recalibrator.ingest(
                batch, (prediction.lower + prediction.upper) / 2.0
            )
        # Plenty of labels, but the flow never went adaptive: the
        # registry must not fill up with pointless republications.
        assert recalibrator.events_ == []
        assert service.registry.versions() == ["v0001"]


class TestRepublication:
    def _drive_drift(self, tmp_path, min_labels=40):
        service, Xh, yh = _started_service(tmp_path)
        recalibrator = DriftRecalibrator(service, min_labels=min_labels)
        shifted = yh + 2.0
        events = []
        for start in range(0, 300, 10):
            event = recalibrator.ingest(
                Xh[start : start + 10], shifted[start : start + 10]
            )
            if event is not None:
                events.append(event)
        return service, recalibrator, events

    def test_drift_republishes_with_lineage(self, tmp_path):
        service, recalibrator, events = self._drive_drift(tmp_path)
        assert events, "sustained drift never triggered a republication"
        first = events[0]
        assert first.version == "v0002"
        assert first.parent == "v0001"
        assert first.n_labels >= recalibrator.min_labels
        described = service.registry.describe(first.version)
        assert described.reason == "recalibrated"
        assert described.parent == "v0001"
        assert described.manifest["metadata"]["alpha_t"] == pytest.approx(
            first.alpha_t
        )

    def test_service_hot_swaps_onto_republished_version(self, tmp_path):
        service, _, events = self._drive_drift(tmp_path)
        assert service.model_version == events[-1].version
        assert service.model_version in service.verified_versions_
        assert service.health.history(ReasonCode.RECALIBRATED)
        assert service.health.history(ReasonCode.HOT_SWAP)

    def test_label_budget_resets_between_events(self, tmp_path):
        _, recalibrator, events = self._drive_drift(tmp_path, min_labels=40)
        # Each event must stand on its own fresh evidence, so between
        # consecutive republications at least min_labels accumulated.
        assert all(e.n_labels >= 40 for e in events)
        # Immediately after the last event the budget is spent.
        assert recalibrator.maybe_republish() is None

    def test_event_describe_is_readable(self, tmp_path):
        _, _, events = self._drive_drift(tmp_path)
        line = events[0].describe()
        assert "v0001 -> v0002" in line
        assert "alpha_t" in line
