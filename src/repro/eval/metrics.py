"""Scalar evaluation metrics for point and region prediction.

Point metrics (paper Section IV-B): coefficient of determination
:math:`R^2` and root mean squared error.  Region metrics: average
interval length and empirical coverage (the two columns of Table III),
plus the coverage-width criterion that combines them for ablation
rankings, and the pinball score for quantile-model diagnostics.
"""

from __future__ import annotations

import numpy as np

from repro.core.intervals import PredictionIntervals
from repro.models.losses import pinball_loss

__all__ = [
    "coverage_width_criterion",
    "empirical_coverage",
    "mean_interval_width",
    "pinball_score",
    "r2_score",
    "rmse",
]


def _check_pair(y_true: np.ndarray, y_pred: np.ndarray):
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.ndim != 1 or y_true.shape != y_pred.shape:
        raise ValueError(
            f"y_true and y_pred must be 1-D with equal shape, got "
            f"{y_true.shape} and {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("metrics need at least one sample")
    return y_true, y_pred


def r2_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination.

    1 is perfect, 0 matches predicting the mean, negative is worse than
    the mean.  A constant target yields 1.0 only for an exact match.
    """
    y_true, y_pred = _check_pair(y_true, y_pred)
    residual = float(np.sum((y_true - y_pred) ** 2))
    total = float(np.sum((y_true - y_true.mean()) ** 2))
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean squared error, in the units of the target."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def _as_intervals(intervals) -> PredictionIntervals:
    if isinstance(intervals, PredictionIntervals):
        return intervals
    if isinstance(intervals, tuple) and len(intervals) == 2:
        return PredictionIntervals(*intervals)
    raise TypeError(
        "intervals must be a PredictionIntervals or a (lower, upper) tuple, "
        f"got {type(intervals).__name__}"
    )


def empirical_coverage(intervals, y_true: np.ndarray) -> float:
    """Fraction of targets inside their interval (Table III "Coverage")."""
    return _as_intervals(intervals).coverage(np.asarray(y_true, dtype=np.float64))


def mean_interval_width(intervals) -> float:
    """Average interval length (Table III "Length")."""
    return _as_intervals(intervals).mean_width


def coverage_width_criterion(
    intervals, y_true: np.ndarray, alpha: float = 0.1, eta: float = 30.0
) -> float:
    """Coverage-width criterion (CWC), lower is better.

    ``mean_width * (1 + exp(eta * (target − coverage)))`` when coverage
    falls short of ``1 − alpha``, else just the width: a single ranking
    number that punishes under-coverage exponentially, handy for ablation
    summaries where scanning two columns is awkward.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if eta <= 0:
        raise ValueError(f"eta must be positive, got {eta}")
    intervals = _as_intervals(intervals)
    coverage = intervals.coverage(np.asarray(y_true, dtype=np.float64))
    width = intervals.mean_width
    shortfall = (1.0 - alpha) - coverage
    if shortfall <= 0:
        return width
    return width * (1.0 + float(np.exp(eta * shortfall)))


def pinball_score(y_true: np.ndarray, y_pred: np.ndarray, quantile: float) -> float:
    """Mean pinball loss of a quantile prediction (lower is better)."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return pinball_loss(y_true, y_pred, quantile)
