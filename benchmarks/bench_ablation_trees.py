"""Ablation -- CatBoost tree count (the paper's 1000 -> 100 reduction).

Section IV-C.3: "The default number is 1000, which seems too large for
our small dataset including 156 chips, and potentially causes
over-fitting.  Therefore, we reduce it to 100."  This ablation measures
what that choice buys on our lot: point-prediction R² and the
conformalized interval length/coverage as the boosting budget grows.

Expected shape: R² saturates (or dips) beyond ~100 rounds while fit cost
grows linearly; the CQR interval length is flat-to-worse at large
budgets because the conformal correction absorbs whatever the extra
trees overfit.  (Coverage is guaranteed at every budget -- the point of
CQR is that the tree count cannot break it.)
"""

from __future__ import annotations

import dataclasses
import time

from conftest import publish

from repro.eval.experiments import run_point_experiment, run_region_experiment
from repro.eval.reporting import format_table

TREE_BUDGETS = (25, 100, 400)


def _render(dataset, profile) -> str:
    rows = []
    for n_trees in TREE_BUDGETS:
        tuned = dataclasses.replace(profile, catboost_estimators=n_trees)
        start = time.perf_counter()
        point = run_point_experiment(
            dataset, "CatBoost", 25.0, 0, profile=tuned
        )
        region = run_region_experiment(
            dataset, "CQR CatBoost", 25.0, 0, profile=tuned
        )
        seconds = time.perf_counter() - start
        rows.append(
            [
                n_trees,
                point.r2,
                point.rmse,
                region.width,
                region.coverage * 100.0,
                seconds,
            ]
        )
    return format_table(
        ["Trees", "R^2", "RMSE (mV)", "CQR len (mV)", "CQR cov (%)", "Wall (s)"],
        rows,
        title=(
            "Ablation | CatBoost boosting budget (25C, 0h; paper reduces "
            "1000 -> 100)"
        ),
    )


def test_ablation_catboost_trees(benchmark, dataset, profile):
    text = benchmark.pedantic(_render, args=(dataset, profile), rounds=1, iterations=1)
    publish("ablation_catboost_trees", text)
