"""Burn-in / ATE flow simulator: the measurement *process* view.

:class:`~repro.silicon.dataset.SiliconDataset` gives the assembled
matrices; this module simulates the flow that produces them
(paper Section IV-A): chips cycle through

1. dynamic Dhrystone stress at elevated voltage in the burn-in oven,
2. a pause at each scheduled read point,
3. SCAN Vmin test on ATE at -45/25/125 degC,
4. parametric tests on ATE (time-zero insertion only),
5. ROD readout on ATE at 25 degC and CPD readout in-situ at 80 degC,

emitting a tidy chronological log of :class:`MeasurementRecord` entries.
The log form is what a test-floor data pipeline actually sees, and the
examples use it to demonstrate ingesting flow data into the prediction
framework.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.silicon.constants import (
    CPD_TEMPERATURE_C,
    READ_POINTS_HOURS,
    ROD_TEMPERATURE_C,
    STRESS_TEMPERATURE_C,
    STRESS_VOLTAGE_V,
    TEMPERATURES_C,
)
from repro.silicon.dataset import SiliconDataset

__all__ = ["BurnInFlowSimulator", "FlowLog", "MeasurementRecord"]


@dataclass(frozen=True)
class MeasurementRecord:
    """One measurement event in the burn-in flow log.

    Attributes
    ----------
    read_point_hours:
        Stress time at which the measurement was taken.
    insertion:
        Which step produced it: ``"scan_vmin"``, ``"parametric"``,
        ``"rod"``, or ``"cpd"``.
    temperature_c:
        Test temperature of the insertion.
    chip_index:
        Chip identifier within the lot.
    channel:
        Test/sensor channel name.
    value:
        Measured value (V for scan_vmin, ps for monitors, channel units
        for parametric).
    """

    read_point_hours: int
    insertion: str
    temperature_c: float
    chip_index: int
    channel: str
    value: float


class BurnInFlowSimulator:
    """Replay a :class:`SiliconDataset` as a chronological measurement log.

    Parameters
    ----------
    dataset:
        The generated lot to replay.
    include_parametric / include_monitors / include_vmin:
        Which insertions to emit (a log with only monitors approximates
        the in-field telemetry stream).
    """

    def __init__(
        self,
        dataset: SiliconDataset,
        include_parametric: bool = True,
        include_monitors: bool = True,
        include_vmin: bool = True,
    ) -> None:
        self.dataset = dataset
        self.include_parametric = include_parametric
        self.include_monitors = include_monitors
        self.include_vmin = include_vmin

    @property
    def stress_conditions(self) -> Tuple[float, float]:
        """(voltage V, temperature degC) applied between read points."""
        return STRESS_VOLTAGE_V, STRESS_TEMPERATURE_C

    def schedule(self) -> List[Tuple[int, str]]:
        """The ordered (read point, insertion) plan of the flow."""
        plan: List[Tuple[int, str]] = []
        for hours in self.dataset.read_points:
            if self.include_vmin:
                plan.append((hours, "scan_vmin"))
            if self.include_parametric and hours == 0:
                plan.append((hours, "parametric"))
            if self.include_monitors:
                plan.append((hours, "rod"))
                plan.append((hours, "cpd"))
        return plan

    def run(self) -> Iterator[MeasurementRecord]:
        """Yield every measurement record in flow order."""
        data = self.dataset
        for hours, insertion in self.schedule():
            if insertion == "scan_vmin":
                for temperature in data.temperatures:
                    values = data.vmin[(temperature, hours)]
                    for chip, value in enumerate(values):
                        yield MeasurementRecord(
                            read_point_hours=hours,
                            insertion="scan_vmin",
                            temperature_c=temperature,
                            chip_index=chip,
                            channel=f"scan_vmin_{int(temperature)}C",
                            value=float(value),
                        )
            elif insertion == "parametric":
                temps = data.parametric_temperatures
                for column, name in enumerate(data.parametric_names):
                    for chip in range(data.n_chips):
                        yield MeasurementRecord(
                            read_point_hours=hours,
                            insertion="parametric",
                            temperature_c=float(temps[column]),
                            chip_index=chip,
                            channel=name,
                            value=float(data.parametric[chip, column]),
                        )
            elif insertion == "rod":
                block = data.rod[hours]
                for column, name in enumerate(data.rod_names):
                    for chip in range(data.n_chips):
                        yield MeasurementRecord(
                            read_point_hours=hours,
                            insertion="rod",
                            temperature_c=ROD_TEMPERATURE_C,
                            chip_index=chip,
                            channel=name,
                            value=float(block[chip, column]),
                        )
            elif insertion == "cpd":
                block = data.cpd[hours]
                for column, name in enumerate(data.cpd_names):
                    for chip in range(data.n_chips):
                        yield MeasurementRecord(
                            read_point_hours=hours,
                            insertion="cpd",
                            temperature_c=CPD_TEMPERATURE_C,
                            chip_index=chip,
                            channel=name,
                            value=float(block[chip, column]),
                        )

    def to_arrays(self) -> "FlowLog":
        """Materialise the log into column arrays for bulk analysis."""
        hours: List[int] = []
        insertions: List[str] = []
        temperatures: List[float] = []
        chips: List[int] = []
        channels: List[str] = []
        values: List[float] = []
        for record in self.run():
            hours.append(record.read_point_hours)
            insertions.append(record.insertion)
            temperatures.append(record.temperature_c)
            chips.append(record.chip_index)
            channels.append(record.channel)
            values.append(record.value)
        return FlowLog(
            read_point_hours=np.asarray(hours),
            insertion=np.asarray(insertions),
            temperature_c=np.asarray(temperatures),
            chip_index=np.asarray(chips),
            channel=np.asarray(channels),
            value=np.asarray(values),
        )


@dataclass(frozen=True)
class FlowLog:
    """Columnar form of a burn-in measurement log."""

    read_point_hours: np.ndarray
    insertion: np.ndarray
    temperature_c: np.ndarray
    chip_index: np.ndarray
    channel: np.ndarray
    value: np.ndarray

    def __len__(self) -> int:
        return int(self.value.shape[0])

    def select(self, **criteria) -> "FlowLog":
        """Filter rows by exact match on any column, e.g.
        ``log.select(insertion="rod", read_point_hours=24)``."""
        mask = np.ones(len(self), dtype=bool)
        for column, wanted in criteria.items():
            if not hasattr(self, column):
                raise ValueError(f"unknown log column {column!r}")
            mask &= getattr(self, column) == wanted
        return FlowLog(
            read_point_hours=self.read_point_hours[mask],
            insertion=self.insertion[mask],
            temperature_c=self.temperature_c[mask],
            chip_index=self.chip_index[mask],
            channel=self.channel[mask],
            value=self.value[mask],
        )
