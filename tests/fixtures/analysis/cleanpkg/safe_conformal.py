"""Safe conformal patterns that shape-match REP301/REP302."""


def proper_split_cp(model, X, y, split_train_calibration, rng):
    """The textbook split-CP flow: fit on train, calibrate on cal."""
    train_idx, cal_idx = split_train_calibration(len(y), 0.25, rng)
    model.fit(X[train_idx], y[train_idx])  # train rows only: fine
    X_cal = X[cal_idx]
    y_cal = y[cal_idx]
    model.calibrate(X_cal, y_cal)  # calibrate() is the intended consumer
    return model


def scores_into_quantile(model, y_cal, conformal_quantile, alpha):
    """Calibration scores feeding quantile math, not fitting."""
    scores = [abs(value) for value in y_cal]
    model.calibration_scores_ = scores
    return conformal_quantile(scores, alpha)


def refit_then_recalibrate(model, X_new, y_new):
    """Refitting is fine when recalibration follows."""
    model.calibrate(X_new, y_new)
    model.fit(X_new, y_new)
    model.calibrate(X_new, y_new)  # recalibrated: scores are fresh again
    return model
