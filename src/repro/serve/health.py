"""Serving health: readiness states, fallback levels, audited transitions.

A serving process is useful to its callers only if it can answer two
questions honestly: *should you send me traffic?* (readiness) and *how
much should you trust what I return?* (degradation).  This module keeps
both answers in one auditable place:

* :class:`ServiceState` -- the readiness/liveness state machine
  (``STARTING -> READY <-> DEGRADED -> DRAINING``), with the legal
  edges enforced so a bug cannot teleport a draining service back to
  ready without an explicit recovery path,
* :class:`FallbackLevel` -- how far down the model fallback chain the
  service currently sits (current model, last-known-good registry
  version, parametric fallback, outright rejection),
* :class:`ReasonCode` -- the closed vocabulary of *why* a transition or
  downgrade happened; every state change and every fallback step is
  recorded as a :class:`StateTransition` carrying one of these codes,
  which is what lets the soak harness assert "every downgrade has a
  recorded reason" instead of trusting log grep.

The machine itself holds no model -- :class:`~repro.serve.service.
VminServingService` drives it from registry and monitor verdicts.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

__all__ = [
    "FallbackLevel",
    "HealthStateMachine",
    "IllegalTransition",
    "ReasonCode",
    "ServiceState",
    "StateTransition",
]


class ServiceState(enum.Enum):
    """Readiness of the serving process, coarsest first.

    ``STARTING``: loading/verifying a model; not accepting traffic.
    ``READY``: serving the current model at nominal quality.
    ``DEGRADED``: still serving, but below nominal -- coverage alarm in
    force, or running on a rollback / parametric fallback.
    ``DRAINING``: finishing in-flight requests, admitting nothing new;
    terminal.
    """

    STARTING = "starting"
    READY = "ready"
    DEGRADED = "degraded"
    DRAINING = "draining"


class FallbackLevel(enum.IntEnum):
    """Position in the model fallback chain, best (0) to worst (3).

    Ordered so callers can compare: any level above ``CURRENT`` is a
    downgrade, and :class:`~repro.serve.service.VminServingService`
    walks the chain strictly downward within one recovery attempt.
    """

    CURRENT = 0
    LAST_KNOWN_GOOD = 1
    PARAMETRIC = 2
    REJECT = 3


class ReasonCode(enum.Enum):
    """Why a state change or fallback step happened -- the audit vocabulary.

    A closed enum rather than free-form strings so the soak harness and
    CI can assert exact reasons; ``detail`` on the transition carries
    the human-readable specifics.
    """

    STARTUP_COMPLETE = "startup_complete"
    MODEL_VERIFIED = "model_verified"
    COVERAGE_ALARM = "coverage_alarm"
    COVERAGE_RECOVERED = "coverage_recovered"
    EXCHANGEABILITY_ALARM = "exchangeability_alarm"
    COVARIATE_SHIFT = "covariate_shift"
    ARTIFACT_CORRUPT = "artifact_corrupt"
    ROLLED_BACK = "rolled_back"
    PARAMETRIC_FALLBACK = "parametric_fallback"
    RECALIBRATED = "recalibrated"
    HOT_SWAP = "hot_swap"
    OVERLOAD = "overload"
    DRAIN_REQUESTED = "drain_requested"


@dataclass(frozen=True)
class StateTransition:
    """One audited state change: edge, reason, context, wall clock.

    Attributes
    ----------
    from_state, to_state:
        The edge taken.  Self-loops are legal and used to record
        *reasons* that do not change readiness (e.g. a hot-swap while
        ``READY``).
    reason:
        The :class:`ReasonCode` that justified the edge.
    detail:
        Free-form specifics (version names, coverage figures).
    timestamp:
        ``time.time()`` at recording -- operational context only;
        ordering assertions should use list position, which is
        deterministic.
    """

    from_state: ServiceState
    to_state: ServiceState
    reason: ReasonCode
    detail: str
    timestamp: float

    def describe(self) -> str:
        """Human-readable one-line audit entry."""
        arrow = (
            f"{self.from_state.value} -> {self.to_state.value}"
            if self.from_state is not self.to_state
            else self.from_state.value
        )
        suffix = f": {self.detail}" if self.detail else ""
        return f"[{self.reason.value}] {arrow}{suffix}"


class IllegalTransition(RuntimeError):
    """A state change outside the machine's legal edge set.

    Raised instead of silently recording, because an illegal edge means
    the *service logic* is wrong -- e.g. re-admitting traffic after a
    drain -- and must fail loudly in tests rather than corrupt the
    audit trail.
    """


_LEGAL_EDGES: Dict[ServiceState, FrozenSet[ServiceState]] = {
    ServiceState.STARTING: frozenset(
        {ServiceState.STARTING, ServiceState.READY, ServiceState.DEGRADED,
         ServiceState.DRAINING}
    ),
    ServiceState.READY: frozenset(
        {ServiceState.READY, ServiceState.DEGRADED, ServiceState.DRAINING}
    ),
    ServiceState.DEGRADED: frozenset(
        {ServiceState.DEGRADED, ServiceState.READY, ServiceState.DRAINING}
    ),
    # DRAINING is terminal: only self-loops (audit entries while the
    # queue empties) are allowed.
    ServiceState.DRAINING: frozenset({ServiceState.DRAINING}),
}


class HealthStateMachine:
    """The audited readiness machine a serving process reports through.

    Starts in :attr:`ServiceState.STARTING`.  Every change goes through
    :meth:`transition`, which validates the edge against the legal set
    and appends a :class:`StateTransition` to :attr:`transitions_` --
    including self-loops, so "why are we still degraded" has an answer.
    """

    def __init__(self) -> None:
        self.state = ServiceState.STARTING
        self.transitions_: List[StateTransition] = []

    @property
    def ready(self) -> bool:
        """Whether the service should receive traffic at all."""
        return self.state in (ServiceState.READY, ServiceState.DEGRADED)

    @property
    def nominal(self) -> bool:
        """Whether the service is at full advertised quality."""
        return self.state is ServiceState.READY

    def transition(
        self, to_state: ServiceState, reason: ReasonCode, detail: str = ""
    ) -> StateTransition:
        """Take one edge, validate it, record it, return the record.

        Raises :class:`IllegalTransition` for edges outside the legal
        set (e.g. anything out of ``DRAINING``).
        """
        if to_state not in _LEGAL_EDGES[self.state]:
            raise IllegalTransition(
                f"illegal transition {self.state.value} -> {to_state.value} "
                f"(reason {reason.value})"
            )
        record = StateTransition(
            from_state=self.state,
            to_state=to_state,
            reason=reason,
            detail=detail,
            timestamp=time.time(),
        )
        self.state = to_state
        self.transitions_.append(record)
        return record

    def note(self, reason: ReasonCode, detail: str = "") -> StateTransition:
        """Record a reason without changing state (audit self-loop)."""
        return self.transition(self.state, reason, detail)

    def downgrades(self) -> Tuple[StateTransition, ...]:
        """Every recorded transition that reduced quality or readiness.

        A downgrade is an edge into ``DEGRADED``/``DRAINING`` or any
        entry whose reason is inherently a loss event (corruption,
        rollback, parametric fallback, overload, coverage alarm) -- the
        set the soak harness audits for mandatory reason codes.
        """
        loss_reasons = {
            ReasonCode.COVERAGE_ALARM,
            ReasonCode.EXCHANGEABILITY_ALARM,
            ReasonCode.COVARIATE_SHIFT,
            ReasonCode.ARTIFACT_CORRUPT,
            ReasonCode.ROLLED_BACK,
            ReasonCode.PARAMETRIC_FALLBACK,
            ReasonCode.OVERLOAD,
        }
        return tuple(
            record
            for record in self.transitions_
            if record.reason in loss_reasons
            or (
                record.to_state
                in (ServiceState.DEGRADED, ServiceState.DRAINING)
                and record.from_state is not record.to_state
            )
        )

    def history(self, reason: Optional[ReasonCode] = None) -> Tuple[StateTransition, ...]:
        """The transition log, optionally filtered to one reason code."""
        if reason is None:
            return tuple(self.transitions_)
        return tuple(r for r in self.transitions_ if r.reason is reason)
