"""Linear point and quantile regression.

The paper finds plain linear regression to be a competitive :math:`V_{min}`
point predictor (Section IV-D) and uses its pinball-loss variant as one of
the four quantile regressors underneath QR/CQR (Section IV-E).

* :class:`LinearRegression` solves ordinary least squares, optionally with
  an L2 (ridge) penalty, via an SVD-based least-squares solve that stays
  stable on the near-collinear feature sets CFS produces.
* :class:`QuantileLinearRegression` solves the exact linear program of
  Koenker & Bassett (1978) with ``scipy.optimize.linprog`` (HiGHS).  When a
  ridge penalty is requested -- useful when the LP is degenerate on tiny
  datasets -- it falls back to iteratively reweighted least squares on a
  smoothed pinball loss.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import optimize

from repro.models.base import BaseRegressor, check_fitted, check_X, check_X_y
from repro.models.losses import validate_quantile

__all__ = ["LinearRegression", "QuantileLinearRegression"]


def _add_intercept_column(X: np.ndarray) -> np.ndarray:
    return np.hstack([X, np.ones((X.shape[0], 1))])


class LinearRegression(BaseRegressor):
    """Ordinary least squares with optional ridge regularisation.

    Parameters
    ----------
    alpha:
        L2 penalty strength on the coefficients (the intercept is never
        penalised).  ``alpha=0`` gives plain OLS, solved by SVD so rank
        deficiency returns the minimum-norm solution instead of blowing up.
    fit_intercept:
        Whether to learn an intercept term.
    """

    def __init__(self, alpha: float = 0.0, fit_intercept: bool = True) -> None:
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearRegression":
        X, y = check_X_y(X, y)
        n_features = X.shape[1]
        if self.fit_intercept:
            # Centre so the ridge penalty leaves the intercept alone.
            x_mean = X.mean(axis=0)
            y_mean = float(y.mean())
            X_centered = X - x_mean
            y_centered = y - y_mean
        else:
            x_mean = np.zeros(n_features)
            y_mean = 0.0
            X_centered = X
            y_centered = y

        if self.alpha == 0.0:
            coef, *_ = np.linalg.lstsq(X_centered, y_centered, rcond=None)
        else:
            # Ridge normal equations with a Cholesky solve; the alpha*I term
            # guarantees positive definiteness.
            gram = X_centered.T @ X_centered + self.alpha * np.eye(n_features)
            coef = np.linalg.solve(gram, X_centered.T @ y_centered)

        self.coef_ = coef
        self.intercept_ = y_mean - float(x_mean @ coef)
        self.n_features_in_ = n_features
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "coef_")
        X = check_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.n_features_in_}"
            )
        return X @ self.coef_ + self.intercept_


class QuantileLinearRegression(BaseRegressor):
    """Linear quantile regression minimising the pinball loss of Eq. (5).

    Parameters
    ----------
    quantile:
        Target quantile ``q`` in (0, 1).
    alpha:
        Optional L2 penalty.  ``alpha=0`` (default) solves the exact LP
        formulation; ``alpha>0`` switches to smoothed-pinball IRLS because
        the ridge term is not expressible in an LP.
    fit_intercept:
        Whether to learn an intercept term (never penalised).
    max_iter, tol:
        IRLS iteration controls (only used when ``alpha > 0``).
    """

    def __init__(
        self,
        quantile: float = 0.5,
        alpha: float = 0.0,
        fit_intercept: bool = True,
        max_iter: int = 100,
        tol: float = 1e-8,
    ) -> None:
        self.quantile = validate_quantile(quantile)
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: float = 0.0

    # -- exact LP ---------------------------------------------------------
    def _fit_linprog(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Solve min Σ q·u⁺ + (1−q)·u⁻ s.t. Xβ + u⁺ − u⁻ = y, u± ≥ 0.

        β is split into positive/negative parts so all LP variables are
        non-negative.  Returns the stacked coefficient vector (including the
        intercept column if present).
        """
        n_samples, n_features = X.shape
        q = self.quantile
        # Variables: [beta+ (p), beta- (p), u+ (n), u- (n)]
        cost = np.concatenate(
            [
                np.zeros(2 * n_features),
                np.full(n_samples, q),
                np.full(n_samples, 1.0 - q),
            ]
        )
        identity = np.eye(n_samples)
        equality_lhs = np.hstack([X, -X, identity, -identity])
        result = optimize.linprog(
            cost,
            A_eq=equality_lhs,
            b_eq=y,
            bounds=[(0, None)] * cost.size,
            method="highs",
        )
        if not result.success:
            raise RuntimeError(f"quantile regression LP failed: {result.message}")
        beta_pos = result.x[:n_features]
        beta_neg = result.x[n_features : 2 * n_features]
        return beta_pos - beta_neg

    # -- smoothed IRLS ----------------------------------------------------
    def _fit_irls(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Ridge-penalised smoothed pinball via iteratively reweighted LS.

        Uses the well-known identity that the pinball loss equals an
        asymmetrically weighted absolute loss, approximated by weighted
        least squares with weights ``w_i = a_i / max(|r_i|, eps)`` where
        ``a_i`` is ``q`` or ``1-q`` by residual sign.
        """
        n_features = X.shape[1]
        smoothing = 1e-6
        penalty = self.alpha * np.eye(n_features)
        if self.fit_intercept:
            penalty[-1, -1] = 0.0  # the intercept column is appended last
        coef = np.linalg.lstsq(X, y, rcond=None)[0]
        for _ in range(self.max_iter):
            residual = y - X @ coef
            asymmetric = np.where(residual >= 0, self.quantile, 1.0 - self.quantile)
            weights = asymmetric / np.maximum(np.abs(residual), smoothing)
            weighted_X = X * weights[:, None]
            gram = X.T @ weighted_X + penalty
            new_coef = np.linalg.solve(gram, weighted_X.T @ y)
            if np.max(np.abs(new_coef - coef)) < self.tol:
                coef = new_coef
                break
            coef = new_coef
        return coef

    def fit(self, X: np.ndarray, y: np.ndarray) -> "QuantileLinearRegression":
        X, y = check_X_y(X, y)
        self.n_features_in_ = X.shape[1]
        design = _add_intercept_column(X) if self.fit_intercept else X
        if self.alpha == 0.0:
            coef = self._fit_linprog(design, y)
        else:
            coef = self._fit_irls(design, y)
        if self.fit_intercept:
            self.coef_ = coef[:-1]
            self.intercept_ = float(coef[-1])
        else:
            self.coef_ = coef
            self.intercept_ = 0.0
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "coef_")
        X = check_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features, model was fitted with "
                f"{self.n_features_in_}"
            )
        return X @ self.coef_ + self.intercept_
