"""Tests for the Adam and SGD optimisers."""

import numpy as np
import pytest

from repro.models.optim import SGD, Adam


def _minimise(optimizer, steps=500):
    """Drive ``f(w) = ||w - target||^2`` to its minimum."""
    target = np.array([1.0, -2.0, 3.0])
    w = np.zeros(3)
    for _ in range(steps):
        grad = 2.0 * (w - target)
        optimizer.step([w], [grad])
    return w, target


class TestAdam:
    def test_converges_on_quadratic(self):
        w, target = _minimise(Adam(learning_rate=0.05))
        np.testing.assert_allclose(w, target, atol=1e-2)

    def test_first_step_magnitude_is_learning_rate(self):
        # Adam's bias-corrected first step has magnitude ~lr regardless of
        # gradient scale.
        opt = Adam(learning_rate=0.01)
        w = np.array([0.0])
        opt.step([w], [np.array([1e6])])
        assert abs(w[0]) == pytest.approx(0.01, rel=1e-3)

    def test_updates_in_place(self):
        opt = Adam()
        w = np.zeros(2)
        ref = w
        opt.step([w], [np.ones(2)])
        assert ref is w and not np.all(w == 0)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="parameters"):
            Adam().step([np.zeros(1)], [np.zeros(1), np.zeros(1)])

    def test_rejects_changed_parameter_count(self):
        opt = Adam()
        opt.step([np.zeros(1)], [np.ones(1)])
        with pytest.raises(ValueError, match="length changed"):
            opt.step([np.zeros(1), np.zeros(1)], [np.ones(1), np.ones(1)])

    def test_reset_clears_state(self):
        opt = Adam()
        w = np.zeros(1)
        opt.step([w], [np.ones(1)])
        opt.reset()
        opt.step([np.zeros(2)], [np.ones(2)])  # no shape complaint after reset

    @pytest.mark.parametrize("lr", [0.0, -1.0])
    def test_rejects_bad_learning_rate(self, lr):
        with pytest.raises(ValueError, match="learning_rate"):
            Adam(learning_rate=lr)

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError, match="betas"):
            Adam(beta1=1.0)


class TestSGD:
    def test_converges_on_quadratic(self):
        w, target = _minimise(SGD(learning_rate=0.05), steps=300)
        np.testing.assert_allclose(w, target, atol=1e-3)

    def test_momentum_accelerates(self):
        plain, target = _minimise(SGD(learning_rate=0.01), steps=50)
        momentum, _ = _minimise(SGD(learning_rate=0.01, momentum=0.9), steps=50)
        assert np.linalg.norm(momentum - target) < np.linalg.norm(plain - target)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError, match="momentum"):
            SGD(momentum=1.0)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            SGD().step([np.zeros(1)], [])

    def test_reset_clears_velocity(self):
        opt = SGD(momentum=0.9)
        opt.step([np.zeros(1)], [np.ones(1)])
        opt.reset()
        opt.step([np.zeros(3)], [np.ones(3)])
