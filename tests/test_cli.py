"""Tests for the ``python -m repro`` command-line interface."""

import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.runtime.artifacts import verify_artifact


class TestGenerate:
    def test_generates_and_saves(self, tmp_path, capsys):
        path = tmp_path / "lot.npz"
        code = main(["generate", str(path), "--chips", "20", "--seed", "3"])
        assert code == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "20 chips" in out and "measurements written" in out

    def test_flow_csv_option(self, tmp_path, capsys):
        path = tmp_path / "lot.npz"
        csv_path = tmp_path / "flow.csv"
        code = main(
            [
                "generate",
                str(path),
                "--chips",
                "10",
                "--flow-csv",
                str(csv_path),
            ]
        )
        assert code == 0
        assert csv_path.exists()


class TestGenerateErrors:
    def test_chips_below_minimum_is_usage_error(self, tmp_path, capsys):
        code = main(["generate", str(tmp_path / "lot.npz"), "--chips", "1"])
        assert code == 2
        assert "--chips must be >= 2" in capsys.readouterr().err

    def test_chips_not_an_integer_is_usage_error(self, tmp_path, capsys):
        code = main(["generate", str(tmp_path / "lot.npz"), "--chips", "many"])
        assert code == 2
        assert "invalid" in capsys.readouterr().err

    def test_negative_seed_is_usage_error(self, tmp_path, capsys):
        code = main(["generate", str(tmp_path / "lot.npz"), "--seed=-3"])
        assert code == 2
        assert "--seed must be a non-negative integer" in capsys.readouterr().err

    def test_unwritable_output_is_error_not_traceback(self, tmp_path, capsys):
        target = tmp_path / "no" / "such" / "dir" / "lot.npz"
        code = main(["generate", str(target), "--chips", "10"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestInfoErrors:
    def test_missing_dataset_is_error_not_traceback(self, tmp_path, capsys):
        code = main(["info", str(tmp_path / "absent.npz")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_non_archive_dataset_is_error(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.npz"
        bogus.write_text("this is not a zip archive")
        code = main(["info", str(bogus)])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestPredictErrors:
    def test_missing_dataset_is_error(self, tmp_path, capsys):
        code = main(["predict", "--dataset", str(tmp_path / "absent.npz")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_negative_seed_is_usage_error(self, capsys):
        code = main(["predict", "--seed=-1"])
        assert code == 2
        capsys.readouterr()


class TestInfo:
    def test_describes_saved_lot(self, tmp_path, capsys):
        path = tmp_path / "lot.npz"
        main(["generate", str(path), "--chips", "12"])
        capsys.readouterr()
        code = main(["info", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "chips        : 12" in out
        assert "Vmin @" in out


class TestPredict:
    def test_predict_on_saved_lot(self, tmp_path, capsys):
        path = tmp_path / "lot.npz"
        main(["generate", str(path), "--chips", "80", "--seed", "1"])
        capsys.readouterr()
        code = main(
            [
                "predict",
                "--dataset",
                str(path),
                "--trees",
                "10",
                "--temperature",
                "25",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "coverage" in out and "mV" in out

    def test_bad_read_point_is_error(self, tmp_path, capsys):
        path = tmp_path / "lot.npz"
        main(["generate", str(path), "--chips", "10"])
        capsys.readouterr()
        code = main(["predict", "--dataset", str(path), "--hours", "77"])
        assert code == 2
        assert "read point" in capsys.readouterr().err

    def test_bad_temperature_is_error(self, tmp_path, capsys):
        path = tmp_path / "lot.npz"
        main(["generate", str(path), "--chips", "10"])
        capsys.readouterr()
        code = main(
            ["predict", "--dataset", str(path), "--temperature", "60", "--trees", "5"]
        )
        assert code == 2

    def test_bad_holdout_is_error(self, tmp_path, capsys):
        path = tmp_path / "lot.npz"
        main(["generate", str(path), "--chips", "10"])
        capsys.readouterr()
        code = main(
            ["predict", "--dataset", str(path), "--holdout", "0.99", "--trees", "5"]
        )
        assert code == 2

    def test_tiny_calibration_is_friendly_error(self, tmp_path, capsys):
        path = tmp_path / "lot.npz"
        main(["generate", str(path), "--chips", "20"])
        capsys.readouterr()
        code = main(["predict", "--dataset", str(path), "--trees", "5"])
        assert code == 2
        assert "too small" in capsys.readouterr().err


@pytest.fixture(scope="module")
def cli_lot(tmp_path_factory):
    """A small saved lot shared by the grid CLI tests."""
    path = tmp_path_factory.mktemp("cli-lot") / "lot.npz"
    assert main(["generate", str(path), "--chips", "50", "--seed", "7"]) == 0
    return path


def _grid_args(cli_lot, *extra):
    return [
        "grid",
        "--dataset",
        str(cli_lot),
        "--names",
        "LR",
        "--profile",
        "smoke",
        *extra,
    ]


class TestGridCommand:
    def test_smoke_grid_runs(self, cli_lot, capsys):
        code = main(_grid_args(cli_lot))
        assert code == 0
        out = capsys.readouterr().out
        assert "1/1 cells ok" in out and "R2" in out

    def test_region_kind(self, cli_lot, capsys):
        # alpha=0.5 keeps the tiny smoke folds' calibration sets viable.
        code = main(
            _grid_args(
                cli_lot, "--kind", "region", "--names", "CQR LR", "--alpha", "0.5"
            )
        )
        assert code == 0
        assert "coverage" in capsys.readouterr().out

    def test_output_is_verified_json(self, cli_lot, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        code = main(_grid_args(cli_lot, "--output", str(out_path)))
        assert code == 0
        verify_artifact(out_path)  # sidecar written and digests agree
        report = json.loads(out_path.read_text())
        assert report["kind"] == "point" and len(report["cells"]) == 1
        cell = report["cells"][0]
        assert cell["name"] == "LR" and len(cell["r2_per_fold"]) == 2

    def test_journal_resume_reproduces_clean_output(
        self, cli_lot, tmp_path, capsys
    ):
        clean_path = tmp_path / "clean.json"
        assert main(_grid_args(cli_lot, "--output", str(clean_path))) == 0

        journal = tmp_path / "run.jsonl"
        first_path = tmp_path / "first.json"
        args = _grid_args(
            cli_lot, "--journal", str(journal), "--output", str(first_path)
        )
        assert main(args) == 0
        assert journal.exists()

        # Resume over the complete journal: same bytes as the clean run.
        resumed_path = tmp_path / "resumed.json"
        resumed_args = _grid_args(
            cli_lot,
            "--journal",
            str(journal),
            "--resume",
            "--output",
            str(resumed_path),
        )
        assert main(resumed_args) == 0
        assert "resuming from" in capsys.readouterr().out
        assert resumed_path.read_bytes() == clean_path.read_bytes()

    def test_existing_journal_without_resume_is_error(
        self, cli_lot, tmp_path, capsys
    ):
        journal = tmp_path / "run.jsonl"
        assert main(_grid_args(cli_lot, "--journal", str(journal))) == 0
        capsys.readouterr()
        code = main(_grid_args(cli_lot, "--journal", str(journal)))
        assert code == 2
        assert "--resume" in capsys.readouterr().err

    def test_resume_without_journal_is_error(self, cli_lot, capsys):
        code = main(_grid_args(cli_lot, "--resume"))
        assert code == 2
        assert "--resume requires --journal" in capsys.readouterr().err

    def test_unknown_name_is_error(self, cli_lot, capsys):
        code = main(_grid_args(cli_lot, "--names", "NotAModel"))
        assert code == 2
        assert "unknown point names" in capsys.readouterr().err

    def test_negative_retries_is_error(self, cli_lot, capsys):
        code = main(_grid_args(cli_lot, "--max-retries", "-1"))
        assert code == 2
        assert "--max-retries" in capsys.readouterr().err

    def test_retries_and_timeout_accepted(self, cli_lot, capsys):
        code = main(
            _grid_args(
                cli_lot, "--max-retries", "2", "--task-timeout", "300", "--n-jobs", "1"
            )
        )
        assert code == 0
        assert "0 retried" in capsys.readouterr().out

    def test_tampered_dataset_is_error_not_served(self, cli_lot, tmp_path, capsys):
        # generate writes a checksum sidecar; a lot whose bytes no
        # longer match it must be refused before any model sees it.
        tampered = tmp_path / "lot.npz"
        tampered.write_bytes(b"\xff" * 16 + cli_lot.read_bytes()[16:])
        (tmp_path / "lot.npz.sha256").write_text(
            (cli_lot.parent / "lot.npz.sha256").read_text()
        )
        code = main(_grid_args(tampered))
        assert code == 2
        assert "mismatch" in capsys.readouterr().err


@pytest.fixture(scope="module")
def serve_lot(tmp_path_factory):
    """A lot big enough for the serving flow's train/calibration split."""
    path = tmp_path_factory.mktemp("serve-lot") / "lot.npz"
    assert main(["generate", str(path), "--chips", "156", "--seed", "9"]) == 0
    return path


def _serve_args(registry, serve_lot, *extra):
    return [
        "serve",
        str(registry),
        "--dataset",
        str(serve_lot),
        "--trees",
        "10",
        *extra,
    ]


class TestServeCommand:
    def test_bootstrap_publishes_and_serves_ready(
        self, serve_lot, tmp_path, capsys
    ):
        registry = tmp_path / "registry"
        code = main(_serve_args(registry, serve_lot, "--bootstrap"))
        assert code == 0
        out = capsys.readouterr().out
        assert "bootstrapped registry: published v0001" in out
        assert "served" in out and "v0001" in out
        assert "service state: ready" in out

    def test_existing_registry_serves_without_bootstrap(
        self, serve_lot, tmp_path, capsys
    ):
        registry = tmp_path / "registry"
        assert main(_serve_args(registry, serve_lot, "--bootstrap")) == 0
        capsys.readouterr()
        code = main(_serve_args(registry, serve_lot))
        assert code == 0
        out = capsys.readouterr().out
        assert "bootstrapped" not in out
        assert "served" in out and "coverage" in out

    def test_empty_registry_without_bootstrap_is_error(
        self, serve_lot, tmp_path, capsys
    ):
        code = main(_serve_args(tmp_path / "registry", serve_lot))
        assert code == 2
        assert "--bootstrap" in capsys.readouterr().err

    def test_corrupt_only_version_is_error_with_quarantine(
        self, serve_lot, tmp_path, capsys
    ):
        registry = tmp_path / "registry"
        assert main(_serve_args(registry, serve_lot, "--bootstrap")) == 0
        capsys.readouterr()
        bundle = registry / "versions" / "v0001" / "bundle.pkl"
        bundle.write_bytes(b"\x00" * 64 + bundle.read_bytes()[64:])
        code = main(_serve_args(registry, serve_lot))
        assert code == 2
        assert "no servable version" in capsys.readouterr().err
        assert (registry / "quarantine" / "v0001").is_dir()

    def test_bad_read_point_is_usage_error(self, serve_lot, tmp_path, capsys):
        code = main(
            _serve_args(tmp_path / "registry", serve_lot, "--hours", "77")
        )
        assert code == 2
        assert "read point" in capsys.readouterr().err

    def test_bad_holdout_is_usage_error(self, serve_lot, tmp_path, capsys):
        code = main(
            _serve_args(tmp_path / "registry", serve_lot, "--holdout", "0.999")
        )
        assert code == 2
        assert "holdout" in capsys.readouterr().err
