"""K-fold cross-validation for point and interval predictors.

The paper reduces randomisation influence with 4-fold cross-validation
and reports the average of each metric over the 4 testing folds, using
the same random seed for every method (Section IV-B).  The builders
passed in receive raw training data and may do anything inside (feature
selection, scaling, conformal splitting) -- the harness only guarantees
that test data never leaks into them.

Folds are mutually independent, so both harnesses accept ``n_jobs`` and
fan the fold fits out through :func:`repro.perf.parallel.parallel_map`.
Per-fold metrics are collected in fold order and each fold's model is
built from the same training slice regardless of scheduling, so results
are identical for every ``n_jobs`` (the test suite asserts this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple

import numpy as np

from repro.core.intervals import PredictionIntervals
from repro.eval.metrics import r2_score, rmse
from repro.models.base import check_random_state
from repro.perf.parallel import parallel_map

__all__ = [
    "IntervalCVResult",
    "KFold",
    "PointCVResult",
    "cross_validate_intervals",
    "cross_validate_point",
    "fold_row_subsets",
]


class KFold:
    """Deterministic shuffled K-fold splitter.

    Parameters
    ----------
    n_splits:
        Number of folds (paper: 4).
    shuffle:
        Shuffle indices before splitting; with ``shuffle=False`` folds are
        contiguous blocks.
    random_state:
        Seed for the shuffle -- sharing it across methods is what makes
        the paper's comparison fair.
    """

    def __init__(
        self,
        n_splits: int = 4,
        shuffle: bool = True,
        random_state: Optional[int] = None,
    ) -> None:
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, n_samples: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield (train_indices, test_indices) pairs."""
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = check_random_state(self.random_state)
            indices = rng.permutation(n_samples)
        fold_sizes = np.full(self.n_splits, n_samples // self.n_splits)
        fold_sizes[: n_samples % self.n_splits] += 1
        start = 0
        for size in fold_sizes:
            test = indices[start : start + size]
            train = np.concatenate([indices[:start], indices[start + size :]])
            yield train, test
            start += size


def fold_row_subsets(
    kfold: KFold, n_samples: int
) -> Tuple[Tuple[np.ndarray, np.ndarray], ...]:
    """Materialise every (train, test) index pair of a splitter.

    The splits a :class:`KFold` yields are fully determined by
    ``(n_samples, n_splits, shuffle, random_state)``, so any consumer can
    enumerate them ahead of time -- the grid engine uses this to pre-bin
    each fold's training matrix once (and ship the codes to worker
    processes) before any fold model is fitted.
    """
    return tuple(
        (train.copy(), test.copy()) for train, test in kfold.split(n_samples)
    )


@dataclass(frozen=True)
class PointCVResult:
    """Per-fold and averaged point-prediction metrics."""

    r2_per_fold: Tuple[float, ...]
    rmse_per_fold: Tuple[float, ...]

    @property
    def r2(self) -> float:
        """Mean :math:`R^2` across folds (what Fig. 2 plots)."""
        return float(np.mean(self.r2_per_fold))

    @property
    def rmse(self) -> float:
        """Mean RMSE across folds."""
        return float(np.mean(self.rmse_per_fold))

    @property
    def n_folds(self) -> int:
        return len(self.r2_per_fold)


@dataclass(frozen=True)
class IntervalCVResult:
    """Per-fold and averaged region-prediction metrics."""

    coverage_per_fold: Tuple[float, ...]
    width_per_fold: Tuple[float, ...]

    @property
    def coverage(self) -> float:
        """Mean empirical coverage across folds (Table III "Coverage")."""
        return float(np.mean(self.coverage_per_fold))

    @property
    def width(self) -> float:
        """Mean interval length across folds (Table III "Length")."""
        return float(np.mean(self.width_per_fold))

    @property
    def n_folds(self) -> int:
        return len(self.coverage_per_fold)


PointBuilder = Callable[[np.ndarray, np.ndarray], object]
IntervalBuilder = Callable[[np.ndarray, np.ndarray], object]


def cross_validate_point(
    builder: PointBuilder,
    X: np.ndarray,
    y: np.ndarray,
    kfold: KFold,
    n_jobs: Optional[int] = None,
) -> PointCVResult:
    """Evaluate a point-prediction builder with K-fold CV.

    ``builder(X_train, y_train)`` must return a fitted object exposing
    ``predict(X_test)``.  Returns per-fold :math:`R^2` and RMSE.
    ``n_jobs`` parallelises over folds (``None`` reads ``REPRO_N_JOBS``,
    defaulting to serial) without changing any metric.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)

    def run_fold(split: Tuple[np.ndarray, np.ndarray]) -> Tuple[float, float]:
        train_idx, test_idx = split
        model = builder(X[train_idx], y[train_idx])
        prediction = model.predict(X[test_idx])
        return r2_score(y[test_idx], prediction), rmse(y[test_idx], prediction)

    per_fold = parallel_map(run_fold, kfold.split(X.shape[0]), n_jobs=n_jobs)
    return PointCVResult(
        r2_per_fold=tuple(r2 for r2, _ in per_fold),
        rmse_per_fold=tuple(err for _, err in per_fold),
    )


def cross_validate_intervals(
    builder: IntervalBuilder,
    X: np.ndarray,
    y: np.ndarray,
    kfold: KFold,
    n_jobs: Optional[int] = None,
) -> IntervalCVResult:
    """Evaluate an interval-prediction builder with K-fold CV.

    ``builder(X_train, y_train)`` must return a fitted object exposing
    ``predict_interval(X_test)`` returning a
    :class:`~repro.core.intervals.PredictionIntervals` or (lower, upper).
    ``n_jobs`` parallelises over folds exactly as in
    :func:`cross_validate_point`.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)

    def run_fold(split: Tuple[np.ndarray, np.ndarray]) -> Tuple[float, float]:
        train_idx, test_idx = split
        model = builder(X[train_idx], y[train_idx])
        intervals = model.predict_interval(X[test_idx])
        if not isinstance(intervals, PredictionIntervals):
            intervals = PredictionIntervals(*intervals)
        return intervals.coverage(y[test_idx]), intervals.mean_width

    per_fold = parallel_map(run_fold, kfold.split(X.shape[0]), n_jobs=n_jobs)
    return IntervalCVResult(
        coverage_per_fold=tuple(cov for cov, _ in per_fold),
        width_per_fold=tuple(width for _, width in per_fold),
    )
