"""Train/calibration split seam (shape mirrors repro.core.split_cp)."""


def split_train_calibration(n_samples, calibration_fraction, rng):
    """Return disjoint (train_idx, cal_idx) index lists."""
    n_cal = max(1, int(n_samples * calibration_fraction))
    order = rng.permutation(n_samples)
    return order[n_cal:], order[:n_cal]
