"""Tests for scenarios, the prediction pipeline, and screening."""

import numpy as np
import pytest

from repro.core.intervals import PredictionIntervals
from repro.eval.experiments import FeatureSet
from repro.flow.pipeline import VminPredictionFlow
from repro.flow.scenarios import build_scenario
from repro.flow.screening import ScreeningDecision, SpecScreeningPolicy
from repro.models import LinearRegression, QuantileLinearRegression
from repro.silicon.constants import MIN_SPEC_V


class TestScenarios:
    def test_production_scenario(self, lot):
        scenario = build_scenario(lot, 25.0, 0)
        assert scenario.kind == "production"
        assert scenario.n_chips == 156
        assert scenario.X.shape[1] == len(scenario.feature_names)

    def test_in_field_scenario_accumulates_monitors(self, lot):
        early = build_scenario(lot, 25.0, 24)
        late = build_scenario(lot, 25.0, 1008)
        assert late.kind == "in_field"
        assert late.n_features > early.n_features

    def test_feature_set_restriction(self, lot):
        onchip = build_scenario(lot, 25.0, 0, FeatureSet.ONCHIP)
        assert all(not n.startswith("par_") for n in onchip.feature_names)

    def test_describe_mentions_corner(self, lot):
        text = build_scenario(lot, -45.0, 48).describe()
        assert "-45" in text and "48 h" in text

    def test_rejects_bad_corner(self, lot):
        with pytest.raises(ValueError):
            build_scenario(lot, 10.0, 0)


class TestVminPredictionFlow:
    def test_end_to_end_coverage(self, lot):
        X, names = lot.features(0)
        y = lot.target(25.0, 0)
        flow = VminPredictionFlow(alpha=0.1, random_state=0)
        flow.fit(X[:120], y[:120], feature_names=names)
        intervals = flow.predict_interval(X[120:])
        assert intervals.coverage(y[120:]) >= 0.75
        assert intervals.mean_width < 0.1  # volts; sane scale

    def test_selected_feature_names_exposed(self, lot):
        X, names = lot.features(0)
        y = lot.target(25.0, 0)
        flow = VminPredictionFlow(
            base_model=QuantileLinearRegression(),
            n_features=5,
            random_state=0,
        )
        flow.fit(X[:120], y[:120], feature_names=names)
        assert len(flow.selected_feature_names_) == 5
        assert set(flow.selected_feature_names_) <= set(names)

    def test_guaranteed_coverage_reported(self, lot):
        X, _ = lot.features(0)
        y = lot.target(25.0, 0)
        flow = VminPredictionFlow(alpha=0.1, random_state=0).fit(X[:100], y[:100])
        assert flow.guaranteed_coverage_ >= 0.9

    def test_conformal_correction_exposed(self, lot):
        X, _ = lot.features(0)
        y = lot.target(25.0, 0)
        flow = VminPredictionFlow(random_state=0).fit(X[:100], y[:100])
        low, high = flow.conformal_correction_
        assert np.isfinite(low) and np.isfinite(high)

    def test_rejects_non_quantile_base(self, lot):
        X, _ = lot.features(0)
        y = lot.target(25.0, 0)
        flow = VminPredictionFlow(base_model=LinearRegression())
        with pytest.raises(ValueError, match="quantile-capable"):
            flow.fit(X[:60], y[:60])

    def test_rejects_name_length_mismatch(self, lot):
        X, _ = lot.features(0)
        y = lot.target(25.0, 0)
        with pytest.raises(ValueError, match="feature names"):
            VminPredictionFlow().fit(X[:60], y[:60], feature_names=["a"])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            VminPredictionFlow().predict_interval(np.zeros((2, 2)))


class TestScreening:
    def _intervals(self, lows, highs):
        return PredictionIntervals(np.asarray(lows), np.asarray(highs))

    def test_three_way_decision(self):
        spec = 0.7
        policy = SpecScreeningPolicy(min_spec_v=spec)
        intervals = self._intervals(
            [0.60, 0.71, 0.68], [0.65, 0.75, 0.72]
        )
        decisions = policy.decide(intervals)
        assert decisions[0] == ScreeningDecision.PASS
        assert decisions[1] == ScreeningDecision.FAIL
        assert decisions[2] == ScreeningDecision.RETEST

    def test_guard_band_makes_pass_stricter(self):
        policy = SpecScreeningPolicy(min_spec_v=0.7, guard_band_v=0.02)
        intervals = self._intervals([0.60], [0.69])
        assert policy.decide(intervals)[0] == ScreeningDecision.RETEST

    def test_outcome_accounting(self):
        policy = SpecScreeningPolicy(min_spec_v=0.7)
        intervals = self._intervals(
            [0.60, 0.71, 0.68, 0.55], [0.65, 0.75, 0.72, 0.62]
        )
        truth = np.array([0.63, 0.73, 0.71, 0.72])  # chip 3: passed but failing
        outcome = policy.screen(intervals, truth)
        assert outcome.count(ScreeningDecision.PASS) == 2
        assert outcome.count(ScreeningDecision.FAIL) == 1
        assert outcome.test_time_saved == pytest.approx(0.75)
        assert outcome.underkill == pytest.approx(1 / 3)
        assert outcome.overkill == 0.0

    def test_screen_on_real_flow(self, lot):
        X, _ = lot.features(0)
        y = lot.target(-45.0, 1008)
        X_t, _ = lot.features(1008)
        flow = VminPredictionFlow(alpha=0.1, random_state=0).fit(X_t[:120], y[:120])
        intervals = flow.predict_interval(X_t[120:])
        outcome = SpecScreeningPolicy(min_spec_v=MIN_SPEC_V).screen(
            intervals, y[120:]
        )
        # Screening must save some test time without huge misclassification.
        assert 0.0 <= outcome.underkill <= 1.0
        assert outcome.test_time_saved > 0.2

    def test_rejects_mismatched_truth(self):
        policy = SpecScreeningPolicy()
        intervals = self._intervals([0.6], [0.7])
        with pytest.raises(ValueError, match="shape"):
            policy.screen(intervals, np.zeros(3))

    def test_rejects_negative_guard_band(self):
        with pytest.raises(ValueError):
            SpecScreeningPolicy(guard_band_v=-0.01)


class TestForecastScenario:
    def test_labels_come_from_future_read_point(self, lot):
        from repro.flow.scenarios import build_forecast_scenario

        scenario = build_forecast_scenario(lot, 25.0, 48, 1008)
        assert scenario.kind == "forecast"
        assert scenario.hours == 1008
        np.testing.assert_array_equal(scenario.y, lot.target(25.0, 1008))
        # Features are cut off at 48 h: parametric + 3 monitor snapshots.
        X48, _ = lot.features(48)
        np.testing.assert_array_equal(scenario.X, X48)

    def test_forecastability_with_cqr(self, lot):
        """The headline extension: a calibrated interval on NEXT-read-point
        Vmin from current telemetry still covers."""
        from repro.core import ConformalizedQuantileRegressor
        from repro.features.selection import CFSSelectedRegressor
        from repro.flow.scenarios import build_forecast_scenario

        scenario = build_forecast_scenario(lot, 25.0, 168, 504)
        y = scenario.y * 1000.0
        template = CFSSelectedRegressor(
            QuantileLinearRegression(), k=8, quantile=0.5
        )
        cqr = ConformalizedQuantileRegressor(
            template, alpha=0.1, random_state=0
        ).fit(scenario.X[:117], y[:117])
        intervals = cqr.predict_interval(scenario.X[117:])
        assert intervals.coverage(y[117:]) >= 0.7

    def test_rejects_non_causal_order(self, lot):
        from repro.flow.scenarios import build_forecast_scenario

        with pytest.raises(ValueError, match="after the feature"):
            build_forecast_scenario(lot, 25.0, 504, 48)
        with pytest.raises(ValueError, match="after the feature"):
            build_forecast_scenario(lot, 25.0, 48, 48)
