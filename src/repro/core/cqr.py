"""Conformalized Quantile Regression (paper Section III-C).

CQR combines the adaptivity of quantile regression with the coverage
guarantee of conformal prediction:

1. split the data into proper-training and calibration parts,
2. fit a quantile band (Eq. 2) at quantiles ``α/2`` and ``1 − α/2`` on
   the proper-training part,
3. compute the conformal quantile ``q̂`` of the CQR scores (Eq. 9) on the
   calibration part,
4. report ``[lower(x) − q̂, upper(x) + q̂]`` (Eq. 10).

``q̂`` can be negative (the raw band was conservative and gets *shrunk*)
or positive (the raw band under-covered and gets widened) -- the paper's
Table III shows exactly this correction turning 10-85 % QR coverage into
~90 % CQR coverage.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.calibration import conformal_quantile
from repro.core.intervals import PredictionIntervals
from repro.core.scores import cqr_score
from repro.core.split_cp import split_train_calibration
from repro.models.base import (
    BaseRegressor,
    check_fitted,
    check_random_state,
    check_X_y,
)
from repro.models.quantile import QuantileBandRegressor

__all__ = ["ConformalizedQuantileRegressor"]


class ConformalizedQuantileRegressor(BaseRegressor):
    """Split CQR around any quantile-capable template model.

    Parameters
    ----------
    estimator:
        Unfitted template with a ``quantile`` constructor parameter (e.g.
        :class:`~repro.models.linear.QuantileLinearRegression`,
        :class:`~repro.models.nn.MLPRegressor`,
        :class:`~repro.models.gbm.GradientBoostingRegressor`, or
        :class:`~repro.models.oblivious.ObliviousBoostingRegressor`).
        Two clones are trained at quantiles ``alpha/2`` and ``1 − alpha/2``.
    alpha:
        Target miscoverage (paper: 0.1).
    calibration_fraction:
        Held-out fraction for calibration (paper: 0.25).
    symmetric:
        ``True`` (paper) calibrates one shared margin from the two-sided
        score of Eq. (9).  ``False`` calibrates the lower and upper
        violations separately at level ``alpha/2`` each -- the asymmetric
        CQR variant of Romano et al., exercised by the ablations.
    band_template:
        Optional unfitted band object (``fit``/``predict_interval``,
        cloneable) used instead of building a
        :class:`~repro.models.quantile.QuantileBandRegressor` from
        ``estimator``; e.g. the package-default CatBoost band of
        :class:`~repro.models.quantile.PackageDefaultQuantileBand`.  When
        given, ``estimator`` may be ``None``.
    n_jobs:
        Concurrency for the band fit: the lo/hi quantile clones are
        independent, so ``n_jobs >= 2`` trains the pair in parallel (see
        :class:`~repro.models.quantile.QuantileBandRegressor`).  ``None``
        reads ``REPRO_N_JOBS``; calibration itself is a single quantile
        computation and always runs inline.  Ignored when
        ``band_template`` is given (the template carries its own
        concurrency configuration).
    random_state:
        Seed for the train/calibration split.
    """

    def __init__(
        self,
        estimator: Optional[BaseRegressor],
        alpha: float = 0.1,
        calibration_fraction: float = 0.25,
        symmetric: bool = True,
        band_template=None,
        n_jobs: Optional[int] = None,
        random_state: Optional[int] = None,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if estimator is None and band_template is None:
            raise ValueError("provide an estimator or a band_template")
        self.estimator = estimator
        self.alpha = alpha
        self.calibration_fraction = calibration_fraction
        self.symmetric = symmetric
        self.band_template = band_template
        self.n_jobs = n_jobs
        self.random_state = random_state
        self.band_ = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "ConformalizedQuantileRegressor":
        from repro.models.base import clone

        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        train_idx, cal_idx = split_train_calibration(
            X.shape[0], self.calibration_fraction, rng
        )
        if self.band_template is not None:
            band = clone(self.band_template)
        else:
            band = QuantileBandRegressor(
                self.estimator, alpha=self.alpha, n_jobs=self.n_jobs
            )
        band.fit(X[train_idx], y[train_idx])
        self.band_ = band

        cal_lower, cal_upper = band.predict_interval(X[cal_idx])
        y_cal = y[cal_idx]
        # The two-sided scores are stored for downstream consumers that
        # recalibrate online from the deployed model's state (see
        # AdaptiveConformalPredictor.from_fitted), whichever variant
        # computes the margins below.
        self.calibration_scores_ = cqr_score(y_cal, cal_lower, cal_upper)
        # The calibration *features* are the frozen reference window for
        # the shift defense layer: covariate sentinels compare serving
        # batches against them, and weighted recalibration estimates the
        # density ratio from them (repro.shift).  They never flow into a
        # fit -- only into shift detectors and ratio estimation.
        self.calibration_features_ = np.array(X[cal_idx])
        if self.symmetric:
            scores = self.calibration_scores_
            self.quantile_low_ = conformal_quantile(scores, self.alpha)
            self.quantile_high_ = self.quantile_low_
        else:
            # Separate one-sided corrections, each at alpha/2, which also
            # yields >= 1 - alpha marginal coverage by a union bound.
            self.quantile_low_ = conformal_quantile(cal_lower - y_cal, self.alpha / 2)
            self.quantile_high_ = conformal_quantile(y_cal - cal_upper, self.alpha / 2)
        self.n_calibration_ = int(cal_idx.size)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Midpoint of the calibrated interval (diagnostic point estimate)."""
        intervals = self.predict_interval(X)
        return intervals.midpoint

    def predict_interval(self, X: np.ndarray) -> PredictionIntervals:
        """Calibrated band ``[lower − q̂_lo, upper + q̂_hi]`` (Eq. 10)."""
        check_fitted(self, "band_")
        if not (np.isfinite(self.quantile_low_) and np.isfinite(self.quantile_high_)):
            raise RuntimeError(
                f"calibration set of size {self.n_calibration_} is too small "
                f"for alpha={self.alpha}; intervals would be infinite"
            )
        lower, upper = self.band_.predict_interval(X)
        lower = lower - self.quantile_low_
        upper = upper + self.quantile_high_
        # A strongly negative correction can push the bounds past each
        # other; the empty interval is conventionally collapsed to its
        # midpoint (it still counts as covering nothing).
        crossed = lower > upper
        if np.any(crossed):
            mid = (lower + upper) / 2.0
            lower = np.where(crossed, mid, lower)
            upper = np.where(crossed, mid, upper)
        return PredictionIntervals(lower, upper)
