"""Tests for the PredictionIntervals container."""

import numpy as np
import pytest

from repro.core.intervals import PredictionIntervals


class TestValidation:
    def test_rejects_crossed_bounds(self):
        with pytest.raises(ValueError, match="exceeds"):
            PredictionIntervals(np.array([1.0, 2.0]), np.array([2.0, 1.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            PredictionIntervals(np.zeros(3), np.zeros(4))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            PredictionIntervals(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError, match="finite"):
            PredictionIntervals(np.array([0.0, np.nan]), np.array([1.0, 2.0]))

    def test_degenerate_zero_width_allowed(self):
        intervals = PredictionIntervals(np.ones(3), np.ones(3))
        np.testing.assert_array_equal(intervals.width, 0.0)


class TestMetrics:
    @pytest.fixture()
    def intervals(self):
        return PredictionIntervals(
            np.array([0.0, 1.0, 2.0]), np.array([1.0, 3.0, 2.5])
        )

    def test_len(self, intervals):
        assert len(intervals) == 3

    def test_width(self, intervals):
        np.testing.assert_allclose(intervals.width, [1.0, 2.0, 0.5])
        assert intervals.mean_width == pytest.approx(3.5 / 3)

    def test_midpoint(self, intervals):
        np.testing.assert_allclose(intervals.midpoint, [0.5, 2.0, 2.25])

    def test_contains_boundary_inclusive(self, intervals):
        mask = intervals.contains(np.array([0.0, 3.0, 2.6]))
        np.testing.assert_array_equal(mask, [True, True, False])

    def test_coverage(self, intervals):
        assert intervals.coverage(np.array([0.5, 10.0, 2.2])) == pytest.approx(2 / 3)

    def test_contains_rejects_wrong_shape(self, intervals):
        with pytest.raises(ValueError, match="shape"):
            intervals.contains(np.zeros(5))

    def test_clip(self, intervals):
        clipped = intervals.clip(minimum=0.5, maximum=2.4)
        assert clipped.lower.min() >= 0.5
        assert clipped.upper.max() <= 2.4
        # original untouched (frozen dataclass semantics)
        assert intervals.upper.max() == 3.0
