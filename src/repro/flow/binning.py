"""Vmin binning with guard bands driven by prediction intervals.

The paper's reference [4] (Lin et al., ITC 2022) motivates ML-assisted
*Vmin binning*: instead of running every part at a single worst-case
supply voltage, parts are sorted into voltage bins and each runs at the
lowest voltage that is safe for it, saving dynamic power (:math:`P
\\propto V^2 f`).  Binning from a *point* prediction risks under-volting
(a functional escape) whenever the prediction errs low; binning from a
calibrated **interval** bounds that risk by construction: assign the
lowest bin whose voltage clears the interval's *upper* bound plus a
guard band, and the per-chip escape probability is at most the interval
miscoverage ``alpha``.

:class:`VminBinningPolicy` implements the assignment and its audit
(escape rate, power proxy versus the oracle binning that knows true
Vmin); :func:`optimize_guard_band` sweeps the guard band against an
explicit escape-versus-power cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.intervals import PredictionIntervals

__all__ = ["BinningOutcome", "VminBinningPolicy", "optimize_guard_band"]

UNBINNABLE = -1
"""Assignment code for chips no bin can safely host (route to retest)."""


@dataclass(frozen=True)
class BinningOutcome:
    """Audit of one binning pass against reference Vmin values.

    Attributes
    ----------
    assignments:
        Per-chip bin index (into the policy's ``bin_voltages``), or
        :data:`UNBINNABLE`.
    escape_rate:
        Fraction of *binned* chips whose true Vmin exceeds their bin
        voltage (under-volted parts -- the safety metric the conformal
        guarantee bounds).
    mean_voltage:
        Average assigned supply over binned chips (V).
    oracle_mean_voltage:
        Average supply of the oracle assignment (knows true Vmin, no
        guard band) -- the unbeatable lower bound.
    power_overhead:
        Relative dynamic-power overhead vs the oracle,
        ``mean(V²)/mean(V_oracle²) − 1``.
    unbinnable_fraction:
        Fraction of chips routed to retest because no bin fits.
    """

    assignments: np.ndarray
    escape_rate: float
    mean_voltage: float
    oracle_mean_voltage: float
    power_overhead: float
    unbinnable_fraction: float


class VminBinningPolicy:
    """Assign chips to supply-voltage bins from predicted intervals.

    Parameters
    ----------
    bin_voltages:
        Available supply settings (V), need not be sorted; duplicates are
        rejected.
    guard_band_v:
        Extra safety margin: a chip fits a bin only if
        ``upper + guard_band <= bin voltage``.
    """

    def __init__(
        self, bin_voltages: Sequence[float], guard_band_v: float = 0.0
    ) -> None:
        voltages = np.asarray(sorted(bin_voltages), dtype=np.float64)
        if voltages.size == 0:
            raise ValueError("need at least one bin voltage")
        if np.unique(voltages).size != voltages.size:
            raise ValueError(f"duplicate bin voltages in {list(bin_voltages)}")
        if guard_band_v < 0:
            raise ValueError(f"guard_band_v must be >= 0, got {guard_band_v}")
        self.bin_voltages = voltages
        self.guard_band_v = guard_band_v

    def assign(self, intervals: PredictionIntervals) -> np.ndarray:
        """Lowest safe bin per chip, or :data:`UNBINNABLE`."""
        requirement = intervals.upper + self.guard_band_v
        # searchsorted('left') gives the first bin >= requirement.
        indices = np.searchsorted(self.bin_voltages, requirement, side="left")
        assignments = np.where(
            indices < self.bin_voltages.size, indices, UNBINNABLE
        ).astype(np.int64)
        return assignments

    def assign_oracle(self, true_vmin: np.ndarray) -> np.ndarray:
        """Oracle assignment from true Vmin with zero guard band."""
        true_vmin = np.asarray(true_vmin, dtype=np.float64)
        indices = np.searchsorted(self.bin_voltages, true_vmin, side="left")
        return np.where(
            indices < self.bin_voltages.size, indices, UNBINNABLE
        ).astype(np.int64)

    def evaluate(
        self, intervals: PredictionIntervals, true_vmin: np.ndarray
    ) -> BinningOutcome:
        """Audit the interval-driven binning against reference Vmin."""
        true_vmin = np.asarray(true_vmin, dtype=np.float64)
        if true_vmin.shape != intervals.lower.shape:
            raise ValueError(
                f"true_vmin has shape {true_vmin.shape}, intervals have "
                f"shape {intervals.lower.shape}"
            )
        assignments = self.assign(intervals)
        binned = assignments != UNBINNABLE
        oracle = self.assign_oracle(true_vmin)
        oracle_binned = oracle != UNBINNABLE

        if binned.any():
            assigned_v = self.bin_voltages[assignments[binned]]
            escapes = true_vmin[binned] > assigned_v
            escape_rate = float(escapes.mean())
            mean_voltage = float(assigned_v.mean())
        else:
            escape_rate = 0.0
            mean_voltage = float("nan")
        if oracle_binned.any():
            oracle_v = self.bin_voltages[oracle[oracle_binned]]
            oracle_mean = float(oracle_v.mean())
        else:
            oracle_mean = float("nan")

        if binned.any() and oracle_binned.any():
            overhead = float(
                np.mean(self.bin_voltages[assignments[binned]] ** 2)
                / np.mean(oracle_v**2)
                - 1.0
            )
        else:
            overhead = float("nan")
        return BinningOutcome(
            assignments=assignments,
            escape_rate=escape_rate,
            mean_voltage=mean_voltage,
            oracle_mean_voltage=oracle_mean,
            power_overhead=overhead,
            unbinnable_fraction=float(np.mean(~binned)),
        )


def optimize_guard_band(
    intervals: PredictionIntervals,
    true_vmin: np.ndarray,
    bin_voltages: Sequence[float],
    escape_cost: float = 100.0,
    power_cost: float = 1.0,
    candidates: Optional[Sequence[float]] = None,
) -> Tuple[float, float]:
    """Pick the guard band minimising an explicit escape/power trade-off.

    Cost per chip = ``escape_cost`` x escape indicator + ``power_cost`` x
    normalised power overhead (+ ``escape_cost`` for unbinnable chips,
    which must be retested -- treated as expensive but safe at half the
    escape cost).  Returns ``(best_guard_band, best_cost)``.

    The sweep is an audit-time tool: in production the guard band would be
    chosen on a calibration lot, exactly like this, then frozen.
    """
    if escape_cost < 0 or power_cost < 0:
        raise ValueError("costs must be non-negative")
    if candidates is None:
        candidates = np.linspace(0.0, 0.03, 13)
    policy_costs = []
    for guard_band in candidates:
        policy = VminBinningPolicy(bin_voltages, guard_band_v=float(guard_band))
        outcome = policy.evaluate(intervals, true_vmin)
        overhead = outcome.power_overhead
        if not np.isfinite(overhead):
            overhead = 1.0
        cost = (
            escape_cost * outcome.escape_rate
            + power_cost * max(overhead, 0.0)
            + 0.5 * escape_cost * outcome.unbinnable_fraction
        )
        policy_costs.append(cost)
    best = int(np.argmin(policy_costs))
    return float(candidates[best]), float(policy_costs[best])
