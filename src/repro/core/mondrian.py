"""Mondrian (group-conditional) conformal calibration.

Marginal conformal coverage averages over the whole chip population: a
90 % marginal guarantee can hide 70 % coverage on hot-corner parts and
98 % on nominal ones.  Mondrian conformal prediction calibrates a
separate quantile per *group* (here: any chip taxonomy -- temperature
corner, process bin, wafer zone), guaranteeing coverage within each
group as long as at least ``required_calibration_size(alpha)`` members
land in each calibration group.

This is an extension beyond the paper, motivated by its automotive
setting where per-corner guarantees are the natural product requirement.
The wrapped region predictor can be either a split-CP or a CQR model --
anything exposing ``fit``/``predict_interval`` whose correction is a
scalar; we re-derive group corrections from the underlying band.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, Hashable, Optional, Tuple

import numpy as np

from repro.core.calibration import conformal_quantile
from repro.core.intervals import PredictionIntervals
from repro.core.scores import absolute_residual_score, cqr_score
from repro.core.split_cp import split_train_calibration
from repro.models.base import (
    BaseRegressor,
    check_fitted,
    check_random_state,
    check_X_y,
    clone,
)
from repro.models.quantile import QuantileBandRegressor

__all__ = ["MondrianConformalRegressor", "MondrianFallbackWarning"]


class MondrianFallbackWarning(UserWarning):
    """A prediction used the marginal fallback for unseen group keys.

    The per-group guarantee does not apply to those rows -- they only
    get the *marginal* quantile -- so a fleet gap (a wafer zone or
    corner absent from calibration) must be visible, not silent.  The
    offending keys are carried on :attr:`group_keys` for programmatic
    consumers (e.g. serving audits); the message lists them for humans.
    """

    def __init__(self, group_keys: Tuple[Hashable, ...]) -> None:
        self.group_keys = tuple(group_keys)
        super().__init__(
            "no calibration data for group keys "
            f"{sorted(str(k) for k in self.group_keys)}; falling back to the "
            "marginal quantile, which carries no per-group guarantee"
        )


class MondrianConformalRegressor(BaseRegressor):
    """Per-group conformal calibration of a point or quantile model.

    Parameters
    ----------
    estimator:
        Unfitted template.  If it has a ``quantile`` parameter the wrapper
        behaves like group-wise CQR (band + per-group correction);
        otherwise like group-wise split CP (point prediction ± per-group
        margin).
    group_function:
        Maps a feature matrix to a 1-D array of hashable group keys, one
        per row (e.g. ``lambda X: X[:, temperature_column]``).
    alpha:
        Target miscoverage, guaranteed *within every group*.
    calibration_fraction, random_state:
        As in the split wrappers.
    """

    def __init__(
        self,
        estimator: BaseRegressor,
        group_function: Callable[[np.ndarray], np.ndarray],
        alpha: float = 0.1,
        calibration_fraction: float = 0.25,
        random_state: Optional[int] = None,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.estimator = estimator
        self.group_function = group_function
        self.alpha = alpha
        self.calibration_fraction = calibration_fraction
        self.random_state = random_state
        self.group_quantiles_: Optional[Dict[Hashable, float]] = None

    @property
    def _is_quantile_model(self) -> bool:
        # A template counts as quantile-capable only when its quantile is
        # actually set: wrappers like CFSSelectedRegressor expose a
        # ``quantile`` passthrough that defaults to None for point models.
        return self.estimator.get_params().get("quantile") is not None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MondrianConformalRegressor":
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        train_idx, cal_idx = split_train_calibration(
            X.shape[0], self.calibration_fraction, rng
        )

        if self._is_quantile_model:
            self.band_ = QuantileBandRegressor(self.estimator, alpha=self.alpha)
            self.band_.fit(X[train_idx], y[train_idx])
            cal_lower, cal_upper = self.band_.predict_interval(X[cal_idx])
            scores = cqr_score(y[cal_idx], cal_lower, cal_upper)
            self.point_model_ = None
        else:
            self.point_model_ = clone(self.estimator).fit(X[train_idx], y[train_idx])
            prediction = self.point_model_.predict(X[cal_idx])
            scores = absolute_residual_score(y[cal_idx], prediction)
            self.band_ = None

        groups = np.asarray(self.group_function(X[cal_idx]))
        if groups.shape != (cal_idx.size,):
            raise ValueError(
                "group_function must return one key per row, got shape "
                f"{groups.shape} for {cal_idx.size} rows"
            )
        quantiles: Dict[Hashable, float] = {}
        counts: Dict[Hashable, int] = {}
        for key in np.unique(groups):
            members = groups == key
            quantiles[_hashable(key)] = conformal_quantile(scores[members], self.alpha)
            counts[_hashable(key)] = int(members.sum())
        # Marginal fallback for groups unseen during calibration.
        self._fallback_quantile = conformal_quantile(scores, self.alpha)
        self.group_quantiles_ = quantiles
        self.group_counts_ = counts
        return self

    def _quantile_for(self, groups: np.ndarray) -> np.ndarray:
        return np.array(
            [
                self.group_quantiles_.get(_hashable(key), self._fallback_quantile)
                for key in groups
            ]
        )

    def unseen_group_keys(self, X: np.ndarray) -> Tuple[Hashable, ...]:
        """Group keys in ``X`` that have no calibrated quantile.

        Rows with these keys would receive the marginal fallback (and a
        :class:`MondrianFallbackWarning`) from :meth:`predict_interval`.
        Sorted by string form for determinism.
        """
        check_fitted(self, "group_quantiles_")
        groups = np.asarray(self.group_function(np.asarray(X, dtype=np.float64)))
        unseen = {
            _hashable(key)
            for key in np.unique(groups)
            if _hashable(key) not in self.group_quantiles_
        }
        return tuple(sorted(unseen, key=str))

    def predict(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "group_quantiles_")
        if self.point_model_ is not None:
            return self.point_model_.predict(X)
        return self.predict_interval(X).midpoint

    def predict_interval(self, X: np.ndarray) -> PredictionIntervals:
        """Per-sample interval using the sample's group quantile.

        A group whose calibration quantile is infinite (too few members)
        raises rather than silently emitting unbounded intervals.  Rows
        whose group was never seen at calibration get the marginal
        fallback quantile and trigger one :class:`MondrianFallbackWarning`
        per call carrying the offending keys.
        """
        check_fitted(self, "group_quantiles_")
        groups = np.asarray(self.group_function(np.asarray(X, dtype=np.float64)))
        unseen = tuple(
            sorted(
                {
                    _hashable(key)
                    for key in np.unique(groups)
                    if _hashable(key) not in self.group_quantiles_
                },
                key=str,
            )
        )
        if unseen:
            warnings.warn(MondrianFallbackWarning(unseen), stacklevel=2)
        corrections = self._quantile_for(groups)
        if not np.all(np.isfinite(corrections)):
            bad = {str(g) for g, c in zip(groups, corrections) if not np.isfinite(c)}
            raise RuntimeError(
                f"groups {sorted(bad)} have too few calibration samples for "
                f"alpha={self.alpha}; intervals would be infinite"
            )
        if self.point_model_ is not None:
            prediction = self.point_model_.predict(X)
            return PredictionIntervals(
                prediction - corrections, prediction + corrections
            )
        lower, upper = self.band_.predict_interval(X)
        lower = lower - corrections
        upper = upper + corrections
        crossed = lower > upper
        if np.any(crossed):
            mid = (lower + upper) / 2.0
            lower = np.where(crossed, mid, lower)
            upper = np.where(crossed, mid, upper)
        return PredictionIntervals(lower, upper)


def _hashable(key) -> Hashable:
    """Normalise numpy scalars so dict lookups are stable."""
    if isinstance(key, np.generic):
        return key.item()
    return key
