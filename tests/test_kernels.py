"""Tests for the GP kernel algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.kernels import (
    ConstantKernel,
    MaternKernel,
    ProductKernel,
    RBFKernel,
    SumKernel,
    WhiteKernel,
)


def _random_inputs(seed=0, n=12, d=3):
    return np.random.default_rng(seed).normal(size=(n, d))


ALL_KERNELS = [
    RBFKernel(0.7),
    RBFKernel([0.5, 1.0, 2.0]),
    MaternKernel(1.2, nu=0.5),
    MaternKernel(1.2, nu=1.5),
    MaternKernel(1.2, nu=2.5),
    ConstantKernel(2.0),
    WhiteKernel(0.3),
    ConstantKernel(1.5) * RBFKernel(1.0) + WhiteKernel(0.1),
]


class TestPositiveSemidefinite:
    @pytest.mark.parametrize("kernel", ALL_KERNELS, ids=lambda k: type(k).__name__)
    def test_gram_matrix_is_psd(self, kernel):
        X = _random_inputs()
        K = kernel(X)
        eigenvalues = np.linalg.eigvalsh((K + K.T) / 2)
        assert eigenvalues.min() > -1e-9

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25)
    def test_rbf_psd_random_inputs(self, seed):
        X = _random_inputs(seed=seed, n=8, d=2)
        K = RBFKernel(1.0)(X)
        assert np.linalg.eigvalsh((K + K.T) / 2).min() > -1e-9


class TestRBF:
    def test_unit_diagonal(self):
        X = _random_inputs()
        np.testing.assert_allclose(np.diag(RBFKernel(1.0)(X)), 1.0)

    def test_matches_closed_form(self):
        X = np.array([[0.0], [1.0]])
        K = RBFKernel(2.0)(X)
        assert K[0, 1] == pytest.approx(np.exp(-0.5 / 4.0))

    def test_ard_length_scales(self):
        X = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        K = RBFKernel([0.5, 5.0])(X)
        # distance along the short-scale axis decays much faster
        assert K[0, 1] < K[0, 2]

    def test_cross_covariance_shape(self):
        K = RBFKernel(1.0)(_random_inputs(n=5), _random_inputs(seed=1, n=7))
        assert K.shape == (5, 7)

    def test_theta_roundtrip(self):
        kernel = RBFKernel([0.5, 2.0])
        clone = kernel.clone_with_theta(kernel.theta)
        np.testing.assert_allclose(clone.length_scale, kernel.length_scale)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            RBFKernel(0.0)


class TestMatern:
    def test_nu_half_is_exponential(self):
        X = np.array([[0.0], [1.0]])
        K = MaternKernel(1.0, nu=0.5)(X)
        assert K[0, 1] == pytest.approx(np.exp(-1.0))

    def test_larger_nu_is_smoother_at_small_distance(self):
        X = np.array([[0.0], [0.1]])
        rough = MaternKernel(1.0, nu=0.5)(X)[0, 1]
        smooth = MaternKernel(1.0, nu=2.5)(X)[0, 1]
        assert smooth > rough

    def test_rejects_unsupported_nu(self):
        with pytest.raises(ValueError, match="nu"):
            MaternKernel(1.0, nu=2.0)


class TestWhite:
    def test_zero_cross_covariance(self):
        A = _random_inputs(n=4)
        B = _random_inputs(seed=2, n=6)
        np.testing.assert_array_equal(WhiteKernel(0.5)(A, B), 0.0)

    def test_diagonal_on_self(self):
        A = _random_inputs(n=4)
        np.testing.assert_allclose(WhiteKernel(0.5)(A), 0.5 * np.eye(4))


class TestComposition:
    def test_sum_adds(self):
        X = _random_inputs(n=5)
        combined = ConstantKernel(1.0) + ConstantKernel(2.0)
        np.testing.assert_allclose(combined(X), 3.0)

    def test_product_multiplies(self):
        X = _random_inputs(n=5)
        combined = ConstantKernel(2.0) * ConstantKernel(3.0)
        np.testing.assert_allclose(combined(X), 6.0)

    def test_scalar_promotes_to_constant(self):
        combined = 2.0 * RBFKernel(1.0)
        assert isinstance(combined, ProductKernel)

    def test_composite_theta_concatenates(self):
        combined = ConstantKernel(2.0) * RBFKernel(1.0) + WhiteKernel(0.1)
        assert combined.theta.size == 3
        assert combined.bounds.shape == (3, 2)

    def test_composite_theta_setter_propagates(self):
        combined = ConstantKernel(2.0) * RBFKernel(1.0) + WhiteKernel(0.1)
        new_theta = np.log([4.0, 0.5, 0.2])
        combined.theta = new_theta
        np.testing.assert_allclose(combined.theta, new_theta)
        assert combined.left.left.value == pytest.approx(4.0)

    def test_theta_setter_rejects_wrong_size(self):
        combined = ConstantKernel(2.0) + WhiteKernel(0.1)
        with pytest.raises(ValueError, match="entries"):
            combined.theta = np.zeros(5)

    def test_diag_consistent_with_full_matrix(self):
        X = _random_inputs(n=6)
        kernel = ConstantKernel(1.5) * RBFKernel(1.0) + WhiteKernel(0.2)
        np.testing.assert_allclose(kernel.diag(X), np.diag(kernel(X)))
