"""Fig. 3 -- CQR CatBoost interval length per feature configuration.

Regenerates the paper's Figure 3: the average CQR-CatBoost interval
length at every stress read point and temperature, for the three feature
sets of Section IV-G:

1. on-chip monitor + parametric data (the Table III configuration),
2. parametric test data only,
3. on-chip monitor data only.

Expected shape: the combined set is shortest; on-chip-only beats
parametric-only despite having ~10x fewer columns (168+10 monitors vs
1800 parametric channels) -- monitors carry more Vmin information per
channel.  Table IV (bench_table4) averages these series over read points.

The (feature set x temperature x read point) grid is computed once per
session and shared with the Table IV benchmark via the ``fig3_grid``
fixture.
"""

from __future__ import annotations

from conftest import FEATURE_SETS, publish

from repro.eval.reporting import format_series


def _render(fig3_grid, bench_scope) -> str:
    temperatures, read_points = bench_scope
    sections = []
    for temperature in temperatures:
        series = {
            label: [fig3_grid[(label, temperature, hours)] for hours in read_points]
            for label, _ in FEATURE_SETS
        }
        sections.append(
            format_series(
                "hours",
                list(read_points),
                series,
                title=(
                    "Fig.3 | CQR CatBoost interval length (mV) @ "
                    f"{temperature:g}C by feature set"
                ),
            )
        )
    return "\n\n".join(sections)


def test_fig3_feature_sets(benchmark, fig3_grid, bench_scope):
    text = benchmark.pedantic(
        _render, args=(fig3_grid, bench_scope), rounds=1, iterations=1
    )
    publish("fig3_feature_sets", text)
