"""REP105 -- ``__all__`` consistency.

``__all__`` is the module's public contract: docs are generated from
it, ``import *`` follows it, and the API reference promises that
anything not re-exported is internal.  Three things can rot:

* a module forgets to declare ``__all__`` at all,
* ``__all__`` lists a name that no longer exists (renamed or deleted
  -- ``import *`` then raises ``AttributeError`` at a distance),
* a new public function/class never gets added, so the docs and the
  docstring-coverage rule (REP108) never see it.

The rule checks all three for every ``src`` module.  Only top-level
``def``/``class`` statements are *required* to be exported; public
constants may stay out of ``__all__`` (but when listed they must
exist).  Names bound under ``if``/``try`` at module level count as
defined, so version-gated imports work.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List, Optional, Set, Tuple

from typing import TYPE_CHECKING

from repro.devtools.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.devtools.engine import ModuleContext
from repro.devtools.rules.base import Rule

__all__ = ["DunderAllRule", "read_dunder_all"]


def read_dunder_all(tree: ast.Module) -> Tuple[Optional[ast.AST], List[str]]:
    """Return the ``__all__`` node and listed names (``+=`` included).

    The node is ``None`` when the module never assigns ``__all__``.
    Only literal lists/tuples of string constants are understood; a
    dynamic ``__all__`` returns the assignment node with an empty name
    list so callers can decide how strict to be.
    """
    node_found: Optional[ast.AST] = None
    names: List[str] = []
    for statement in tree.body:
        target = None
        if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
            target = statement.targets[0]
        elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
            target = statement.target
        if not (isinstance(target, ast.Name) and target.id == "__all__"):
            continue
        node_found = statement
        value = statement.value
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names.append(element.value)
    return node_found, names


def _bound_names(statements: Iterable[ast.stmt]) -> Set[str]:
    """Names bound at module level, descending into if/try/with blocks."""
    bound: Set[str] = set()
    for statement in statements:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            bound.add(statement.name)
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                bound.update(_target_names(target))
        elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
            bound.update(_target_names(statement.target))
        elif isinstance(statement, ast.Import):
            for alias in statement.names:
                bound.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(statement, ast.ImportFrom):
            for alias in statement.names:
                if alias.name != "*":
                    bound.add(alias.asname or alias.name)
        elif isinstance(statement, ast.If):
            bound |= _bound_names(statement.body) | _bound_names(statement.orelse)
        elif isinstance(statement, ast.Try):
            bound |= _bound_names(statement.body) | _bound_names(statement.finalbody)
            for handler in statement.handlers:
                bound |= _bound_names(handler.body)
            bound |= _bound_names(statement.orelse)
        elif isinstance(statement, ast.With):
            bound |= _bound_names(statement.body)
    return bound


def _target_names(target: ast.AST) -> Set[str]:
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, (ast.Tuple, ast.List)):
        names: Set[str] = set()
        for element in target.elts:
            names |= _target_names(element)
        return names
    return set()


class DunderAllRule(Rule):
    """Require a complete, truthful ``__all__`` in every src module."""

    rule_id = "REP105"
    name = "all-consistency"
    summary = "__all__ present, every listed name exists, public defs listed"
    rationale = (
        "__all__ is the public-API contract the docs and import * rely "
        "on; a stale or missing one hides API drift from review"
    )
    scopes = frozenset({"src"})

    def finish_module(self, context: ModuleContext) -> Iterator[Diagnostic]:
        """Check declaration, existence, and completeness of ``__all__``."""
        tree = context.tree
        node, listed = read_dunder_all(tree)
        if node is None:
            if not tree.body:
                return  # genuinely empty module (namespace placeholder)
            yield self.diagnostic(
                tree.body[0],
                context,
                "module does not declare __all__; every library module "
                "must state its public API explicitly",
            )
            return

        bound = _bound_names(tree.body)
        for exported in listed:
            if exported not in bound:
                yield self.diagnostic(
                    node,
                    context,
                    f"__all__ lists {exported!r} but the module never "
                    "defines or imports it",
                )

        listed_set = set(listed)
        for statement in tree.body:
            if not isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if statement.name.startswith("_"):
                continue
            if statement.name not in listed_set:
                kind = "class" if isinstance(statement, ast.ClassDef) else "function"
                yield self.diagnostic(
                    statement,
                    context,
                    f"public {kind} '{statement.name}' is missing from "
                    "__all__; export it or rename it with a leading "
                    "underscore",
                )
