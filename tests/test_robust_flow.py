"""Tests for the hardened serving flow and the stress harness.

Covers the three ISSUE acceptance criteria directly:

* ``RobustVminFlow.predict_interval`` never raises on value-level damage
  from any :class:`FaultCampaign` configuration,
* the stress harness shows coverage within 5 points of nominal under the
  dead-sensor campaign at <= 20 % sensor loss,
* the coverage monitor alarms and triggers online recalibration under an
  injected distribution shift.
"""

import numpy as np
import pytest

from repro.eval.stress import StressReport, StressResult, run_fault_campaign
from repro.models import QuantileLinearRegression
from repro.models.base import NotFittedError
from repro.robust import (
    DegradationPolicy,
    DegradationStatus,
    DegradedPrediction,
    FaultCampaign,
    RobustVminFlow,
)

N_PARAMETRIC = 4
N_MONITORS = 8
D = N_PARAMETRIC + N_MONITORS
PARAMETRIC = list(range(N_PARAMETRIC))
MONITORS = list(range(N_PARAMETRIC, D))
N_TRAIN = 200


def _make_data(n=400, seed=42):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, D))
    w = np.concatenate(
        [np.array([2.0, -1.0, 1.5, 1.0]), np.full(N_MONITORS, 0.3)]
    )
    y = X @ w + rng.normal(scale=0.5, size=n)
    return X, y


def _fit_flow(X, y, **kwargs):
    kwargs.setdefault("base_model", QuantileLinearRegression())
    kwargs.setdefault("alpha", 0.1)
    kwargs.setdefault("random_state", 0)
    return RobustVminFlow(**kwargs).fit(
        X[:N_TRAIN],
        y[:N_TRAIN],
        fallback_columns=PARAMETRIC,
        monitor_columns=MONITORS,
    )


@pytest.fixture(scope="module")
def serving_stack():
    """A fitted flow plus a clean held-out lot.

    Module-scoped: the serving tests below only call the read-only
    ``predict*`` paths, so sharing one fit is safe.  Tests that stream
    observations (which mutate monitor state) fit their own flow.
    """
    X, y = _make_data()
    flow = _fit_flow(X, y)
    return flow, X[N_TRAIN:], y[N_TRAIN:]


class TestServing:
    def test_clean_batch_is_nominal(self, serving_stack):
        flow, Xh, yh = serving_stack
        prediction = flow.predict_interval(Xh)
        assert isinstance(prediction, DegradedPrediction)
        assert prediction.status is DegradationStatus.OK
        assert prediction.nominal
        assert prediction.inflation == 1.0
        assert not prediction.used_fallback
        assert prediction.coverage(yh) >= 0.8

    def test_never_raises_under_any_campaign(self, serving_stack):
        """Acceptance: value-level damage from any campaign config is
        served as a structured answer, never an exception."""
        flow, Xh, _ = serving_stack
        campaign = FaultCampaign.standard(severities=(0.1, 0.5, 1.0), seed=3)
        for scenario in campaign:
            prediction = flow.predict_interval(scenario.apply(Xh))
            assert isinstance(prediction, DegradedPrediction)
            assert len(prediction) == Xh.shape[0]
            assert np.isfinite(prediction.lower).all()
            assert np.isfinite(prediction.upper).all()
            assert np.all(prediction.upper >= prediction.lower)
            assert prediction.inflation >= 1.0

    def test_dead_monitor_block_uses_fallback(self, serving_stack):
        flow, Xh, yh = serving_stack
        damaged = Xh.copy()
        damaged[:, MONITORS] = np.nan
        prediction = flow.predict_interval(damaged)
        assert prediction.status is DegradationStatus.FALLBACK
        assert prediction.used_fallback
        assert np.isfinite(prediction.lower).all()
        assert prediction.coverage(yh) >= 0.7
        assert any("fallback model" in note for note in prediction.notes)

    def test_partial_damage_degrades_and_inflates(self, serving_stack):
        flow, Xh, _ = serving_stack
        clean_width = flow.predict_interval(Xh).mean_width
        damaged = Xh.copy()
        damaged[:, MONITORS[0]] = np.nan
        prediction = flow.predict_interval(damaged)
        assert prediction.status is DegradationStatus.DEGRADED
        assert not prediction.used_fallback
        assert prediction.inflation > 1.0
        assert prediction.mean_width > clean_width

    def test_row_dropout_charges_inflation(self, serving_stack):
        """Whole-row NaNs leave every column partly healthy; degradation
        must still be charged through the entry-level damage fraction."""
        flow, Xh, _ = serving_stack
        damaged = Xh.copy()
        damaged[: Xh.shape[0] // 2] = np.nan
        prediction = flow.predict_interval(damaged)
        assert prediction.status is not DegradationStatus.OK
        assert prediction.inflation > 1.0

    def test_no_fallback_model_caps_inflation(self):
        X, y = _make_data(seed=7)
        flow = RobustVminFlow(
            base_model=QuantileLinearRegression(), alpha=0.1, random_state=0
        ).fit(X[:N_TRAIN], y[:N_TRAIN])
        damaged = X[N_TRAIN:].copy()
        damaged[:, MONITORS] = np.nan
        prediction = flow.predict_interval(damaged)
        assert prediction.status is DegradationStatus.FALLBACK
        assert not prediction.used_fallback
        assert prediction.inflation == flow.policy.max_inflation
        assert any("no fallback" in note for note in prediction.notes)

    def test_predict_is_interval_midpoint(self, serving_stack):
        flow, Xh, _ = serving_stack
        prediction = flow.predict_interval(Xh)
        np.testing.assert_allclose(
            flow.predict(Xh), (prediction.lower + prediction.upper) / 2.0
        )

    def test_structural_errors_still_raise(self, serving_stack):
        flow, Xh, _ = serving_stack
        with pytest.raises(ValueError, match="features"):
            flow.predict_interval(Xh[:, :5])
        with pytest.raises(ValueError, match="2-D"):
            flow.predict_interval(Xh[0])

    def test_unfitted_raises(self, serving_stack):
        _, Xh, _ = serving_stack
        with pytest.raises(NotFittedError):
            RobustVminFlow().predict_interval(Xh)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            RobustVminFlow(alpha=1.5)
        with pytest.raises(ValueError, match="gamma"):
            RobustVminFlow(gamma=-0.1)

    def test_fit_validates_column_groups(self):
        X, y = _make_data(n=N_TRAIN + 1, seed=1)
        with pytest.raises(ValueError, match="fallback_columns"):
            RobustVminFlow(base_model=QuantileLinearRegression()).fit(
                X, y, fallback_columns=[99]
            )
        with pytest.raises(ValueError, match="monitor_columns"):
            RobustVminFlow(base_model=QuantileLinearRegression()).fit(
                X, y, monitor_columns=[-1]
            )

    def test_guaranteed_coverage_passthrough(self, serving_stack):
        flow, _, _ = serving_stack
        assert flow.guaranteed_coverage_ >= 1.0 - flow.alpha


class TestServingEdgeCases:
    """Batch shapes a serving layer legitimately produces must be no-ops."""

    def test_empty_batch_serves_zero_intervals(self, serving_stack):
        flow, Xh, _ = serving_stack
        prediction = flow.predict_interval(np.empty((0, D)))
        assert isinstance(prediction, DegradedPrediction)
        assert len(prediction) == 0
        assert prediction.status is DegradationStatus.OK
        assert prediction.lower.shape == prediction.upper.shape == (0,)
        assert any("empty batch" in note for note in prediction.notes)

    def test_empty_batch_with_wrong_width_still_raises(self, serving_stack):
        # Zero rows do not excuse a structural error: the column count
        # is an integration contract, checked before the no-op path.
        flow, _, _ = serving_stack
        with pytest.raises(ValueError, match="features"):
            flow.predict_interval(np.empty((0, D - 1)))

    def test_fully_damaged_batch_still_answers(self, serving_stack):
        flow, Xh, _ = serving_stack
        damaged = np.full_like(Xh, np.nan)
        prediction = flow.predict_interval(damaged)
        assert len(prediction) == Xh.shape[0]
        assert np.isfinite(prediction.lower).all()
        assert np.isfinite(prediction.upper).all()
        assert prediction.status is not DegradationStatus.OK
        assert prediction.inflation > 1.0

    def test_observe_zero_labels_is_noop(self):
        X, y = _make_data(seed=5)
        flow = _fit_flow(X, y)
        before = flow.monitor_.n_observed
        assert flow.observe(np.empty((0, D)), np.empty(0)) is None
        assert flow.monitor_.n_observed == before
        assert flow.recalibrations_ == 0
        assert not flow.adaptive_active


class TestObserveAndRecalibration:
    def test_healthy_stream_stays_quiet(self):
        X, y = _make_data(seed=11)
        flow = _fit_flow(X, y, monitor_min_observations=10, monitor_window=20)
        Xh, yh = X[N_TRAIN:], y[N_TRAIN:]
        for start in range(0, 100, 10):
            assert flow.observe(Xh[start : start + 10], yh[start : start + 10]) is None
        assert flow.alarms_ == []
        assert not flow.adaptive_active
        assert flow.rolling_coverage() >= 0.8

    def test_shift_triggers_alarm_and_recalibration(self):
        """Acceptance: injected distribution shift -> alarm -> online
        recalibration widens the served band and coverage recovers."""
        X, y = _make_data(seed=23)
        flow = _fit_flow(X, y, monitor_min_observations=10, monitor_window=20)
        Xh, yh = X[N_TRAIN:], y[N_TRAIN:] + 2.0  # strong upward Vmin shift

        width_before = flow.predict_interval(Xh).mean_width
        alarms = []
        for start in range(0, 200, 10):
            alarm = flow.observe(Xh[start : start + 10], yh[start : start + 10])
            if alarm is not None:
                alarms.append(alarm)
        assert alarms, "coverage monitor never alarmed under a 2 V shift"
        assert flow.adaptive_active
        assert flow.recalibrations_ >= 1
        # Gibbs-Candes: sustained misses pushed alpha_t below nominal at
        # some point (it drifts back up once coverage recovers).
        assert min(flow.adaptive_.alpha_history_) < flow.alpha
        after = flow.predict_interval(Xh)
        assert after.mean_width > width_before
        assert any("recalibration" in note for note in after.notes)
        # Recalibration must actually win coverage back on the shifted stream.
        assert flow.rolling_coverage() >= 0.6

    def test_observe_validates_labels(self):
        X, y = _make_data(seed=31)
        flow = _fit_flow(X, y)
        Xh, yh = X[N_TRAIN:], y[N_TRAIN:]
        with pytest.raises(ValueError, match="NaN or infinite"):
            flow.observe(Xh[:5], np.array([1.0, np.nan, 1.0, 1.0, 1.0]))
        with pytest.raises(ValueError, match="inconsistent lengths"):
            flow.observe(Xh[:5], yh[:4])
        with pytest.raises(ValueError, match="1-D"):
            flow.observe(Xh[:5], yh[:5].reshape(-1, 1))


class TestStressHarness:
    def test_dead_sensor_campaign_within_five_points(self, serving_stack):
        """Acceptance: <= 20 % dead sensors costs <= 5 coverage points."""
        flow, Xh, yh = serving_stack
        campaign = FaultCampaign.standard(
            severities=(0.05, 0.1, 0.2), columns=MONITORS, seed=1
        )
        dead_only = [s for s in campaign if s.name == "dead_sensors"]
        assert len(dead_only) == 3
        report = run_fault_campaign(flow, Xh, yh, dead_only)
        assert report.coverage_drop("dead_sensors") <= 0.05

    def test_report_structure(self, serving_stack):
        flow, Xh, yh = serving_stack
        campaign = FaultCampaign.standard(severities=(0.1,), seed=2)
        report = run_fault_campaign(flow, Xh, yh, campaign)
        assert isinstance(report, StressReport)
        assert len(report.results) == len(campaign)
        assert all(isinstance(r, StressResult) for r in report.results)
        assert 0.0 <= report.nominal_coverage <= 1.0
        assert report.nominal_width > 0.0
        for result in report.results:
            assert 0.0 <= result.coverage <= 1.0
            assert result.mean_width > 0.0
            assert result.inflation >= 1.0

    def test_report_table_lists_every_scenario(self, serving_stack):
        flow, Xh, yh = serving_stack
        campaign = FaultCampaign.standard(severities=(0.1,), seed=2)
        table = run_fault_campaign(flow, Xh, yh, campaign).to_table()
        assert "(nominal)" in table
        for scenario in campaign:
            assert scenario.name in table

    def test_worst_coverage_prefix_filter(self, serving_stack):
        flow, Xh, yh = serving_stack
        campaign = FaultCampaign.standard(severities=(0.1,), seed=2)
        report = run_fault_campaign(flow, Xh, yh, campaign)
        assert report.worst_coverage("dead_sensors") >= report.worst_coverage()
        with pytest.raises(ValueError, match="no scenario matches"):
            report.worst_coverage("nonexistent")

    def test_rejects_mismatched_inputs(self, serving_stack):
        flow, Xh, yh = serving_stack
        with pytest.raises(ValueError, match="matching"):
            run_fault_campaign(flow, Xh, yh[:-1], [])
