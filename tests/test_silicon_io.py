"""Tests for dataset persistence and CSV export."""

import csv

import numpy as np
import pytest

from repro.silicon import SiliconDataset
from repro.silicon.io import export_flow_csv, load_measurements, save_measurements


class TestRoundTrip:
    def test_measurements_identical(self, small_lot, tmp_path):
        path = save_measurements(small_lot, tmp_path / "lot.npz")
        loaded = load_measurements(path)
        np.testing.assert_array_equal(loaded.parametric, small_lot.parametric)
        for hours in small_lot.read_points:
            np.testing.assert_array_equal(loaded.rod[hours], small_lot.rod[hours])
            np.testing.assert_array_equal(loaded.cpd[hours], small_lot.cpd[hours])
        for key in small_lot.vmin:
            np.testing.assert_array_equal(loaded.vmin[key], small_lot.vmin[key])

    def test_feature_assembly_works_after_load(self, small_lot, tmp_path):
        path = save_measurements(small_lot, tmp_path / "lot.npz")
        loaded = load_measurements(path)
        X_orig, names_orig = small_lot.features(48)
        X_load, names_load = loaded.features(48)
        np.testing.assert_array_equal(X_load, X_orig)
        assert names_load == names_orig

    def test_targets_work_after_load(self, small_lot, tmp_path):
        path = save_measurements(small_lot, tmp_path / "lot.npz")
        loaded = load_measurements(path)
        np.testing.assert_array_equal(
            loaded.target(25.0, 24), small_lot.target(25.0, 24)
        )

    def test_latents_not_persisted(self, small_lot, tmp_path):
        path = save_measurements(small_lot, tmp_path / "lot.npz")
        loaded = load_measurements(path)
        assert loaded.true_vmin == {}
        with pytest.raises(AttributeError, match="measurements only"):
            _ = loaded.population.defects

    def test_format_version_checked(self, small_lot, tmp_path):
        path = save_measurements(small_lot, tmp_path / "lot.npz")
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["format_version"] = np.array([99])
        np.savez_compressed(tmp_path / "bad.npz", **arrays)
        with pytest.raises(ValueError, match="format version"):
            load_measurements(tmp_path / "bad.npz")


class TestCSVExport:
    def test_row_count_and_header(self, small_lot, tmp_path):
        path = tmp_path / "flow.csv"
        count = export_flow_csv(small_lot, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "read_point_hours"
        assert len(rows) == count + 1

    def test_values_parse_back(self, small_lot, tmp_path):
        path = tmp_path / "flow.csv"
        export_flow_csv(small_lot, path)
        with open(path) as handle:
            reader = csv.DictReader(handle)
            first = next(
                row
                for row in reader
                if row["insertion"] == "rod" and row["read_point_hours"] == "0"
            )
        column = small_lot.rod_names.index(first["channel"])
        chip = int(first["chip_index"])
        assert float(first["value"]) == pytest.approx(
            small_lot.rod[0][chip, column]
        )

    def test_parametric_excluded_by_default(self, small_lot, tmp_path):
        path = tmp_path / "flow.csv"
        export_flow_csv(small_lot, path)
        with open(path) as handle:
            assert "parametric" not in handle.read()
