"""Tests for likelihood-ratio-weighted conformal prediction."""

import numpy as np
import pytest

from repro.core.calibration import conformal_quantile
from repro.models.linear import LinearRegression, QuantileLinearRegression
from repro.shift import (
    DegenerateWeightsError,
    LogisticDensityRatio,
    WeightedBandCalibrator,
    WeightedConformalRegressor,
    weighted_conformal_quantile,
)


def _hetero(rng, n, loc=0.0, scale=1.0):
    """1-D data whose noise grows with |x|: covariate shift moves the
    score distribution, which is exactly what the weighting corrects."""
    X = rng.normal(loc=loc, scale=scale, size=(n, 1))
    y = 1.5 * X[:, 0] + rng.normal(size=n) * (0.2 + 0.5 * np.abs(X[:, 0]))
    return X, y


class TestWeightedQuantile:
    def test_uniform_weights_match_unweighted(self, rng):
        scores = rng.normal(size=81)
        for alpha in (0.05, 0.1, 0.25):
            assert weighted_conformal_quantile(
                scores, np.ones_like(scores), alpha
            ) == conformal_quantile(scores, alpha)

    def test_heavy_test_weight_needs_the_infinite_atom(self):
        scores = np.array([1.0, 2.0, 3.0])
        assert weighted_conformal_quantile(
            scores, np.ones(3), alpha=0.1, test_weight=100.0
        ) == np.inf

    def test_upweighting_large_scores_widens(self):
        scores = np.array([1.0, 2.0, 3.0, 4.0, 5.0] * 10)
        uniform = weighted_conformal_quantile(
            scores, np.ones_like(scores), 0.25
        )
        top_heavy = np.where(scores >= 4.0, 5.0, 0.1)
        shifted = weighted_conformal_quantile(scores, top_heavy, 0.25)
        assert shifted >= uniform

    def test_validates_inputs(self):
        with pytest.raises(ValueError, match="non-empty"):
            weighted_conformal_quantile([], [], 0.1)
        with pytest.raises(ValueError, match="match"):
            weighted_conformal_quantile([1.0], [1.0, 2.0], 0.1)
        with pytest.raises(ValueError, match="alpha"):
            weighted_conformal_quantile([1.0], [1.0], 1.5)
        with pytest.raises(ValueError, match="non-negative"):
            weighted_conformal_quantile([1.0], [-1.0], 0.1)
        with pytest.raises(ValueError, match="test_weight"):
            weighted_conformal_quantile([1.0], [1.0], 0.1, test_weight=-1.0)
        with pytest.raises(ValueError, match="zero"):
            weighted_conformal_quantile([1.0], [0.0], 0.1, test_weight=0.0)


class TestWeightedBandCalibrator:
    def _band(self, rng):
        from repro.models.quantile import QuantileBandRegressor

        X, y = _hetero(rng, 400)
        band = QuantileBandRegressor(QuantileLinearRegression(), alpha=0.1)
        return band.fit(X[:300], y[:300]), X, y

    def test_degenerate_weights_refused_at_construction(self, rng):
        band, X, y = self._band(rng)
        weights = np.zeros(100)
        weights[0] = 1.0
        with pytest.raises(DegenerateWeightsError, match="ESS"):
            WeightedBandCalibrator(
                band, np.abs(rng.normal(size=100)), weights, min_ess=10.0
            )

    def test_uniform_weights_reproduce_unweighted_margin(self, rng):
        band, X, y = self._band(rng)
        scores = np.abs(rng.normal(size=99))
        calibrator = WeightedBandCalibrator(
            band, scores, np.ones_like(scores), alpha=0.1
        )
        intervals = calibrator.predict_interval(X[300:])
        lower, upper = band.predict_interval(X[300:])
        margin = conformal_quantile(scores, 0.1)
        np.testing.assert_allclose(intervals.lower, lower - margin)
        np.testing.assert_allclose(intervals.upper, upper + margin)

    def test_validates_construction(self, rng):
        band, _, _ = self._band(rng)
        with pytest.raises(TypeError, match="predict_interval"):
            WeightedBandCalibrator(object(), [1.0], [1.0])
        with pytest.raises(ValueError, match="non-empty"):
            WeightedBandCalibrator(band, [], [])
        with pytest.raises(ValueError, match="match"):
            WeightedBandCalibrator(band, [1.0], [1.0, 2.0])
        with pytest.raises(ValueError, match="min_ess"):
            WeightedBandCalibrator(band, [1.0], [1.0], min_ess=0.0)


class TestWeightedConformalRegressor:
    def test_unweighted_coverage_on_exchangeable_data(self, rng):
        X, y = _hetero(rng, 1200)
        model = WeightedConformalRegressor(
            LinearRegression(), alpha=0.1, random_state=0
        ).fit(X[:800], y[:800])
        assert model.predict_interval(X[800:]).coverage(y[800:]) >= 0.85

    def test_weighting_restores_coverage_under_covariate_shift(self):
        rng = np.random.default_rng(0)
        X, y = _hetero(rng, 1200)
        model = WeightedConformalRegressor(
            LinearRegression(),
            alpha=0.1,
            random_state=0,
            ratio_estimator=LogisticDensityRatio(ridge=4.0, random_state=0),
        ).fit(X, y)
        rng_test = np.random.default_rng(1)
        X_shift, y_shift = _hetero(rng_test, 400, loc=1.5, scale=0.8)
        before = model.predict_interval(X_shift).coverage(y_shift)
        model.calibrate_to(X_shift)
        after = model.predict_interval(X_shift).coverage(y_shift)
        assert before < 0.80  # the shift genuinely breaks plain split CP
        assert after >= 0.85
        assert model.ess_ >= model.min_ess

    def test_degenerate_shift_refuses_and_keeps_previous_weighting(self):
        rng = np.random.default_rng(0)
        X, y = _hetero(rng, 1200)
        model = WeightedConformalRegressor(
            LinearRegression(), alpha=0.1, random_state=0
        ).fit(X, y)
        # A tight cluster in the far tail of the reference: a handful of
        # calibration chips soak up all the mass and the ESS collapses.
        X_far = np.full((200, 1), 3.0) + rng.normal(
            scale=0.2, size=(200, 1)
        )
        with pytest.raises(DegenerateWeightsError, match="refusing"):
            model.calibrate_to(X_far)
        assert model.ratio_ is None
        assert model.calibration_weights_ is None
        # Still serves plain unweighted intervals after the refusal.
        assert len(model.predict_interval(X[:10])) == 10

    def test_quantile_template_uses_band(self, rng):
        X, y = _hetero(rng, 600)
        model = WeightedConformalRegressor(
            QuantileLinearRegression(), alpha=0.1, random_state=0
        ).fit(X, y)
        assert model.band_ is not None and model.point_model_ is None
        intervals = model.predict_interval(X[:50])
        midpoint = model.predict(X[:50])
        np.testing.assert_allclose(midpoint, intervals.midpoint)

    def test_calibrate_to_validates_input(self, rng):
        X, y = _hetero(rng, 400)
        model = WeightedConformalRegressor(
            LinearRegression(), alpha=0.1, random_state=0
        ).fit(X, y)
        with pytest.raises(ValueError, match="2-D"):
            model.calibrate_to(np.zeros(5))
        with pytest.raises(ValueError, match="features"):
            model.calibrate_to(np.zeros((5, 3)))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError, match="alpha"):
            WeightedConformalRegressor(LinearRegression(), alpha=0.0)
        with pytest.raises(ValueError, match="min_ess"):
            WeightedConformalRegressor(LinearRegression(), min_ess=0.0)
