"""Persistence for synthetic lots: share a dataset without sharing code.

``SiliconDataset.generate`` is deterministic, but downstream users (and
CI) often want a frozen artefact: the same matrices regardless of library
version, loadable without re-running the generator.  This module
round-trips the *measured* data (features + labels + minimal metadata)
through a single compressed ``.npz`` file, and exports the burn-in flow
log as CSV for spreadsheet/database ingestion.

The latent ground truth (process state, defect severities) is
intentionally **not** serialised: a persisted lot behaves like real
silicon data — you get measurements, not the hidden truth.  The defect
mask and true Vmin stay available only on freshly generated datasets.

Both writers are crash-safe: content goes to a temporary file and is
atomically renamed into place (:mod:`repro.runtime.artifacts`), so an
interrupted ``save_measurements`` can never leave a truncated archive
where a reader expects a lot.  On the read side, a truncated, corrupt,
or field-incomplete archive raises :class:`DatasetSchemaError` naming
the offending field instead of a raw ``KeyError``/``EOFError`` from
deep inside numpy.
"""

from __future__ import annotations

import csv
import io
import zipfile
from pathlib import Path
from typing import Union

import numpy as np

from repro.runtime.artifacts import atomic_path, atomic_write
from repro.silicon.ate import BurnInFlowSimulator
from repro.silicon.dataset import SiliconDataset

__all__ = [
    "DatasetSchemaError",
    "export_flow_csv",
    "load_measurements",
    "save_measurements",
]

_FORMAT_VERSION = 1


class DatasetSchemaError(ValueError):
    """A lot archive is unreadable or missing a required field.

    Raised by :func:`load_measurements` with the archive path and, when
    applicable, the name of the offending field -- the actionable
    message a test-floor engineer needs instead of a bare ``KeyError``
    out of ``numpy.lib.npyio``.
    """


def save_measurements(dataset: SiliconDataset, path: Union[str, Path]) -> Path:
    """Write the measured blocks of ``dataset`` to a compressed ``.npz``.

    Saved content: parametric matrix + channel metadata, every ROD/CPD
    block, every measured Vmin vector, and the read-point/temperature
    axes.  The archive is written atomically (temp file + rename), so a
    crash mid-save leaves either the previous lot or nothing -- never a
    torn file.  Returns the resolved path.
    """
    path = Path(path)
    arrays = {
        "format_version": np.array([_FORMAT_VERSION]),
        "read_points": np.asarray(dataset.read_points, dtype=np.int64),
        "temperatures": np.asarray(dataset.temperatures, dtype=np.float64),
        "parametric": dataset.parametric,
        "parametric_names": np.asarray(dataset.parametric_names),
        "parametric_temperatures": dataset.parametric_temperatures,
        "rod_names": np.asarray(dataset.rod_names),
        "cpd_names": np.asarray(dataset.cpd_names),
    }
    for hours in dataset.read_points:
        arrays[f"rod_{hours}"] = dataset.rod[hours]
        arrays[f"cpd_{hours}"] = dataset.cpd[hours]
        for temperature in dataset.temperatures:
            arrays[f"vmin_{temperature:g}_{hours}"] = dataset.vmin[
                (temperature, hours)
            ]
    # numpy appends ".npz" when the target has no extension; pin the
    # temp suffix so the atomic rename lands on the exact name written.
    with atomic_path(path, suffix=".npz") as tmp:
        np.savez_compressed(tmp, **arrays)
    return path.resolve()


class _MeasurementOnlyPopulation:
    """Sentinel standing in for the latent population of a loaded lot.

    Any attribute access raises with a clear message: persisted datasets
    carry measurements only (like real silicon data).
    """

    def __getattr__(self, name: str):
        raise AttributeError(
            "this SiliconDataset was loaded from disk and carries "
            "measurements only; the latent population (ground truth, "
            f"defect states) is not persisted (requested: {name!r})"
        )


def _read_field(archive, path: Path, name: str) -> np.ndarray:
    """Read one archive member, translating low-level failures.

    A missing member becomes a :class:`DatasetSchemaError` naming the
    field; a member whose compressed payload is truncated (the classic
    crash-mid-write signature of the pre-atomic writer) surfaces the
    same way instead of as ``EOFError``/``zlib.error`` from inside
    numpy.
    """
    try:
        return archive[name]
    except KeyError:
        raise DatasetSchemaError(
            f"{path}: lot archive is missing required field {name!r} "
            f"(format version {_FORMAT_VERSION}); was it written by "
            "save_measurements?"
        ) from None
    except (EOFError, OSError, zipfile.BadZipFile) as error:
        raise DatasetSchemaError(
            f"{path}: field {name!r} is truncated or corrupt ({error}); "
            "the archive was not written atomically or the disk is bad"
        ) from error


def load_measurements(path: Union[str, Path]) -> SiliconDataset:
    """Load a lot previously written by :func:`save_measurements`.

    The returned dataset supports every measurement accessor
    (``features``, ``target``, the raw blocks) but has no latent
    population: ``true_vmin`` is empty and ``population`` raises on
    access.  A file that is not a lot archive -- truncated, corrupt, or
    simply some other ``.npz`` -- raises :class:`DatasetSchemaError`
    naming the problem (and the missing field, when that is the
    problem); a missing file still raises ``FileNotFoundError``.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such lot archive: {path}")
    try:
        archive_cm = np.load(path, allow_pickle=False)
    except (zipfile.BadZipFile, ValueError, EOFError, OSError) as error:
        raise DatasetSchemaError(
            f"{path}: not a readable lot archive ({error}); the file is "
            "truncated, corrupt, or not an .npz written by save_measurements"
        ) from error
    with archive_cm as archive:
        version = int(_read_field(archive, path, "format_version")[0])
        if version != _FORMAT_VERSION:
            raise DatasetSchemaError(
                f"{path}: unsupported dataset format version {version}; "
                f"this library reads version {_FORMAT_VERSION}"
            )
        read_points = tuple(
            int(h) for h in _read_field(archive, path, "read_points")
        )
        temperatures = tuple(
            float(t) for t in _read_field(archive, path, "temperatures")
        )
        rod = {
            hours: _read_field(archive, path, f"rod_{hours}")
            for hours in read_points
        }
        cpd = {
            hours: _read_field(archive, path, f"cpd_{hours}")
            for hours in read_points
        }
        vmin = {
            (temperature, hours): _read_field(
                archive, path, f"vmin_{temperature:g}_{hours}"
            )
            for hours in read_points
            for temperature in temperatures
        }
        dataset = SiliconDataset(
            parametric=_read_field(archive, path, "parametric"),
            parametric_names=[
                str(n) for n in _read_field(archive, path, "parametric_names")
            ],
            parametric_temperatures=_read_field(
                archive, path, "parametric_temperatures"
            ),
            rod=rod,
            rod_names=[str(n) for n in _read_field(archive, path, "rod_names")],
            cpd=cpd,
            cpd_names=[str(n) for n in _read_field(archive, path, "cpd_names")],
            vmin=vmin,
            true_vmin={},
            population=_MeasurementOnlyPopulation(),  # type: ignore[arg-type]
            read_points=read_points,
            temperatures=temperatures,
        )
    return dataset


def export_flow_csv(
    dataset: SiliconDataset,
    path: Union[str, Path],
    include_parametric: bool = False,
) -> int:
    """Export the burn-in measurement log as CSV; returns the row count.

    One row per measurement event (see
    :class:`~repro.silicon.ate.MeasurementRecord`).  The parametric
    insertion is off by default — 1800 channels x n chips dominates the
    file without adding flow structure.  The CSV is written atomically:
    an interrupted export leaves no partial log behind.
    """
    path = Path(path)
    simulator = BurnInFlowSimulator(
        dataset, include_parametric=include_parametric
    )
    count = 0
    with atomic_write(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "read_point_hours",
                "insertion",
                "temperature_c",
                "chip_index",
                "channel",
                "value",
            ]
        )
        for record in simulator.run():
            writer.writerow(
                [
                    record.read_point_hours,
                    record.insertion,
                    record.temperature_c,
                    record.chip_index,
                    record.channel,
                    repr(record.value),
                ]
            )
            count += 1
    return count
