"""REP302 fixture: refitting a calibrated model without recalibrating."""


def drift_update(model, X_new, y_new):
    model.fit(X_new, y_new)
    model.calibrate(X_new, y_new)
    model.fit(X_new, y_new)  # REP302: scores now describe a stale model
    return model


def manual_scores_then_refit(model, residuals, X_new, y_new):
    model.calibration_scores_ = sorted(residuals)
    model.fit(X_new, y_new)  # REP302: manual calibration invalidated
    return model
