"""Tests for density-ratio estimation and the ESS degeneracy scale."""

import numpy as np
import pytest

from repro.shift import LogisticDensityRatio, effective_sample_size


class TestEffectiveSampleSize:
    def test_uniform_weights_equal_n(self):
        assert effective_sample_size(np.ones(40)) == pytest.approx(40.0)
        assert effective_sample_size(np.full(40, 0.3)) == pytest.approx(40.0)

    def test_concentrated_mass_collapses_toward_one(self):
        spike = np.zeros(100)
        spike[0] = 1.0
        assert effective_sample_size(spike) == pytest.approx(1.0)

    def test_all_zero_weights_are_zero(self):
        assert effective_sample_size(np.zeros(10)) == 0.0

    def test_validates_input(self):
        with pytest.raises(ValueError, match="non-empty"):
            effective_sample_size([])
        with pytest.raises(ValueError, match="finite"):
            effective_sample_size([1.0, np.inf])
        with pytest.raises(ValueError, match="non-negative"):
            effective_sample_size([1.0, -0.5])


class TestLogisticDensityRatio:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ridge": 0.0},
            {"max_iter": 0},
            {"tol": 0.0},
            {"clip_logit": 0.0},
            {"max_rows": 3},
        ],
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            LogisticDensityRatio(**kwargs)

    def test_estimate_validates_matrices(self, rng):
        ratio = LogisticDensityRatio()
        with pytest.raises(ValueError, match="2-D"):
            ratio.estimate(rng.normal(size=20), rng.normal(size=(20, 1)))
        with pytest.raises(ValueError, match="features"):
            ratio.estimate(
                rng.normal(size=(20, 2)), rng.normal(size=(20, 3))
            )
        with pytest.raises(ValueError, match="at least 2 rows"):
            ratio.estimate(
                rng.normal(size=(1, 2)), rng.normal(size=(20, 2))
            )

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            LogisticDensityRatio().weights(rng.normal(size=(5, 2)))

    def test_weights_upweight_the_current_region(self, rng):
        reference = rng.normal(size=(400, 2))
        current = rng.normal(loc=1.5, size=(400, 2))
        ratio = LogisticDensityRatio(ridge=1.0).estimate(reference, current)
        # Calibration rows that look like the current distribution must
        # carry more mass than rows that do not.
        near = ratio.weights(np.full((1, 2), 1.5))
        far = ratio.weights(np.full((1, 2), -1.5))
        assert near[0] > far[0]

    def test_class_prior_correction(self, rng):
        """Unbalanced class sizes rescale the ratio by n_ref / n_cur."""
        reference = rng.normal(size=(300, 2))
        current = rng.normal(size=(100, 2))
        ratio = LogisticDensityRatio(ridge=1e6).estimate(reference, current)
        # With an enormous ridge the logits shrink to ~0 and the weights
        # collapse to the bare prior correction.
        weights = ratio.weights(rng.normal(size=(50, 2)))
        assert weights == pytest.approx(np.full(50, 3.0), rel=1e-2)

    def test_weights_are_bounded_by_the_logit_clamp(self, rng):
        reference = rng.normal(size=(200, 2))
        current = rng.normal(loc=8.0, size=(200, 2))
        ratio = LogisticDensityRatio(ridge=0.01, clip_logit=5.0).estimate(
            reference, current
        )
        weights = ratio.weights(np.full((1, 2), 100.0))
        assert weights[0] <= (200 / 200) * np.exp(5.0) + 1e-9

    def test_probability_in_unit_interval(self, rng):
        reference = rng.normal(size=(200, 3))
        current = rng.normal(loc=1.0, size=(200, 3))
        ratio = LogisticDensityRatio().estimate(reference, current)
        p = ratio.probability(rng.normal(size=(100, 3)))
        assert np.all((p > 0.0) & (p < 1.0))

    def test_subsampled_solve_is_seeded(self, rng):
        reference = rng.normal(size=(500, 2))
        current = rng.normal(loc=1.0, size=(500, 2))
        probe = rng.normal(size=(50, 2))
        runs = [
            LogisticDensityRatio(max_rows=100, random_state=5)
            .estimate(reference, current)
            .weights(probe)
            for _ in range(2)
        ]
        np.testing.assert_array_equal(runs[0], runs[1])
