"""Bit-identity of the compiled decision-table kernels.

The compiled fast path is only admissible because it is *exactly* the
reference per-tree loop, not an approximation of it: every test here
asserts ``np.array_equal`` (same floats, bit for bit), never
``allclose``.  Coverage spans both ensemble families, both split
finders, depths 0-8, early-stopped models, float32 boundary inputs,
the serve-side ``ensure_compiled`` upgrade, and an end-to-end CQR
interval comparison through :class:`~repro.robust.flow.RobustVminFlow`.
"""

import numpy as np
import pytest

from repro.models.gbm import GradientBoostingRegressor
from repro.models.oblivious import ObliviousBoostingRegressor, ObliviousTree
from repro.models.tables import (
    CompiledDepthwiseTables,
    CompiledObliviousTables,
    compile_depthwise,
    compile_oblivious,
)
from repro.models.tree import GradientTree
from repro.serve.compiled import compiled_summary, ensure_compiled


def _strip_compiled(model):
    """Remove every compiled kernel so predict uses the reference loop."""
    from repro.serve.compiled import _iter_ensembles

    for ensemble in _iter_ensembles(model):
        if hasattr(ensemble, "compiled_"):
            del ensemble.compiled_
    return model


@pytest.fixture()
def regression_data(rng):
    X = rng.normal(size=(140, 12))
    y = X[:, 0] - 2.0 * X[:, 1] ** 2 + rng.normal(scale=0.3, size=140)
    return X[:100], y[:100], X[100:]


class TestDepthwiseParity:
    @pytest.mark.parametrize("tree_method", ["hist", "exact"])
    @pytest.mark.parametrize("max_depth", [0, 1, 3, 8])
    def test_predict_bit_identical_to_loop(
        self, regression_data, tree_method, max_depth
    ):
        Xtr, ytr, Xte = regression_data
        model = GradientBoostingRegressor(
            n_estimators=12,
            max_depth=max_depth,
            tree_method=tree_method,
            random_state=0,
        ).fit(Xtr, ytr)
        assert isinstance(model.compiled_, CompiledDepthwiseTables)
        assert np.array_equal(model.predict(Xte), model._predict_loop(Xte))

    @pytest.mark.parametrize("seed", range(5))
    def test_random_ensembles_with_sampling(self, rng, seed):
        X = rng.normal(size=(90, 7))
        y = rng.normal(size=90)
        model = GradientBoostingRegressor(
            n_estimators=15,
            subsample=0.7,
            colsample_bytree=0.6,
            random_state=seed,
        ).fit(X, y)
        Xte = rng.normal(size=(40, 7))
        assert np.array_equal(model.predict(Xte), model._predict_loop(Xte))

    def test_staged_predict_bit_identical(self, regression_data):
        Xtr, ytr, Xte = regression_data
        model = GradientBoostingRegressor(
            n_estimators=10, random_state=0
        ).fit(Xtr, ytr)
        stages = model.staged_predict(Xte)
        assert np.array_equal(stages, model._staged_predict_loop(Xte))
        assert np.array_equal(stages[-1], model.predict(Xte))

    def test_tree_values_columns_match_per_tree_predict(self, regression_data):
        Xtr, ytr, Xte = regression_data
        model = GradientBoostingRegressor(
            n_estimators=8, random_state=1
        ).fit(Xtr, ytr)
        values = model.compiled_.tree_values(Xte)
        assert values.shape == (Xte.shape[0], 8)
        for position, tree in enumerate(model.trees_):
            assert np.array_equal(values[:, position], tree.predict(Xte))

    def test_early_stopped_model_parity(self, rng):
        X = rng.normal(size=(120, 5))
        y = X[:, 0] + rng.normal(scale=0.1, size=120)
        model = GradientBoostingRegressor(
            n_estimators=100, random_state=0
        ).fit(
            X[:80], y[:80], eval_set=(X[80:], y[80:]), early_stopping_rounds=3
        )
        assert len(model.trees_) < 100
        assert model.compiled_.n_trees == len(model.trees_)
        Xte = rng.normal(size=(30, 5))
        assert np.array_equal(model.predict(Xte), model._predict_loop(Xte))


class TestObliviousParity:
    @pytest.mark.parametrize("depth", [1, 2, 4, 8])
    def test_predict_bit_identical_to_loop(self, regression_data, depth):
        Xtr, ytr, Xte = regression_data
        model = ObliviousBoostingRegressor(
            n_estimators=12, depth=depth, random_state=0
        ).fit(Xtr, ytr)
        assert isinstance(model.compiled_, CompiledObliviousTables)
        assert np.array_equal(model.predict(Xte), model._predict_loop(Xte))

    @pytest.mark.parametrize("seed", range(5))
    def test_random_ensembles_quantile_objective(self, rng, seed):
        X = rng.normal(size=(90, 7))
        y = rng.normal(size=90)
        model = ObliviousBoostingRegressor(
            n_estimators=15, quantile=0.9, random_state=seed
        ).fit(X, y)
        Xte = rng.normal(size=(40, 7))
        assert np.array_equal(model.predict(Xte), model._predict_loop(Xte))

    def test_staged_predict_bit_identical(self, regression_data):
        Xtr, ytr, Xte = regression_data
        model = ObliviousBoostingRegressor(
            n_estimators=10, random_state=0
        ).fit(Xtr, ytr)
        stages = model.staged_predict(Xte)
        assert np.array_equal(stages, model._staged_predict_loop(Xte))
        assert np.array_equal(stages[-1], model.predict(Xte))

    def test_tree_values_columns_match_per_tree_predict(self, regression_data):
        Xtr, ytr, Xte = regression_data
        model = ObliviousBoostingRegressor(
            n_estimators=8, random_state=1
        ).fit(Xtr, ytr)
        values = model.compiled_.tree_values(Xte)
        for position, tree in enumerate(model.trees_):
            assert np.array_equal(values[:, position], tree.predict(Xte))

    def test_mixed_depth_ensemble_padding(self, rng):
        """Shallow trees padded into a deeper table stay bit-identical."""
        trees = [
            ObliviousTree(
                features=np.array([0, 1], dtype=np.int64),
                thresholds=np.array([0.0, 0.5]),
                leaf_values=np.array([1.0, 2.0, 3.0, 4.0]),
            ),
            ObliviousTree(
                features=np.array([1], dtype=np.int64),
                thresholds=np.array([-0.25]),
                leaf_values=np.array([10.0, 20.0]),
            ),
            ObliviousTree(
                features=np.empty(0, dtype=np.int64),
                thresholds=np.empty(0),
                leaf_values=np.array([7.5]),
            ),
        ]
        compiled = compile_oblivious(trees)
        assert compiled.depth == 2
        X = rng.normal(size=(50, 3))
        values = compiled.tree_values(X)
        for position, tree in enumerate(trees):
            assert np.array_equal(values[:, position], tree.predict(X))


class TestDepthZeroTables:
    def test_tree_handles_depth_zero_itself(self):
        tree = ObliviousTree(
            features=np.empty(0, dtype=np.int64),
            thresholds=np.empty(0),
            leaf_values=np.array([1.5]),
        )
        X = np.zeros((4, 3))
        assert np.array_equal(tree.leaf_indices(X), np.zeros(4, dtype=np.int64))
        assert np.array_equal(tree.predict(X), np.full(4, 1.5))
        assert tree.predict(np.zeros((0, 3))).shape == (0,)

    def test_zero_split_fit_predicts_base_plus_leaves(self, rng):
        """A constant target admits no split: every tree is depth-0."""
        X = rng.normal(size=(50, 4))
        y = np.full(50, 3.25)
        model = ObliviousBoostingRegressor(
            n_estimators=5, random_state=0
        ).fit(X, y)
        assert all(tree.features.size == 0 for tree in model.trees_)
        Xte = rng.normal(size=(20, 4))
        prediction = model.predict(Xte)
        assert np.array_equal(prediction, model._predict_loop(Xte))
        np.testing.assert_allclose(prediction, 3.25)

    def test_compiled_depth_zero_ensemble(self):
        trees = [
            ObliviousTree(
                features=np.empty(0, dtype=np.int64),
                thresholds=np.empty(0),
                leaf_values=np.array([value]),
            )
            for value in (1.0, -2.0)
        ]
        compiled = compile_oblivious(trees)
        assert compiled.depth == 0
        X = np.zeros((6, 2))
        assert np.array_equal(
            compiled.tree_values(X), np.tile([1.0, -2.0], (6, 1))
        )


class TestFloat64BoundaryContract:
    # A threshold straddling two adjacent float32 values: rounding it to
    # float32 lands exactly on 1 + 2**-23, so a kernel comparing in
    # float32 would call `x > threshold` false for x = 1 + 2**-23 while
    # the float64 contract calls it true.
    THRESHOLD = 1.0 + 3.0 * 2.0**-25
    BOUNDARY = np.float32(1.0 + 2.0**-23)

    def test_oblivious_float32_matches_float64(self):
        tree = ObliviousTree(
            features=np.array([0], dtype=np.int64),
            thresholds=np.array([self.THRESHOLD]),
            leaf_values=np.array([10.0, 20.0]),
        )
        X32 = np.array([[self.BOUNDARY]], dtype=np.float32)
        X64 = X32.astype(np.float64)
        assert tree.predict(X32)[0] == 20.0
        assert np.array_equal(tree.predict(X32), tree.predict(X64))
        compiled = compile_oblivious([tree])
        assert np.array_equal(
            compiled.tree_values(X32), compiled.tree_values(X64)
        )
        assert compiled.tree_values(X32)[0, 0] == 20.0

    def test_depthwise_float32_matches_float64(self):
        tree = GradientTree()
        tree.feature_ = np.array([0, -1, -1], dtype=np.int64)
        tree.threshold_ = np.array([self.THRESHOLD, np.nan, np.nan])
        tree.left_ = np.array([1, 0, 0], dtype=np.int64)
        tree.right_ = np.array([2, 0, 0], dtype=np.int64)
        tree.value_ = np.array([0.0, -5.0, 5.0])
        tree.n_features_in_ = 1
        X32 = np.array([[self.BOUNDARY]], dtype=np.float32)
        X64 = X32.astype(np.float64)
        # x > threshold in float64, so the row routes right.
        assert tree.predict(X32)[0] == 5.0
        assert np.array_equal(tree.predict(X32), tree.predict(X64))
        compiled = compile_depthwise([tree])
        assert np.array_equal(
            compiled.tree_values(X32), compiled.tree_values(X64)
        )
        assert compiled.tree_values(X32)[0, 0] == 5.0

    def test_fitted_model_float32_batch_routes_identically(self, rng):
        X = rng.normal(size=(80, 5))
        y = rng.normal(size=80)
        model = GradientBoostingRegressor(
            n_estimators=10, random_state=0
        ).fit(X, y)
        Xte32 = rng.normal(size=(30, 5)).astype(np.float32)
        assert np.array_equal(
            model.predict(Xte32), model.predict(Xte32.astype(np.float64))
        )


class TestCompileValidation:
    def test_empty_ensembles_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            compile_depthwise([])
        with pytest.raises(ValueError, match="empty"):
            compile_oblivious([])

    def test_unfitted_tree_rejected(self):
        with pytest.raises(ValueError, match="not fitted"):
            compile_depthwise([GradientTree()])

    def test_inconsistent_leaf_count_rejected(self):
        bad = ObliviousTree(
            features=np.array([0], dtype=np.int64),
            thresholds=np.array([0.0]),
            leaf_values=np.array([1.0, 2.0, 3.0]),
        )
        with pytest.raises(ValueError, match="leaves"):
            compile_oblivious([bad])

    def test_kernel_rejects_non_2d_input(self, rng):
        X = rng.normal(size=(40, 3))
        model = ObliviousBoostingRegressor(
            n_estimators=3, random_state=0
        ).fit(X, rng.normal(size=40))
        with pytest.raises(ValueError, match="2-D"):
            model.compiled_.tree_values(np.zeros(3))

    def test_summaries(self, rng):
        X = rng.normal(size=(40, 3))
        y = rng.normal(size=40)
        gbm = GradientBoostingRegressor(n_estimators=4, random_state=0).fit(X, y)
        obl = ObliviousBoostingRegressor(n_estimators=4, random_state=0).fit(X, y)
        assert gbm.compiled_.summary()["kernel"] == "depthwise"
        assert gbm.compiled_.summary()["n_trees"] == 4
        summary = obl.compiled_.summary()
        assert summary["kernel"] == "oblivious"
        assert summary["n_leaves"] == 2 ** summary["depth"]


class TestEnsureCompiled:
    def test_upgrades_stripped_model_and_restores_fast_path(self, rng):
        X = rng.normal(size=(60, 4))
        y = rng.normal(size=60)
        model = ObliviousBoostingRegressor(
            n_estimators=5, random_state=0
        ).fit(X, y)
        reference = model.predict(X)
        _strip_compiled(model)
        assert ensure_compiled(model) == 1
        assert np.array_equal(model.predict(X), reference)
        # Idempotent: a second pass finds nothing to do.
        assert ensure_compiled(model) == 0

    def test_safe_on_arbitrary_objects(self):
        assert ensure_compiled({"not": "a model"}) == 0
        assert ensure_compiled(None) == 0
        assert compiled_summary("just a string") == []

    def test_summary_lists_every_ensemble_in_flow(self, rng):
        from repro.robust import RobustVminFlow

        X = rng.normal(size=(120, 6))
        y = X @ np.array([1.0, -0.5, 0.3, 0.0, 0.2, 0.1]) + rng.normal(
            scale=0.3, size=120
        )
        flow = RobustVminFlow(
            base_model=ObliviousBoostingRegressor(
                n_estimators=5, quantile=0.5, random_state=0
            ),
            alpha=0.2,
            random_state=0,
        ).fit(X, y)
        summaries = compiled_summary(flow)
        # The CQR band holds a lower and an upper quantile ensemble.
        assert len(summaries) >= 2
        assert all(entry["kernel"] == "oblivious" for entry in summaries)


class TestEndToEndCQRParity:
    def test_flow_intervals_identical_with_and_without_kernel(self, rng):
        from repro.robust import RobustVminFlow

        X = rng.normal(size=(160, 8))
        w = rng.normal(size=8)
        y = X @ w + rng.normal(scale=0.4, size=160)
        flow = RobustVminFlow(
            base_model=ObliviousBoostingRegressor(
                n_estimators=10, quantile=0.5, random_state=0
            ),
            alpha=0.1,
            random_state=0,
        ).fit(X[:120], y[:120])
        Xte = X[120:]
        compiled = flow.predict_interval(Xte)
        _strip_compiled(flow)
        loop = flow.predict_interval(Xte)
        assert np.array_equal(
            compiled.intervals.lower, loop.intervals.lower
        )
        assert np.array_equal(
            compiled.intervals.upper, loop.intervals.upper
        )
