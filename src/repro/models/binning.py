"""Quantile binning of feature matrices for histogram-based tree growth.

Both boosting models pre-discretise every feature into at most ``max_bins``
quantile bins once per fit; split search then works on integer bin codes
with ``np.bincount`` histograms instead of per-node sorting.  With the
paper's 156-chip dataset and the default 32 bins this is numerically
indistinguishable from exact greedy search while being orders of magnitude
faster on the 1800-column parametric feature block.

Binning used to happen once per *fit*; it now happens once per *dataset*:
:class:`BinnedDataset` bundles a fitted :class:`FeatureBinner` with its
code matrix (plus the level-0 histogram state every boosting round
recomputed identically), and :func:`shared_binned_dataset` memoises those
bundles content-addressed -- the CQR lo/hi pair, CV folds that share a
training slice, and experiment-grid cells that rebuild the same matrix
all reuse one binning pass.  Sharing is strictly a wall-clock
optimisation: cached codes are the exact arrays an independent fit would
have produced, so every model trained through the cache is bit-identical
to one trained without it (``tests/test_binshare.py`` asserts this).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "BinnedDataset",
    "FeatureBinner",
    "bin_cache_stats",
    "clear_bin_cache",
    "dataset_digest",
    "disable_bin_cache",
    "histogram_cells",
    "histogram_sums",
    "quantile_bin_edges",
    "seed_bin_cache",
    "shared_binned_dataset",
]


def quantile_bin_edges(column: np.ndarray, max_bins: int) -> np.ndarray:
    """Candidate split thresholds for one feature column.

    Returns a strictly increasing array of at most ``max_bins - 1``
    thresholds.  When the column has few distinct values, thresholds are
    the midpoints between consecutive distinct values (exact search);
    otherwise they are interior quantiles.  Constant columns yield an
    empty array -- they can never split.
    """
    if max_bins < 2:
        raise ValueError(f"max_bins must be >= 2, got {max_bins}")
    unique = np.unique(column)
    if unique.size <= 1:
        return np.empty(0)
    midpoints = (unique[:-1] + unique[1:]) / 2.0
    if midpoints.size <= max_bins - 1:
        return midpoints
    quantiles = np.linspace(0.0, 1.0, max_bins + 1)[1:-1]
    return np.unique(np.quantile(column, quantiles))


class FeatureBinner:
    """Digitise a feature matrix into integer bin codes.

    ``fit`` learns per-feature threshold arrays from the training matrix;
    ``transform`` maps any matrix with the same columns to codes in
    ``[0, n_bins)``.  Bin code ``b`` for feature ``j`` means
    ``edges[j][b-1] < x <= edges[j][b]`` (code 0 = below the first edge).
    """

    def __init__(self, max_bins: int = 32) -> None:
        if max_bins < 2:
            raise ValueError(f"max_bins must be >= 2, got {max_bins}")
        self.max_bins = max_bins
        self.edges_: List[np.ndarray] = []
        self._n_bins: Optional[int] = None

    @classmethod
    def from_edges(
        cls, max_bins: int, edges: Sequence[np.ndarray]
    ) -> "FeatureBinner":
        """Rebuild a fitted binner from per-feature edge arrays.

        Used to reconstitute binners shipped to worker processes (the
        edges travel by pickle once per worker, the code matrix by shared
        memory); the result is indistinguishable from the binner the
        edges came from.
        """
        binner = cls(max_bins)
        binner.edges_ = [np.asarray(e, dtype=np.float64) for e in edges]
        return binner

    def fit(self, X: np.ndarray) -> "FeatureBinner":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        self._n_bins = None
        n_samples, n_features = X.shape
        if n_samples == 0 or n_features == 0:
            self.edges_ = [
                quantile_bin_edges(X[:, j], self.max_bins)
                for j in range(n_features)
            ]
            return self
        # Vectorised equivalent of calling quantile_bin_edges per column
        # (kept above as the reference oracle): one column-wise sort finds
        # every column's distinct values, and the interior quantiles of
        # all many-valued columns are computed in a single np.quantile
        # call -- which is bit-identical to the per-column call, as the
        # parity tests assert.
        sorted_X = np.sort(X, axis=0)
        distinct_mask = np.empty(X.shape, dtype=bool)
        distinct_mask[0] = True
        np.not_equal(sorted_X[1:], sorted_X[:-1], out=distinct_mask[1:])
        n_distinct = distinct_mask.sum(axis=0)
        few = n_distinct <= self.max_bins  # midpoint path, constants included
        edges: List[Optional[np.ndarray]] = [None] * n_features
        many_columns = np.flatnonzero(~few)
        if many_columns.size:
            quantiles = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
            interior = np.quantile(X[:, many_columns], quantiles, axis=0)
            for position, j in enumerate(many_columns):
                edges[j] = np.unique(interior[:, position])
        for j in np.flatnonzero(few):
            unique = sorted_X[distinct_mask[:, j], j]
            if unique.size <= 1:
                edges[j] = np.empty(0)
            else:
                edges[j] = (unique[:-1] + unique[1:]) / 2.0
        self.edges_ = edges
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not self.edges_ and self.edges_ != []:
            raise RuntimeError("FeatureBinner is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.edges_):
            raise ValueError(
                f"X must be 2-D with {len(self.edges_)} columns, got shape {X.shape}"
            )
        # Codes are < max_bins, so the default 32-bin (and anything up to
        # 256-bin) matrix fits in uint8 -- a quarter of the int32 memory
        # traffic on the paper's 1800-column parametric block, which is
        # what the histogram inner loop spends most of its time streaming.
        dtype = np.uint8 if self.max_bins <= 256 else np.int32
        binned = np.zeros(X.shape, dtype=dtype)
        for j, edges in enumerate(self.edges_):
            if edges.size:
                binned[:, j] = np.searchsorted(edges, X[:, j], side="right")
        return binned

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    @property
    def n_bins(self) -> int:
        """Upper bound on bin codes across all features (codes < n_bins).

        Computed once per fitted binner: the per-tree growers read this
        every round, and recomputing the max over ~2000 edge arrays per
        tree is measurable on the paper-sized feature block.
        """
        if not self.edges_:
            return 1
        if self._n_bins is None:
            self._n_bins = max(
                (edges.size for edges in self.edges_), default=0
            ) + 1
        return self._n_bins

    def threshold(self, feature: int, bin_index: int) -> float:
        """Raw-unit threshold corresponding to splitting after ``bin_index``.

        A sample goes right iff its bin code exceeds ``bin_index``, i.e.
        iff its raw value exceeds ``edges[feature][bin_index]``.
        """
        edges = self.edges_[feature]
        if not 0 <= bin_index < edges.size:
            raise IndexError(
                f"bin_index {bin_index} out of range for feature {feature} "
                f"with {edges.size} edges"
            )
        return float(edges[bin_index])


def histogram_cells(
    binned: np.ndarray,
    leaf_idx: np.ndarray,
    n_leaves: int,
    n_bins: int,
    candidate_features: np.ndarray,
) -> np.ndarray:
    """Flat (feature, leaf, bin) cell index per (sample, feature) pair.

    Build once per tree level and feed to :func:`histogram_sums` for every
    statistic (gradients, Hessians, counts) so the index arithmetic is not
    repeated.
    """
    sub = binned[:, candidate_features]
    n_candidates = candidate_features.size
    return (
        np.arange(n_candidates)[None, :] * (n_leaves * n_bins)
        + leaf_idx[:, None] * n_bins
        + sub
    ).ravel()


def histogram_sums(
    cell: np.ndarray,
    weights: np.ndarray,
    n_leaves: int,
    n_bins: int,
    n_candidates: int,
) -> np.ndarray:
    """Sum per-sample ``weights`` into pre-computed (feature, leaf, bin) cells.

    ``cell`` comes from :func:`histogram_cells`; the result has shape
    ``(n_candidates, n_leaves, n_bins)``.  This is the inner loop of
    histogram-based split search shared by both boosting models.
    """
    size = n_candidates * n_leaves * n_bins
    return np.bincount(
        cell, weights=np.repeat(weights, n_candidates), minlength=size
    ).reshape(n_candidates, n_leaves, n_bins)


class BinnedDataset:
    """A fitted binner plus its code matrix, shareable across fits.

    The bundle is immutable from the models' point of view: ``codes`` is
    exactly ``binner.fit_transform(X)`` for the matrix it was built from,
    so any fit that starts from a :class:`BinnedDataset` produces the
    same floats as one that re-bins ``X`` itself.  On top of the codes it
    caches the two pieces of level-0 histogram state that every boosting
    round recomputes identically when no row/column sampling is active:
    the flat (feature, leaf, bin) cell index and the unit-weight
    histogram (sample counts, which double as the Hessian histogram for
    the unit-Hessian squared-error/pinball objectives).

    Row-subset views via :meth:`take` are only valid *within* one fit
    (boosting row subsampling): a CV fold must not slice a full-dataset
    code matrix, because a binner fitted on the fold's rows has different
    edges.  Fold sharing happens one level up, in
    :func:`shared_binned_dataset`, which memoises one ``BinnedDataset``
    per distinct row subset by content.
    """

    def __init__(self, binner: FeatureBinner, codes: np.ndarray) -> None:
        codes = np.asarray(codes)
        if codes.ndim != 2 or codes.shape[1] != len(binner.edges_):
            raise ValueError(
                f"codes must be 2-D with {len(binner.edges_)} columns, "
                f"got shape {codes.shape}"
            )
        self.binner = binner
        self.codes = codes
        self.n_bins = int(binner.n_bins)
        self.codes_max = int(codes.max()) if codes.size else 0
        self._root_level: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        self._lock = threading.Lock()

    @classmethod
    def from_matrix(cls, X: np.ndarray, max_bins: int) -> "BinnedDataset":
        """Fit a binner on ``X`` and bundle it with the code matrix."""
        binner = FeatureBinner(max_bins)
        return cls(binner, binner.fit_transform(X))

    @property
    def n_samples(self) -> int:
        return int(self.codes.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.codes.shape[1])

    @property
    def max_bins(self) -> int:
        return int(self.binner.max_bins)

    def take(self, rows: np.ndarray) -> np.ndarray:
        """Row-subset codes for in-fit subsampling (same binner edges)."""
        return self.codes[rows]

    def root_level(self, n_bins: int) -> Tuple[np.ndarray, np.ndarray]:
        """Level-0 ``(cell, unit_histogram)`` over *all* features.

        Valid only for split searches whose candidate set is the full
        ``arange(n_features)`` and whose rows are the full matrix -- the
        growers fall back to computing their own state otherwise.  Keyed
        by ``n_bins`` because the two boosting models size their
        histograms differently (``binner.n_bins`` vs. ``codes.max()+1``).
        The lock makes concurrent lo/hi member fits build the state once.
        """
        with self._lock:
            cached = self._root_level.get(n_bins)
            if cached is None:
                root_slot = np.zeros(self.n_samples, dtype=np.int64)
                cell = histogram_cells(
                    self.codes, root_slot, 1, n_bins,
                    np.arange(self.n_features),
                )
                unit = histogram_sums(
                    cell, np.ones(self.n_samples), 1, n_bins, self.n_features
                )
                cached = (cell, unit)
                self._root_level[n_bins] = cached
            return cached


# ---------------------------------------------------------------------------
# content-addressed dataset cache
# ---------------------------------------------------------------------------

_CACHE_LOCK = threading.RLock()
_CACHE: "OrderedDict[str, BinnedDataset]" = OrderedDict()
_CACHE_CAPACITY = 64
_CACHE_ENABLED = True
_CACHE_STATS = {"hits": 0, "builds": 0, "seeded": 0}


def dataset_digest(X: np.ndarray, max_bins: int) -> str:
    """Content key for one (matrix, max_bins) binning problem.

    SHA-256 over the float64 bytes plus shape and resolution: two
    matrices with equal content share a key no matter how they were
    produced (a fold slice, a fresh feature build, a shared-memory view),
    which is what lets the CQR pair, CV folds, and grid cells converge on
    one binning pass without any caller-side plumbing.
    """
    X = np.ascontiguousarray(X, dtype=np.float64)
    digest = hashlib.sha256()
    digest.update(f"{X.shape[0]}x{X.shape[1]}:{int(max_bins)}:".encode())
    digest.update(X.data)
    return digest.hexdigest()


def shared_binned_dataset(X: np.ndarray, max_bins: int) -> BinnedDataset:
    """The memoised :class:`BinnedDataset` for ``X`` at ``max_bins``.

    Cache hits return the already-built bundle (codes, edges, level-0
    histogram state) without touching ``X`` beyond hashing it; misses
    bin once and insert.  The cache is process-global, thread-safe, and
    LRU-bounded; :func:`disable_bin_cache` bypasses it entirely for
    benchmarking the unshared path.
    """
    X = np.asarray(X, dtype=np.float64)
    if not _CACHE_ENABLED:
        return BinnedDataset.from_matrix(X, max_bins)
    key = dataset_digest(X, max_bins)
    with _CACHE_LOCK:
        cached = _CACHE.get(key)
        if cached is not None:
            _CACHE.move_to_end(key)
            _CACHE_STATS["hits"] += 1
            return cached
    built = BinnedDataset.from_matrix(X, max_bins)
    with _CACHE_LOCK:
        winner = _CACHE.setdefault(key, built)
        _CACHE.move_to_end(key)
        _CACHE_STATS["builds"] += 1
        while len(_CACHE) > _CACHE_CAPACITY:
            _CACHE.popitem(last=False)
    return winner


def seed_bin_cache(entries: Mapping[str, BinnedDataset]) -> None:
    """Pre-populate the cache with externally built bundles.

    The process-grid engine calls this in every worker with bundles
    whose code matrices are shared-memory views: cells then hit the
    cache by content digest instead of re-binning, without the matrices
    ever having been pickled.
    """
    with _CACHE_LOCK:
        for key, dataset in entries.items():
            if not isinstance(dataset, BinnedDataset):
                raise TypeError(
                    f"cache entries must be BinnedDataset, got {type(dataset)!r}"
                )
            _CACHE[key] = dataset
            _CACHE.move_to_end(key)
            _CACHE_STATS["seeded"] += 1
        while len(_CACHE) > _CACHE_CAPACITY:
            _CACHE.popitem(last=False)


def clear_bin_cache() -> None:
    """Drop every cached dataset and reset the hit/build counters."""
    with _CACHE_LOCK:
        _CACHE.clear()
        for key in _CACHE_STATS:
            _CACHE_STATS[key] = 0


def bin_cache_stats() -> Dict[str, int]:
    """Snapshot of cache counters plus the current entry count."""
    with _CACHE_LOCK:
        stats = dict(_CACHE_STATS)
        stats["entries"] = len(_CACHE)
        return stats


@contextmanager
def disable_bin_cache() -> Iterator[None]:
    """Context manager: every fit inside re-bins independently.

    Used by the perf benchmark to time the unshared path honestly and by
    the parity tests to produce the no-cache reference models.
    """
    global _CACHE_ENABLED
    with _CACHE_LOCK:
        previous = _CACHE_ENABLED
        _CACHE_ENABLED = False
    try:
        yield
    finally:
        with _CACHE_LOCK:
            _CACHE_ENABLED = previous
