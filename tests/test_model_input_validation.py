"""Non-finite-input contract for every regressor in :mod:`repro.models`.

Property-style check: every model must raise a *clear* ``ValueError``
(never a numpy warning or a garbage prediction) when handed NaN or Inf
at either fit or predict time.  Robust serving relies on this contract:
:mod:`repro.robust` sanitizes inputs *because* the models refuse them.
"""

import warnings

import numpy as np
import pytest

from repro.models import (
    DecisionTreeRegressor,
    DeepEnsembleRegressor,
    GaussianProcessRegressor,
    GradientBoostingRegressor,
    LinearRegression,
    MLPRegressor,
    ObliviousBoostingRegressor,
    PackageDefaultQuantileBand,
    QuantileBandRegressor,
    QuantileLinearRegression,
)
from repro.models.base import check_X

MODEL_FACTORIES = {
    "LinearRegression": lambda: LinearRegression(),
    "QuantileLinearRegression": lambda: QuantileLinearRegression(max_iter=50),
    "DecisionTreeRegressor": lambda: DecisionTreeRegressor(max_depth=3),
    "GradientBoostingRegressor": lambda: GradientBoostingRegressor(
        n_estimators=5, max_depth=2, random_state=0
    ),
    "ObliviousBoostingRegressor": lambda: ObliviousBoostingRegressor(
        n_estimators=5, depth=2, random_state=0
    ),
    "MLPRegressor": lambda: MLPRegressor(hidden_units=4, epochs=20, random_state=0),
    "GaussianProcessRegressor": lambda: GaussianProcessRegressor(
        optimizer=None, n_restarts=0, alpha=1e-6
    ),
    "DeepEnsembleRegressor": lambda: DeepEnsembleRegressor(
        template=LinearRegression(), n_members=2, random_state=0
    ),
    "QuantileBandRegressor": lambda: QuantileBandRegressor(
        QuantileLinearRegression(max_iter=50), alpha=0.2
    ),
    "PackageDefaultQuantileBand": lambda: PackageDefaultQuantileBand(
        QuantileLinearRegression(max_iter=50), random_state=0
    ),
}


@pytest.fixture(params=sorted(MODEL_FACTORIES), ids=str)
def model(request):
    return MODEL_FACTORIES[request.param]()


@pytest.fixture()
def data(rng):
    X = rng.normal(size=(40, 3))
    y = X @ np.array([1.0, -2.0, 0.5]) + rng.normal(scale=0.1, size=40)
    return X, y


def _predict(model, X):
    """Exercise whichever prediction surface the model exposes."""
    if hasattr(model, "predict_interval"):
        return model.predict_interval(X)
    return model.predict(X)


class TestNonFiniteInputsRejected:
    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf], ids=str)
    def test_fit_rejects_non_finite_X(self, model, data, bad):
        X, y = data
        X = X.copy()
        X[3, 1] = bad
        with pytest.raises(ValueError, match="NaN or infinite"):
            model.fit(X, y)

    @pytest.mark.parametrize("bad", [np.nan, np.inf], ids=str)
    def test_fit_rejects_non_finite_y(self, model, data, bad):
        X, y = data
        y = y.copy()
        y[7] = bad
        with pytest.raises(ValueError, match="NaN or infinite"):
            model.fit(X, y)

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf], ids=str)
    def test_predict_rejects_non_finite_X(self, model, data, bad):
        X, y = data
        model.fit(X, y)
        X_bad = X.copy()
        X_bad[0, 0] = bad
        with warnings.catch_warnings():
            # A clear error, not a numpy all-NaN/overflow warning.
            warnings.simplefilter("error")
            with pytest.raises(ValueError, match="NaN or infinite"):
                _predict(model, X_bad)

    def test_clean_fit_predict_round_trip(self, model, data):
        X, y = data
        out = _predict(model.fit(X, y), X)
        flat = np.concatenate([np.asarray(o).ravel() for o in np.atleast_1d(out)])
        assert np.isfinite(flat).all()


class TestCheckXColumnReporting:
    def test_error_names_offending_columns(self):
        X = np.zeros((5, 6))
        X[0, 1] = np.nan
        X[2, 4] = np.inf
        with pytest.raises(ValueError, match=r"column\(s\) \[1, 4\]"):
            check_X(X)

    def test_error_truncates_long_column_lists(self):
        X = np.full((3, 15), np.nan)
        with pytest.raises(ValueError, match=r"\(15 columns total\)"):
            check_X(X)

    def test_clean_matrix_passes(self, rng):
        X = rng.normal(size=(4, 3))
        np.testing.assert_array_equal(check_X(X), X)
