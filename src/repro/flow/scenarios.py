"""Feature-availability scenarios of the paper's Fig. 1.

A prediction *scenario* fixes what the predictor is allowed to see:

* **production** (read point 0): parametric tests and on-chip monitors,
  both freshly measured on the ATE;
* **in-field** (read point > 0): parametric data frozen at time 0 (no
  retest after shipping) plus on-chip monitor readings from every read
  point up to the prediction time.

:func:`build_scenario` materialises the matrix/label pair for a dataset,
corner, and read point, with the Fig.-3 feature-set restriction
(parametric-only / on-chip-only / both) applied on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.eval.experiments import FeatureSet
from repro.silicon.constants import validate_read_point, validate_temperature
from repro.silicon.dataset import SiliconDataset

__all__ = ["PredictionScenario", "build_forecast_scenario", "build_scenario"]


@dataclass(frozen=True)
class PredictionScenario:
    """A fully materialised prediction task.

    Attributes
    ----------
    kind:
        ``"production"`` (time 0), ``"in_field"`` (concurrent monitors),
        or ``"forecast"`` (label from a later read point).
    temperature_c, hours:
        The SCAN Vmin corner and stress read point being predicted.
    feature_set:
        Which Fig.-3 feature configuration was used.
    X, feature_names:
        The feature matrix and aligned column names.
    y:
        Measured SCAN Vmin labels (V).
    """

    kind: str
    temperature_c: float
    hours: int
    feature_set: FeatureSet
    X: np.ndarray
    feature_names: Tuple[str, ...]
    y: np.ndarray

    @property
    def n_chips(self) -> int:
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.X.shape[1])

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.kind} scenario: predict SCAN Vmin @ "
            f"{self.temperature_c:g} degC, {self.hours} h stress, from "
            f"{self.n_features} features ({self.feature_set.value}) "
            f"over {self.n_chips} chips"
        )


def build_scenario(
    dataset: SiliconDataset,
    temperature_c: float,
    hours: int,
    feature_set: FeatureSet = FeatureSet.BOTH,
) -> PredictionScenario:
    """Materialise the Fig.-1 scenario for one corner and read point."""
    temperature_c = validate_temperature(temperature_c)
    hours = validate_read_point(hours)
    X, names = dataset.features(
        hours,
        include_parametric=feature_set.include_parametric,
        include_onchip=feature_set.include_onchip,
    )
    return PredictionScenario(
        kind="production" if hours == 0 else "in_field",
        temperature_c=temperature_c,
        hours=hours,
        feature_set=feature_set,
        X=X,
        feature_names=tuple(names),
        y=dataset.target(temperature_c, hours),
    )


def build_forecast_scenario(
    dataset: SiliconDataset,
    temperature_c: float,
    from_hours: int,
    to_hours: int,
    feature_set: FeatureSet = FeatureSet.BOTH,
) -> PredictionScenario:
    """Forecast a *future* read point from data available earlier.

    The paper predicts Vmin at read point ``t`` from data up to ``t``
    (monitors and Vmin are collected at the same pause).  The natural
    in-field extension -- flagging a part *before* its next check-in --
    is to forecast the Vmin at ``to_hours`` from features available at
    ``from_hours`` only.  Feature availability follows the same Fig.-1
    rule evaluated at ``from_hours``; only the label moves forward.
    """
    temperature_c = validate_temperature(temperature_c)
    from_hours = validate_read_point(from_hours)
    to_hours = validate_read_point(to_hours)
    if to_hours <= from_hours:
        raise ValueError(
            f"forecast target ({to_hours} h) must lie after the feature "
            f"cut-off ({from_hours} h)"
        )
    X, names = dataset.features(
        from_hours,
        include_parametric=feature_set.include_parametric,
        include_onchip=feature_set.include_onchip,
    )
    return PredictionScenario(
        kind="forecast",
        temperature_c=temperature_c,
        hours=to_hours,
        feature_set=feature_set,
        X=X,
        feature_names=tuple(names),
        y=dataset.target(temperature_c, to_hours),
    )
