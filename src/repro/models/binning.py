"""Quantile binning of feature matrices for histogram-based tree growth.

Both boosting models pre-discretise every feature into at most ``max_bins``
quantile bins once per fit; split search then works on integer bin codes
with ``np.bincount`` histograms instead of per-node sorting.  With the
paper's 156-chip dataset and the default 32 bins this is numerically
indistinguishable from exact greedy search while being orders of magnitude
faster on the 1800-column parametric feature block.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = [
    "FeatureBinner",
    "histogram_cells",
    "histogram_sums",
    "quantile_bin_edges",
]


def quantile_bin_edges(column: np.ndarray, max_bins: int) -> np.ndarray:
    """Candidate split thresholds for one feature column.

    Returns a strictly increasing array of at most ``max_bins - 1``
    thresholds.  When the column has few distinct values, thresholds are
    the midpoints between consecutive distinct values (exact search);
    otherwise they are interior quantiles.  Constant columns yield an
    empty array -- they can never split.
    """
    if max_bins < 2:
        raise ValueError(f"max_bins must be >= 2, got {max_bins}")
    unique = np.unique(column)
    if unique.size <= 1:
        return np.empty(0)
    midpoints = (unique[:-1] + unique[1:]) / 2.0
    if midpoints.size <= max_bins - 1:
        return midpoints
    quantiles = np.linspace(0.0, 1.0, max_bins + 1)[1:-1]
    return np.unique(np.quantile(column, quantiles))


class FeatureBinner:
    """Digitise a feature matrix into integer bin codes.

    ``fit`` learns per-feature threshold arrays from the training matrix;
    ``transform`` maps any matrix with the same columns to codes in
    ``[0, n_bins)``.  Bin code ``b`` for feature ``j`` means
    ``edges[j][b-1] < x <= edges[j][b]`` (code 0 = below the first edge).
    """

    def __init__(self, max_bins: int = 32) -> None:
        if max_bins < 2:
            raise ValueError(f"max_bins must be >= 2, got {max_bins}")
        self.max_bins = max_bins
        self.edges_: List[np.ndarray] = []

    def fit(self, X: np.ndarray) -> "FeatureBinner":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        self.edges_ = [quantile_bin_edges(X[:, j], self.max_bins) for j in range(X.shape[1])]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if not self.edges_ and self.edges_ != []:
            raise RuntimeError("FeatureBinner is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.edges_):
            raise ValueError(
                f"X must be 2-D with {len(self.edges_)} columns, got shape {X.shape}"
            )
        # Codes are < max_bins, so the default 32-bin (and anything up to
        # 256-bin) matrix fits in uint8 -- a quarter of the int32 memory
        # traffic on the paper's 1800-column parametric block, which is
        # what the histogram inner loop spends most of its time streaming.
        dtype = np.uint8 if self.max_bins <= 256 else np.int32
        binned = np.zeros(X.shape, dtype=dtype)
        for j, edges in enumerate(self.edges_):
            if edges.size:
                binned[:, j] = np.searchsorted(edges, X[:, j], side="right")
        return binned

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)

    @property
    def n_bins(self) -> int:
        """Upper bound on bin codes across all features (codes < n_bins)."""
        if not self.edges_:
            return 1
        return max((edges.size for edges in self.edges_), default=0) + 1

    def threshold(self, feature: int, bin_index: int) -> float:
        """Raw-unit threshold corresponding to splitting after ``bin_index``.

        A sample goes right iff its bin code exceeds ``bin_index``, i.e.
        iff its raw value exceeds ``edges[feature][bin_index]``.
        """
        edges = self.edges_[feature]
        if not 0 <= bin_index < edges.size:
            raise IndexError(
                f"bin_index {bin_index} out of range for feature {feature} "
                f"with {edges.size} edges"
            )
        return float(edges[bin_index])


def histogram_cells(
    binned: np.ndarray,
    leaf_idx: np.ndarray,
    n_leaves: int,
    n_bins: int,
    candidate_features: np.ndarray,
) -> np.ndarray:
    """Flat (feature, leaf, bin) cell index per (sample, feature) pair.

    Build once per tree level and feed to :func:`histogram_sums` for every
    statistic (gradients, Hessians, counts) so the index arithmetic is not
    repeated.
    """
    sub = binned[:, candidate_features]
    n_candidates = candidate_features.size
    return (
        np.arange(n_candidates)[None, :] * (n_leaves * n_bins)
        + leaf_idx[:, None] * n_bins
        + sub
    ).ravel()


def histogram_sums(
    cell: np.ndarray,
    weights: np.ndarray,
    n_leaves: int,
    n_bins: int,
    n_candidates: int,
) -> np.ndarray:
    """Sum per-sample ``weights`` into pre-computed (feature, leaf, bin) cells.

    ``cell`` comes from :func:`histogram_cells`; the result has shape
    ``(n_candidates, n_leaves, n_bins)``.  This is the inner loop of
    histogram-based split search shared by both boosting models.
    """
    size = n_candidates * n_leaves * n_bins
    return np.bincount(
        cell, weights=np.repeat(weights, n_candidates), minlength=size
    ).reshape(n_candidates, n_leaves, n_bins)
