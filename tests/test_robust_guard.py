"""Tests for the health guard and the bounded imputer."""

import numpy as np
import pytest

from repro.models.base import NotFittedError
from repro.robust.guard import FeatureHealthGuard
from repro.robust.imputation import TrainStatImputer


@pytest.fixture()
def train(rng):
    X = rng.normal(size=(200, 6)) * np.array([1.0, 2.0, 0.5, 3.0, 1.0, 1.0])
    X[:, 5] = 4.2  # constant at train time
    return X


@pytest.fixture()
def guard(train):
    return FeatureHealthGuard().fit(train)


class TestFeatureHealthGuard:
    def test_clean_batch_is_healthy(self, guard, train):
        report = guard.assess(train[:50])
        assert report.healthy
        assert report.unhealthy_fraction == 0.0
        assert report.damaged_entry_fraction == 0.0

    def test_missing_entries_flagged(self, guard, train):
        batch = train[:10].copy()
        batch[0, 1] = np.nan
        batch[3, 2] = np.inf
        report = guard.assess(batch)
        assert report.missing[0, 1] and report.missing[3, 2]
        assert report.missing.sum() == 2
        assert not report.healthy

    def test_dead_column_is_unhealthy(self, guard, train):
        batch = train[:10].copy()
        batch[:, 4] = np.nan
        report = guard.assess(batch)
        assert report.unhealthy[4]
        assert report.unhealthy_fraction == pytest.approx(1 / 6)

    def test_stuck_column_detected(self, guard, train):
        batch = train[:10].copy()
        batch[:, 0] = batch[0, 0]
        report = guard.assess(batch)
        assert report.stuck[0]
        assert report.unhealthy[0]

    def test_train_constant_column_not_stuck(self, guard, train):
        report = guard.assess(train[:10])
        assert not report.stuck[5]

    def test_single_sample_cannot_be_stuck(self, guard, train):
        report = guard.assess(train[:1])
        assert not report.stuck.any()

    def test_out_of_range_detected(self, guard, train):
        batch = train[:10].copy()
        batch[2, 3] = 1e6
        report = guard.assess(batch)
        assert report.out_of_range[2, 3]
        assert report.out_of_range.sum() == 1

    def test_moderate_values_stay_in_range(self, guard, train):
        batch = train[:50].copy()
        batch[:, :5] *= 1.05  # mild drift on the varying columns
        report = guard.assess(batch)
        assert report.out_of_range.mean() < 0.05

    def test_unhealthy_fraction_of_subset(self, guard, train):
        batch = train[:10].copy()
        batch[:, 4] = np.nan
        report = guard.assess(batch)
        assert report.unhealthy_fraction_of([4]) == 1.0
        assert report.unhealthy_fraction_of([0, 1]) == 0.0
        assert report.unhealthy_fraction_of([]) == 0.0
        with pytest.raises(ValueError, match="column indices"):
            report.unhealthy_fraction_of([99])

    def test_describe_mentions_counts(self, guard, train):
        batch = train[:10].copy()
        batch[:, 4] = np.nan
        text = guard.assess(batch).describe()
        assert "unhealthy" in text and "10 missing" in text

    def test_structural_errors_raise(self, guard, train):
        with pytest.raises(ValueError, match="2-D"):
            guard.assess(train[0])
        with pytest.raises(ValueError, match="features"):
            guard.assess(train[:5, :3])

    def test_unfitted_raises(self, train):
        with pytest.raises(NotFittedError):
            FeatureHealthGuard().assess(train)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="range_quantiles"):
            FeatureHealthGuard(range_quantiles=(0.9, 0.1))
        with pytest.raises(ValueError, match="range_inflation"):
            FeatureHealthGuard(range_inflation=-1.0)
        with pytest.raises(ValueError, match="unhealthy_fraction"):
            FeatureHealthGuard(unhealthy_fraction=2.0)

    def test_fit_requires_clean_training_data(self, train):
        dirty = train.copy()
        dirty[0, 0] = np.nan
        with pytest.raises(ValueError, match="NaN or infinite"):
            FeatureHealthGuard().fit(dirty)


class TestTrainStatImputer:
    def test_output_is_always_finite(self, train, rng):
        imputer = TrainStatImputer().fit(train)
        batch = train[:20].copy()
        batch[rng.random(batch.shape) < 0.5] = np.nan
        batch[0, 0] = np.inf
        out = imputer.transform(batch)
        assert np.isfinite(out).all()

    def test_missing_replaced_by_median(self, train):
        imputer = TrainStatImputer().fit(train)
        batch = train[:5].copy()
        batch[:, 2] = np.nan
        out = imputer.transform(batch)
        np.testing.assert_allclose(out[:, 2], np.median(train[:, 2]))

    def test_healthy_entries_untouched(self, train):
        imputer = TrainStatImputer(clip=False).fit(train)
        out = imputer.transform(train[:20])
        np.testing.assert_array_equal(out, train[:20])

    def test_stuck_columns_medianised(self, train):
        imputer = TrainStatImputer().fit(train)
        stuck = np.zeros(6, dtype=bool)
        stuck[1] = True
        out = imputer.transform(train[:5], stuck=stuck)
        np.testing.assert_allclose(out[:, 1], np.median(train[:, 1]))

    def test_clipping_bounds_extrapolation(self, train):
        imputer = TrainStatImputer(clip=True, clip_margin=0.0).fit(train)
        batch = train[:5].copy()
        batch[0, 0] = 1e9
        batch[1, 0] = -1e9
        out = imputer.transform(batch)
        assert out[0, 0] == train[:, 0].max()
        assert out[1, 0] == train[:, 0].min()

    def test_input_not_mutated(self, train):
        imputer = TrainStatImputer().fit(train)
        batch = train[:5].copy()
        batch[0, 0] = np.nan
        snapshot = batch.copy()
        imputer.transform(batch)
        np.testing.assert_array_equal(
            np.isnan(batch), np.isnan(snapshot)
        )

    def test_structural_errors_raise(self, train):
        imputer = TrainStatImputer().fit(train)
        with pytest.raises(ValueError, match="features"):
            imputer.transform(train[:5, :3])
        with pytest.raises(ValueError, match="stuck mask"):
            imputer.transform(train[:5], stuck=np.zeros(3, dtype=bool))

    def test_unfitted_raises(self, train):
        with pytest.raises(NotFittedError):
            TrainStatImputer().transform(train)

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError, match="clip_margin"):
            TrainStatImputer(clip_margin=-0.1)
