"""Tests for the experiment registry (smoke-profile runs + shape checks).

These tests exercise the same code paths as the benchmark harness but at
the smallest budgets; the *qualitative* paper shapes asserted here are
the contract EXPERIMENTS.md documents.
"""

import dataclasses

import numpy as np
import pytest

from repro.eval.experiments import (
    ExperimentProfile,
    FeatureSet,
    POINT_MODEL_NAMES,
    REGION_METHOD_NAMES,
    run_point_experiment,
    run_region_experiment,
)


@pytest.fixture(scope="module")
def profile():
    return ExperimentProfile.smoke()


class TestProfiles:
    def test_from_name_round_trip(self):
        assert ExperimentProfile.from_name("full") == ExperimentProfile.full()
        assert ExperimentProfile.from_name("fast").nn_epochs < 3000

    def test_from_name_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown profile"):
            ExperimentProfile.from_name("turbo")

    def test_full_profile_is_paper_exact(self):
        profile = ExperimentProfile.full()
        assert profile.nn_epochs == 3000
        assert profile.xgb_estimators == 100
        assert profile.catboost_estimators == 100
        assert profile.cfs_k_values == tuple(range(1, 11))
        assert profile.n_folds == 4


class TestFeatureSet:
    def test_flags(self):
        assert FeatureSet.BOTH.include_parametric and FeatureSet.BOTH.include_onchip
        assert not FeatureSet.ONCHIP.include_parametric
        assert not FeatureSet.PARAMETRIC.include_onchip


class TestPointExperiments:
    @pytest.mark.parametrize("model", POINT_MODEL_NAMES)
    def test_every_model_runs(self, lot, profile, model):
        result = run_point_experiment(lot, model, 25.0, 0, profile=profile)
        assert result.n_folds == profile.n_folds
        assert np.isfinite(result.r2)
        assert result.rmse > 0

    def test_lr_is_competitive(self, lot, profile):
        """Paper Section IV-D: LR is a competitive point predictor."""
        lr = run_point_experiment(lot, "LR", 25.0, 0, profile=profile)
        assert lr.r2 > 0.5

    def test_rmse_in_paper_ballpark(self, lot, profile):
        """Section IV-D quotes 2.5-7 mV for the non-GP models."""
        lr = run_point_experiment(lot, "LR", 25.0, 0, profile=profile)
        assert 1.0 < lr.rmse < 15.0  # mV

    def test_unknown_model_rejected(self, lot, profile):
        with pytest.raises(ValueError, match="unknown point model"):
            run_point_experiment(lot, "SVM", 25.0, 0, profile=profile)

    def test_degradation_prediction_runs(self, lot, profile):
        result = run_point_experiment(lot, "LR", 25.0, 1008, profile=profile)
        assert result.r2 > 0.3  # monitors keep late Vmin predictable


class TestRegionExperiments:
    @pytest.mark.parametrize("method", ["GP", "QR LR", "CQR LR"])
    def test_cheap_methods_run(self, lot, profile, method):
        result = run_region_experiment(lot, method, 25.0, 0, profile=profile)
        assert result.width > 0
        assert 0.0 <= result.coverage <= 1.0

    def test_unknown_method_rejected(self, lot, profile):
        with pytest.raises(ValueError, match="unknown region method"):
            run_region_experiment(lot, "CQR SVM", 25.0, 0, profile=profile)

    def test_cqr_improves_qr_coverage(self, lot, profile):
        """The paper's headline: conformalizing QR restores coverage."""
        qr = run_region_experiment(lot, "QR LR", 25.0, 0, profile=profile)
        cqr = run_region_experiment(lot, "CQR LR", 25.0, 0, profile=profile)
        assert cqr.coverage > qr.coverage

    def test_qr_catboost_collapse_shape(self, lot, profile):
        """Package-default CatBoost quantiles produce the pathological
        narrow, drastically under-covered band of Table III."""
        result = run_region_experiment(lot, "QR CatBoost", 25.0, 0, profile=profile)
        assert result.width < 6.0  # mV; paper ~1-2.5
        assert result.coverage < 0.5

    def test_cqr_catboost_recovers_coverage(self, lot, profile):
        result = run_region_experiment(lot, "CQR CatBoost", 25.0, 0, profile=profile)
        assert result.coverage > 0.75

    def test_trap_ablation_changes_qr_band(self, lot, profile):
        proper = dataclasses.replace(profile, catboost_quantile_trap=False)
        trap = run_region_experiment(lot, "QR CatBoost", 25.0, 0, profile=profile)
        fixed = run_region_experiment(lot, "QR CatBoost", 25.0, 0, profile=proper)
        assert fixed.width > 3.0 * trap.width

    def test_onchip_features_shrink_cqr_intervals(self, lot, profile):
        """Table IV shape: monitors + parametric beats parametric alone."""
        both = run_region_experiment(
            lot, "CQR LR", 25.0, 1008, feature_set=FeatureSet.BOTH, profile=profile
        )
        parametric = run_region_experiment(
            lot,
            "CQR LR",
            25.0,
            1008,
            feature_set=FeatureSet.PARAMETRIC,
            profile=profile,
        )
        assert both.width < parametric.width * 1.1  # allow small-noise slack

    def test_alpha_widens_intervals(self, lot, profile):
        strict = run_region_experiment(
            lot, "CQR LR", 25.0, 0, alpha=0.05, profile=profile
        )
        loose = run_region_experiment(
            lot, "CQR LR", 25.0, 0, alpha=0.3, profile=profile
        )
        assert strict.width > loose.width
