"""Quickstart: calibrated Vmin intervals in ~20 lines.

Generates a synthetic 156-chip automotive lot (the stand-in for the
paper's proprietary dataset), fits the recommended pipeline -- CQR around
a CatBoost-style quantile model -- on 120 chips, and prints calibrated
90 % Vmin intervals for the remaining 36, together with the empirical
coverage and the finite-sample guarantee.

Run:
    python examples/quickstart.py            # full models
    python examples/quickstart.py --smoke    # tiny models (CI)
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import SiliconDataset, VminPredictionFlow
from repro.models import ObliviousBoostingRegressor


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny model budgets for CI"
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = SiliconDataset.generate(seed=args.seed)
    print(dataset.summary())
    print()

    X, names = dataset.features(hours=0)
    y = dataset.target(temperature_c=25.0, hours=0)
    n_train = 120

    base = ObliviousBoostingRegressor(
        n_estimators=20 if args.smoke else 100,
        quantile=0.5,
        random_state=args.seed,
    )
    flow = VminPredictionFlow(base_model=base, alpha=0.1, random_state=args.seed)
    flow.fit(X[:n_train], y[:n_train], feature_names=names)

    intervals = flow.predict_interval(X[n_train:])
    y_test = y[n_train:]

    print(f"finite-sample guarantee : >= {flow.guaranteed_coverage_:.1%}")
    print(f"empirical test coverage : {intervals.coverage(y_test):.1%}")
    print(f"average interval length : {intervals.mean_width * 1e3:.1f} mV")
    low, high = flow.conformal_correction_
    print(f"conformal correction    : lower {low*1e3:+.2f} mV, upper {high*1e3:+.2f} mV")
    print()

    print("chip |   true Vmin |   predicted 90% interval | covered")
    print("-----+-------------+--------------------------+--------")
    for i in range(min(10, len(y_test))):
        lo, hi = intervals.lower[i], intervals.upper[i]
        inside = "yes" if lo <= y_test[i] <= hi else "NO"
        print(
            f"{n_train + i:4d} | {y_test[i]*1e3:8.1f} mV |"
            f" [{lo*1e3:7.1f}, {hi*1e3:7.1f}] mV | {inside}"
        )


if __name__ == "__main__":
    main()
