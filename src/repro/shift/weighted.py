"""Likelihood-ratio-weighted conformal prediction (covariate-shift repair).

Standard split CP / CQR takes the ``ceil((n+1)(1-alpha))``-th smallest
calibration score as the margin -- valid only when calibration and test
points are exchangeable.  Under covariate shift with known likelihood
ratio ``w(x)``, Tibshirani et al. (2019) restore exact coverage by
replacing the empirical score distribution with the *weighted* one:
calibration score ``s_i`` carries mass ``w(x_i)``, the test point
contributes mass ``w(x_test)`` at ``+inf``, and the margin is the
``(1-alpha)``-quantile of that mixture.  With estimated ratios (see
:class:`~repro.shift.weights.LogisticDensityRatio`) the guarantee is
approximate, degrading gracefully with the estimation error.

The failure mode is weight degeneracy: a severe shift concentrates the
calibration mass on a few chips and the weighted quantile is fiction.
Every consumer here guards on the Kish effective sample size and raises
:class:`DegenerateWeightsError` instead of emitting such intervals --
refusing loudly is the contract, exactly like the registry refusing an
unverified artifact.

Two consumers are provided: :class:`WeightedBandCalibrator` re-calibrates
an *already fitted* quantile band (the serving-side repair path used by
:meth:`repro.robust.flow.RobustVminFlow.recalibrate_weighted`), and
:class:`WeightedConformalRegressor` is the standalone estimator (point
or quantile template) for offline use.
"""

from __future__ import annotations

import copy
from typing import Optional, Sequence

import numpy as np

from repro.core.calibration import conformal_quantile
from repro.core.intervals import PredictionIntervals
from repro.core.scores import absolute_residual_score, cqr_score
from repro.core.split_cp import split_train_calibration
from repro.models.base import (
    BaseRegressor,
    check_fitted,
    check_random_state,
    check_X_y,
    clone,
)
from repro.models.quantile import QuantileBandRegressor
from repro.shift.weights import LogisticDensityRatio, effective_sample_size

__all__ = [
    "DegenerateWeightsError",
    "WeightedBandCalibrator",
    "WeightedConformalRegressor",
    "weighted_conformal_quantile",
]


class DegenerateWeightsError(RuntimeError):
    """The density-ratio weights collapsed; no honest interval exists.

    Raised when the effective sample size of the calibration weights
    falls below the configured minimum -- the shift is so severe that
    the reference data carries almost no information about the current
    distribution, and a weighted quantile would be an arbitrary number
    wearing a coverage guarantee.  Callers should treat this like a
    rejected request: escalate (refit, re-baseline) rather than retry.
    """


def weighted_conformal_quantile(
    scores: np.ndarray,
    weights: np.ndarray,
    alpha: float,
    test_weight: float = 1.0,
) -> float:
    """Weighted finite-sample conformal quantile of the scores.

    The ``(1-alpha)``-quantile of the distribution placing mass
    ``weights[i]`` on ``scores[i]`` and mass ``test_weight`` on
    ``+inf``.  Returns ``inf`` when the infinite atom is needed (the
    weighted analogue of ``rank > n`` in
    :func:`~repro.core.calibration.conformal_quantile`); with all
    weights equal it reproduces the unweighted quantile exactly.
    """
    scores = np.asarray(scores, dtype=np.float64).ravel()
    weights = np.asarray(weights, dtype=np.float64).ravel()
    if scores.size == 0:
        raise ValueError("scores must be non-empty")
    if scores.shape != weights.shape:
        raise ValueError(
            f"scores and weights must match, got {scores.shape} and "
            f"{weights.shape}"
        )
    if not np.all(np.isfinite(scores)):
        raise ValueError("scores must be finite")
    if not np.all(np.isfinite(weights)) or np.any(weights < 0):
        raise ValueError("weights must be finite and non-negative")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if not (np.isfinite(test_weight) and test_weight >= 0):
        raise ValueError(f"test_weight must be finite and >= 0, got {test_weight}")
    order = np.argsort(scores, kind="stable")
    cumulative = np.cumsum(weights[order])
    total = cumulative[-1] + test_weight
    if not total > 0.0:
        raise ValueError("weights and test_weight sum to zero")
    needed = (1.0 - alpha) * total
    index = int(np.searchsorted(cumulative, needed, side="left"))
    if index >= scores.size:
        return float("inf")
    return float(scores[order][index])


def _batch_corrections(
    sorted_scores: np.ndarray,
    cumulative_weights: np.ndarray,
    alpha: float,
    test_weights: np.ndarray,
) -> np.ndarray:
    """Vectorised weighted quantile per test point, clamped to finite.

    Shares the pre-sorted calibration state across the batch: only the
    test point's own mass varies.  A point whose weighted rank needs
    the infinite atom gets the most conservative *finite* correction
    (the maximum calibration score) -- the serving-side counterpart of
    :class:`~repro.core.adaptive.AdaptiveConformalPredictor`'s max-score
    fallback, chosen so a single heavy test weight degrades width, not
    availability.  Batch-level degeneracy is handled upstream by the
    ESS guard.
    """
    totals = cumulative_weights[-1] + test_weights
    needed = (1.0 - alpha) * totals
    indices = np.searchsorted(cumulative_weights, needed, side="left")
    clamped = np.minimum(indices, sorted_scores.size - 1)
    return sorted_scores[clamped]


class WeightedBandCalibrator:
    """Weighted-CQR margins around an already fitted quantile band.

    The serving-side repair object: built from a deployed band's
    calibration scores plus density-ratio weights, it serves per-test-
    point weighted corrections without refitting anything.

    Parameters
    ----------
    band:
        Fitted object exposing ``predict_interval(X) -> (lower, upper)``.
    calibration_scores:
        CQR scores of the band on its calibration split.
    calibration_weights:
        Density-ratio weight per calibration score (aligned).
    alpha:
        Target miscoverage of the corrected band.
    ratio:
        Optional fitted :class:`~repro.shift.weights.LogisticDensityRatio`
        used to weight each *test* point; ``None`` gives every test
        point unit mass.
    ratio_columns:
        Columns of the serving matrix the ratio model was estimated on
        (``None``: all columns).
    min_ess:
        Effective-sample-size floor; construction raises
        :class:`DegenerateWeightsError` below it.
    """

    def __init__(
        self,
        band,
        calibration_scores: np.ndarray,
        calibration_weights: np.ndarray,
        alpha: float = 0.1,
        ratio: Optional[LogisticDensityRatio] = None,
        ratio_columns: Optional[Sequence[int]] = None,
        min_ess: float = 10.0,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if not hasattr(band, "predict_interval"):
            raise TypeError(
                f"band of type {type(band).__name__} has no predict_interval"
            )
        if not min_ess > 0:
            raise ValueError(f"min_ess must be > 0, got {min_ess}")
        scores = np.asarray(calibration_scores, dtype=np.float64).ravel()
        weights = np.asarray(calibration_weights, dtype=np.float64).ravel()
        if scores.size == 0:
            raise ValueError("calibration_scores must be non-empty")
        if scores.shape != weights.shape:
            raise ValueError(
                f"scores and weights must match, got {scores.shape} and "
                f"{weights.shape}"
            )
        if not np.all(np.isfinite(scores)):
            raise ValueError("calibration_scores must be finite")
        if not np.all(np.isfinite(weights)) or np.any(weights < 0):
            raise ValueError("calibration_weights must be finite, non-negative")
        self.band = band
        self.alpha = alpha
        self.ratio = ratio
        self.ratio_columns = (
            None
            if ratio_columns is None
            else np.asarray(list(ratio_columns), dtype=np.int64)
        )
        self.min_ess = float(min_ess)
        self.ess_ = effective_sample_size(weights)
        if self.ess_ < self.min_ess:
            raise DegenerateWeightsError(
                f"weighted calibration ESS {self.ess_:.2f} below minimum "
                f"{self.min_ess:g} ({scores.size} calibration scores); "
                "refusing to emit intervals"
            )
        order = np.argsort(scores, kind="stable")
        self._sorted_scores = scores[order]
        self._cumulative_weights = np.cumsum(weights[order])
        self.n_calibration_ = int(scores.size)

    def _test_weights(self, X: np.ndarray) -> np.ndarray:
        if self.ratio is None:
            return np.ones(X.shape[0], dtype=np.float64)
        features = X if self.ratio_columns is None else X[:, self.ratio_columns]
        return self.ratio.weights(features)

    def predict_interval(self, X: np.ndarray) -> PredictionIntervals:
        """Band interval widened by the per-point weighted correction."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        lower, upper = self.band.predict_interval(X)
        corrections = _batch_corrections(
            self._sorted_scores,
            self._cumulative_weights,
            self.alpha,
            self._test_weights(X),
        )
        lower = lower - corrections
        upper = upper + corrections
        crossed = lower > upper
        if np.any(crossed):
            mid = (lower + upper) / 2.0
            lower = np.where(crossed, mid, lower)
            upper = np.where(crossed, mid, upper)
        return PredictionIntervals(lower, upper)


class WeightedConformalRegressor(BaseRegressor):
    """Split conformal prediction with likelihood-ratio weighting.

    Fits exactly like the unweighted split wrappers (point template ->
    split CP on absolute residuals; quantile template -> CQR band), and
    additionally retains the calibration *features* so the margins can
    later be re-targeted at a shifted covariate distribution via
    :meth:`calibrate_to`.  Before any ``calibrate_to`` call the
    predictions are plain unweighted split CP.

    Parameters
    ----------
    estimator:
        Unfitted template; quantile-capable templates get the CQR
        treatment, point templates the split-CP one.
    alpha:
        Target miscoverage.
    calibration_fraction, random_state:
        As in the unweighted split wrappers.
    ratio_estimator:
        Unfitted :class:`~repro.shift.weights.LogisticDensityRatio`
        template for :meth:`calibrate_to` (deep-copied per call);
        default-configured when ``None``.
    ratio_columns:
        Feature columns the density ratio is estimated on (``None``:
        all).  Restricting to the monitor block keeps the logistic
        solve well-posed when the full matrix is wide.
    min_ess:
        Effective-sample-size floor for :meth:`calibrate_to`.
    """

    def __init__(
        self,
        estimator: BaseRegressor,
        alpha: float = 0.1,
        calibration_fraction: float = 0.25,
        ratio_estimator: Optional[LogisticDensityRatio] = None,
        ratio_columns: Optional[Sequence[int]] = None,
        min_ess: float = 10.0,
        random_state: Optional[int] = None,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if not min_ess > 0:
            raise ValueError(f"min_ess must be > 0, got {min_ess}")
        self.estimator = estimator
        self.alpha = alpha
        self.calibration_fraction = calibration_fraction
        self.ratio_estimator = ratio_estimator
        self.ratio_columns = ratio_columns
        self.min_ess = min_ess
        self.random_state = random_state
        self.calibration_scores_: Optional[np.ndarray] = None

    @property
    def _is_quantile_model(self) -> bool:
        return self.estimator.get_params().get("quantile") is not None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "WeightedConformalRegressor":
        """Split, fit the template, store calibration scores + features."""
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        train_idx, cal_idx = split_train_calibration(
            X.shape[0], self.calibration_fraction, rng
        )
        if self._is_quantile_model:
            self.band_ = QuantileBandRegressor(self.estimator, alpha=self.alpha)
            self.band_.fit(X[train_idx], y[train_idx])
            cal_lower, cal_upper = self.band_.predict_interval(X[cal_idx])
            scores = cqr_score(y[cal_idx], cal_lower, cal_upper)
            self.point_model_ = None
        else:
            self.point_model_ = clone(self.estimator).fit(X[train_idx], y[train_idx])
            prediction = self.point_model_.predict(X[cal_idx])
            scores = absolute_residual_score(y[cal_idx], prediction)
            self.band_ = None
        self.calibration_scores_ = scores
        self.calibration_features_ = X[cal_idx]
        self.n_calibration_ = int(cal_idx.size)
        self.ratio_: Optional[LogisticDensityRatio] = None
        self.calibration_weights_: Optional[np.ndarray] = None
        self.ess_: Optional[float] = None
        return self

    def _columns(self) -> Optional[np.ndarray]:
        if self.ratio_columns is None:
            return None
        return np.asarray(list(self.ratio_columns), dtype=np.int64)

    def calibrate_to(self, X_current: np.ndarray) -> "WeightedConformalRegressor":
        """Re-target the margins at the covariate distribution of a batch.

        Estimates the density ratio between the held-out calibration
        features (reference) and ``X_current`` (the shifted serving
        distribution), installs the calibration weights, and returns
        self.  Raises :class:`DegenerateWeightsError` -- leaving the
        previous weighting untouched -- when the weights' effective
        sample size falls below ``min_ess``.
        """
        check_fitted(self, "calibration_scores_")
        X_current = np.asarray(X_current, dtype=np.float64)
        if X_current.ndim != 2:
            raise ValueError(f"X_current must be 2-D, got shape {X_current.shape}")
        if X_current.shape[1] != self.calibration_features_.shape[1]:
            raise ValueError(
                f"X_current has {X_current.shape[1]} features, fit saw "
                f"{self.calibration_features_.shape[1]}"
            )
        columns = self._columns()
        reference = self.calibration_features_
        current = X_current
        if columns is not None:
            reference = reference[:, columns]
            current = current[:, columns]
        ratio = (
            copy.deepcopy(self.ratio_estimator)
            if self.ratio_estimator is not None
            else LogisticDensityRatio()
        )
        ratio.estimate(reference, current)
        weights = ratio.weights(reference)
        ess = effective_sample_size(weights)
        if ess < self.min_ess:
            raise DegenerateWeightsError(
                f"weighted calibration ESS {ess:.2f} below minimum "
                f"{self.min_ess:g} ({weights.size} calibration chips); "
                "refusing to emit intervals"
            )
        self.ratio_ = ratio
        self.calibration_weights_ = weights
        self.ess_ = ess
        return self

    def _corrections(self, X: np.ndarray) -> np.ndarray:
        if self.ratio_ is None:
            correction = conformal_quantile(self.calibration_scores_, self.alpha)
            if not np.isfinite(correction):
                raise RuntimeError(
                    f"calibration set of size {self.n_calibration_} is too "
                    f"small for alpha={self.alpha}; intervals would be infinite"
                )
            return np.full(X.shape[0], correction, dtype=np.float64)
        columns = self._columns()
        features = X if columns is None else X[:, columns]
        order = np.argsort(self.calibration_scores_, kind="stable")
        return _batch_corrections(
            self.calibration_scores_[order],
            np.cumsum(self.calibration_weights_[order]),
            self.alpha,
            self.ratio_.weights(features),
        )

    def predict_interval(self, X: np.ndarray) -> PredictionIntervals:
        """Interval with unweighted or (after ``calibrate_to``) weighted margins."""
        check_fitted(self, "calibration_scores_")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        corrections = self._corrections(X)
        if self.point_model_ is not None:
            prediction = self.point_model_.predict(X)
            return PredictionIntervals(
                prediction - corrections, prediction + corrections
            )
        lower, upper = self.band_.predict_interval(X)
        lower = lower - corrections
        upper = upper + corrections
        crossed = lower > upper
        if np.any(crossed):
            mid = (lower + upper) / 2.0
            lower = np.where(crossed, mid, lower)
            upper = np.where(crossed, mid, upper)
        return PredictionIntervals(lower, upper)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Point prediction (template output, or interval midpoint)."""
        check_fitted(self, "calibration_scores_")
        if self.point_model_ is not None:
            return self.point_model_.predict(X)
        return self.predict_interval(X).midpoint
