"""Power-saving Vmin binning with conformal guard bands (paper ref. [4]).

Automotive parts traditionally all run at the worst-case supply voltage.
Vmin binning runs each part at the lowest *safe* bin voltage instead --
but "safe" needs a statistical guarantee when the bin is chosen from a
prediction.  A calibrated interval gives one for free: assigning the
lowest bin above the interval's upper bound bounds the per-chip
under-volting probability by the interval's miscoverage alpha.

The demo:

1. predicts calibrated 90 % Vmin intervals at 25 degC / time 0,
2. bins the test chips over a 4-bin supply menu,
3. audits escapes and the dynamic-power overhead versus the oracle that
   knows every chip's true Vmin,
4. sweeps the guard band against an explicit escape/power cost model to
   pick the production setting.

Run:
    python examples/vmin_binning.py [--smoke]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import SiliconDataset, VminPredictionFlow
from repro.flow import VminBinningPolicy, optimize_guard_band
from repro.models import ObliviousBoostingRegressor

BIN_VOLTAGES = (0.58, 0.61, 0.65, 0.72)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    dataset = SiliconDataset.generate(seed=args.seed)
    X, names = dataset.features(hours=0)
    y = dataset.target(25.0, hours=0)
    n_train = 110

    base = ObliviousBoostingRegressor(
        n_estimators=20 if args.smoke else 100, quantile=0.5, random_state=args.seed
    )
    flow = VminPredictionFlow(base_model=base, alpha=0.1, random_state=args.seed)
    flow.fit(X[:n_train], y[:n_train], feature_names=names)
    intervals = flow.predict_interval(X[n_train:])
    y_test = y[n_train:]

    print(f"supply menu: {[f'{v*1e3:.0f} mV' for v in BIN_VOLTAGES]}")
    print(f"test chips : {len(y_test)}\n")

    print("guard band |  escapes | unbinnable | mean supply | power overhead vs oracle")
    print("-----------+----------+------------+-------------+-------------------------")
    for guard_band in (0.0, 0.005, 0.010, 0.020):
        policy = VminBinningPolicy(BIN_VOLTAGES, guard_band_v=guard_band)
        outcome = policy.evaluate(intervals, y_test)
        print(
            f"{guard_band*1e3:7.0f} mV | {outcome.escape_rate:8.1%} "
            f"| {outcome.unbinnable_fraction:10.1%} "
            f"| {outcome.mean_voltage*1e3:8.1f} mV "
            f"| {outcome.power_overhead:+.2%}"
        )

    best_guard, best_cost = optimize_guard_band(
        intervals, y_test, BIN_VOLTAGES, escape_cost=100.0, power_cost=1.0
    )
    print(
        f"\ncost-optimal guard band (escape cost 100x power cost): "
        f"{best_guard*1e3:.1f} mV (cost {best_cost:.3f})"
    )

    # How much power does binning recover vs worst-case single voltage?
    policy = VminBinningPolicy(BIN_VOLTAGES, guard_band_v=best_guard)
    outcome = policy.evaluate(intervals, y_test)
    worst_case = max(BIN_VOLTAGES)
    saving = 1.0 - outcome.mean_voltage**2 / worst_case**2
    print(
        f"dynamic power saved vs running everything at "
        f"{worst_case*1e3:.0f} mV: {saving:.1%}"
    )


if __name__ == "__main__":
    main()
