"""Tests for the append-only run journal (repro.runtime.checkpoint)."""

from __future__ import annotations

import json

import pytest

from repro.runtime.checkpoint import (
    JOURNAL_SCHEMA_VERSION,
    JournalError,
    RunJournal,
    canonical_json,
    cell_fingerprint,
)


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_floats_round_trip_exactly(self):
        value = 0.1 + 0.2  # classic non-representable sum
        assert json.loads(canonical_json({"x": value}))["x"] == value


class TestCellFingerprint:
    def test_stable_across_insertion_order(self):
        a = cell_fingerprint({"model": "LR", "alpha": 0.1, "seed": 0})
        b = cell_fingerprint({"seed": 0, "alpha": 0.1, "model": "LR"})
        assert a == b

    def test_any_field_change_changes_the_fingerprint(self):
        base = {"model": "LR", "alpha": 0.1, "seed": 0, "git_sha": "abc"}
        reference = cell_fingerprint(base)
        for key, value in [
            ("model", "GP"),
            ("alpha", 0.2),
            ("seed", 1),
            ("git_sha", "def"),
        ]:
            assert cell_fingerprint({**base, key: value}) != reference

    def test_empty_fields_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            cell_fingerprint({})


class TestRunJournal:
    def test_missing_file_means_nothing_completed(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        assert journal.completed() == {}
        assert len(journal) == 0

    def test_record_and_read_back(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl", meta={"kind": "point"})
        journal.record("fp1", ["LR", 25.0, 0], {"r2": [0.9, 0.8]})
        journal.record("fp2", ["GP", 25.0, 0], {"r2": [0.7, 0.6]})

        reread = RunJournal(tmp_path / "run.jsonl")
        completed = reread.completed()
        assert set(completed) == {"fp1", "fp2"}
        assert completed["fp1"]["payload"] == {"r2": [0.9, 0.8]}
        assert completed["fp1"]["key"] == ["LR", 25.0, 0]
        assert reread.meta == {"kind": "point"}

    def test_header_written_once(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path, meta={})
        journal.record("fp1", [], {})
        journal.record("fp2", [], {})
        lines = path.read_text().splitlines()
        headers = [line for line in lines if '"header"' in line]
        assert len(headers) == 1 and lines[0] == headers[0]
        assert json.loads(lines[0])["schema_version"] == JOURNAL_SCHEMA_VERSION

    def test_payload_floats_survive_bit_exactly(self, tmp_path):
        values = [0.1 + 0.2, 1e-300, 123456.789e-7]
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.record("fp", ["cell"], {"folds": values})
        loaded = RunJournal(tmp_path / "run.jsonl").completed()
        assert loaded["fp"]["payload"]["folds"] == values  # exact, not approx

    def test_truncated_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.record("fp1", [], {"v": 1})
        journal.record("fp2", [], {"v": 2})
        content = path.read_text()
        path.write_text(content[:-15])  # sever the last line mid-JSON

        completed = RunJournal(path).completed()
        assert set(completed) == {"fp1"}  # the torn cell is simply redone

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.record("fp1", [], {"v": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("%% not json %%\n")
        journal.record("fp2", [], {"v": 2})
        with pytest.raises(JournalError, match="corrupt"):
            RunJournal(path).completed()

    def test_wrong_schema_version_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "schema_version": 999, "meta": {}})
            + "\n"
        )
        with pytest.raises(JournalError, match="schema_version"):
            RunJournal(path).completed()

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(
            json.dumps({"kind": "cell", "fingerprint": "fp", "payload": {}})
            + "\n"
        )
        with pytest.raises(JournalError, match="header"):
            RunJournal(path).completed()

    def test_duplicate_fingerprints_last_wins(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.record("fp", [], {"v": 1})
        journal.record("fp", [], {"v": 2})
        assert journal.completed()["fp"]["payload"] == {"v": 2}

    def test_empty_fingerprint_rejected(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        with pytest.raises(ValueError, match="fingerprint"):
            journal.record("", [], {})
