"""Stress-test harness: degradation under data *and* execution faults.

The robustness claim of :mod:`repro.robust` is quantitative: under a
given fault campaign the served intervals should lose *bounded* coverage
relative to the clean baseline, paying for damage with width (inflation,
fallback) rather than with silent under-coverage.  This module measures
exactly that.  :func:`run_fault_campaign` serves one held-out lot through
a fitted :class:`~repro.robust.flow.RobustVminFlow` once clean and once
per fault scenario, and the resulting :class:`StressReport` tabulates
coverage, width, status, and inflation per scenario -- the robustness
analogue of the paper's Table III.

The second campaign mode targets the *execution* layer rather than the
data: :func:`run_execution_campaign` runs a small experiment grid once
clean, then once per :class:`~repro.robust.faults.ExecutionFault`
scenario with workers crashing or hanging mid-grid, and asserts that
the runtime (:mod:`repro.runtime`: retries, watchdog timeouts, requeue)
recovers every cell with results bit-identical to the clean run.

The third mode is the serving soak: :func:`run_serving_campaign` stands
up a full :class:`~repro.serve.service.VminServingService` against a
real on-disk registry and drives it through the faults a deployment
actually meets -- a scoring worker SIGKILLed mid-request, transient
in-process crashes, a hot-swap under concurrent load, covariate drift
that must trigger online recalibration and republication, and an
artifact corrupted on disk that must be quarantined and rolled back --
then audits the invariants: no unverified artifact ever served, zero
requests dropped across hot-swaps, every downgrade carrying a reason
code, empirical coverage within tolerance, and the service ending the
campaign ``READY``.
"""

from __future__ import annotations

import os
import signal
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.eval.experiments import ExperimentProfile, run_point_grid
from repro.eval.reporting import format_table
from repro.robust.faults import (
    AgingDrift,
    ExecutionFault,
    TaskCrashFault,
    TaskHangFault,
)
from repro.runtime.retry import RetryPolicy
from repro.runtime.watchdog import run_in_subprocess

__all__ = [
    "ExecutionStressReport",
    "ExecutionStressResult",
    "ServingStressReport",
    "ShiftPhaseResult",
    "ShiftStressReport",
    "StressReport",
    "StressResult",
    "run_execution_campaign",
    "run_fault_campaign",
    "run_serving_campaign",
    "run_shift_campaign",
]


@dataclass(frozen=True)
class StressResult:
    """Outcome of serving one fault scenario.

    Attributes
    ----------
    scenario, severity:
        Scenario identity (from the :class:`~repro.robust.faults.FaultScenario`).
    coverage, mean_width:
        Empirical coverage and average interval length (V) of the
        served intervals on the faulted batch.
    status:
        Served :class:`~repro.robust.fallback.DegradationStatus` value.
    inflation:
        Width multiplier the degradation policy charged.
    used_fallback:
        Whether the fallback model produced the band.
    unhealthy_fraction:
        Fraction of feature columns the guard flagged unhealthy.
    """

    scenario: str
    severity: float
    coverage: float
    mean_width: float
    status: str
    inflation: float
    used_fallback: bool
    unhealthy_fraction: float


@dataclass(frozen=True)
class StressReport:
    """Clean baseline plus per-scenario stress results.

    ``nominal_coverage`` / ``nominal_width`` come from serving the same
    batch with no faults injected; every :class:`StressResult` is read
    against them.
    """

    nominal_coverage: float
    nominal_width: float
    results: Tuple[StressResult, ...]

    def worst_coverage(self, scenario_prefix: Optional[str] = None) -> float:
        """Lowest served coverage, optionally restricted to scenarios
        whose name starts with ``scenario_prefix``."""
        selected = [
            r.coverage
            for r in self.results
            if scenario_prefix is None or r.scenario.startswith(scenario_prefix)
        ]
        if not selected:
            raise ValueError(
                f"no scenario matches prefix {scenario_prefix!r}"
            )
        return float(min(selected))

    def coverage_drop(self, scenario_prefix: Optional[str] = None) -> float:
        """Worst coverage loss versus nominal (positive = degradation)."""
        return self.nominal_coverage - self.worst_coverage(scenario_prefix)

    def to_table(self, title: Optional[str] = None) -> str:
        """Monospace report table (coverage in %, width in mV)."""
        rows = [
            [
                "(nominal)",
                0.0,
                "ok",
                self.nominal_coverage * 100.0,
                self.nominal_width * 1e3,
                1.0,
                "-",
                0.0,
            ]
        ]
        rows.extend(
            [
                r.scenario,
                r.severity,
                r.status,
                r.coverage * 100.0,
                r.mean_width * 1e3,
                r.inflation,
                "yes" if r.used_fallback else "no",
                r.unhealthy_fraction * 100.0,
            ]
            for r in self.results
        )
        return format_table(
            [
                "Scenario",
                "Severity",
                "Status",
                "Coverage (%)",
                "Len (mV)",
                "Inflation",
                "Fallback",
                "Unhealthy (%)",
            ],
            rows,
            title=title or "Fault-campaign stress report",
        )


def run_fault_campaign(flow, X: np.ndarray, y: np.ndarray, campaign) -> StressReport:
    """Serve a held-out lot through every scenario of a fault campaign.

    Parameters
    ----------
    flow:
        A *fitted* :class:`~repro.robust.flow.RobustVminFlow` (anything
        whose ``predict_interval`` returns a
        :class:`~repro.robust.fallback.DegradedPrediction` works).
    X, y:
        Clean held-out chips and their measured Vmin labels; every
        scenario corrupts a fresh copy of ``X``.
    campaign:
        An iterable of :class:`~repro.robust.faults.FaultScenario`
        (e.g. :meth:`~repro.robust.faults.FaultCampaign.standard`).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
        raise ValueError(
            f"X and y must be a matching 2-D/1-D pair, got {X.shape} and {y.shape}"
        )
    nominal = flow.predict_interval(X)
    results = []
    for scenario in campaign:
        prediction = flow.predict_interval(scenario.apply(X))
        results.append(
            StressResult(
                scenario=scenario.name,
                severity=float(scenario.severity),
                coverage=prediction.coverage(y),
                mean_width=prediction.mean_width,
                status=prediction.status.value,
                inflation=float(prediction.inflation),
                used_fallback=bool(prediction.used_fallback),
                unhealthy_fraction=prediction.health.unhealthy_fraction,
            )
        )
    return StressReport(
        nominal_coverage=nominal.coverage(y),
        nominal_width=nominal.mean_width,
        results=tuple(results),
    )


# ---------------------------------------------------------------------------
# execution-fault campaign (crashed / hung workers mid-grid)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExecutionStressResult:
    """Outcome of one execution-fault scenario over the grid.

    Attributes
    ----------
    scenario:
        Scenario name (e.g. ``worker_crash``).
    recovered:
        Every cell completed despite the injected faults.
    identical:
        The recovered grid equals the clean grid bit for bit.
    n_cells, n_retried, n_failures:
        Grid size, cells that needed more than one attempt, and cells
        that failed even after retries.
    """

    scenario: str
    recovered: bool
    identical: bool
    n_cells: int
    n_retried: int
    n_failures: int


@dataclass(frozen=True)
class ExecutionStressReport:
    """Per-scenario recovery results of an execution-fault campaign."""

    results: Tuple[ExecutionStressResult, ...]

    def all_recovered(self) -> bool:
        """Whether every scenario completed every cell."""
        return all(r.recovered for r in self.results)

    def all_identical(self) -> bool:
        """Whether every scenario reproduced the clean grid bit for bit."""
        return all(r.identical for r in self.results)

    def to_table(self, title: Optional[str] = None) -> str:
        """Monospace report table (one row per scenario)."""
        rows = [
            [
                r.scenario,
                "yes" if r.recovered else "NO",
                "yes" if r.identical else "NO",
                r.n_cells,
                r.n_retried,
                r.n_failures,
            ]
            for r in self.results
        ]
        return format_table(
            ["Scenario", "Recovered", "Identical", "Cells", "Retried", "Failed"],
            rows,
            title=title or "Execution-fault campaign report",
        )


def _default_execution_scenarios(
    seed: int,
) -> Tuple[Tuple[str, ExecutionFault], ...]:
    """The standard execution campaign: crashes, repeat crashes, hangs."""
    return (
        ("worker_crash", TaskCrashFault(fraction=1.0, n_failures=1, seed=seed)),
        ("worker_crash_repeat", TaskCrashFault(fraction=0.6, n_failures=2, seed=seed + 1)),
        ("worker_hang", TaskHangFault(fraction=0.6, n_hangs=1, seed=seed + 2)),
    )


def run_execution_campaign(
    dataset,
    model_names: Sequence[str] = ("LR",),
    temperatures: Sequence[float] = (25.0,),
    read_points: Sequence[int] = (0,),
    scenarios: Optional[Sequence[Tuple[str, ExecutionFault]]] = None,
    profile: Optional[ExperimentProfile] = None,
    seed: int = 0,
    n_jobs: Optional[int] = 2,
    timeout: float = 30.0,
    retry_policy: Optional[RetryPolicy] = None,
) -> ExecutionStressReport:
    """Kill and hang grid workers mid-flight; assert the grid recovers.

    Runs the point grid once clean, then once per execution-fault
    scenario with the scenario's :meth:`~repro.robust.faults.ExecutionFault.wrap`
    installed as the grid's ``task_wrapper``.  The faulted runs execute
    with a retry policy (default: 3 attempts, fast deterministic
    backoff) and a per-cell ``timeout`` so crashes are retried and
    hangs are cut short by the cooperative watchdog; ``identical``
    then records whether retried work reproduced the clean results bit
    for bit -- the determinism-under-faults contract of
    ``docs/RUNTIME.md``.
    """
    profile = profile or ExperimentProfile.smoke()
    if scenarios is None:
        scenarios = _default_execution_scenarios(seed)
    if retry_policy is None:
        retry_policy = RetryPolicy(
            max_attempts=3,
            backoff_base=0.01,
            backoff_max=0.05,
            seed=seed,
        )
    clean = run_point_grid(
        dataset,
        model_names,
        temperatures,
        read_points,
        profile=profile,
        seed=seed,
        n_jobs=n_jobs,
    )
    results = []
    for name, fault in scenarios:
        faulted = run_point_grid(
            dataset,
            model_names,
            temperatures,
            read_points,
            profile=profile,
            seed=seed,
            n_jobs=n_jobs,
            retry_policy=retry_policy,
            timeout=timeout,
            on_error="capture",
            task_wrapper=fault.wrap,
        )
        recovered = faulted.ok and set(faulted) == set(clean)
        results.append(
            ExecutionStressResult(
                scenario=name,
                recovered=recovered,
                identical=recovered and dict(faulted) == dict(clean),
                n_cells=len(clean),
                n_retried=faulted.n_retried,
                n_failures=len(faulted.failures),
            )
        )
    return ExecutionStressReport(results=tuple(results))


# ---------------------------------------------------------------------------
# serving soak campaign (registry corruption, SIGKILLed workers, drift)
# ---------------------------------------------------------------------------


def _sigkill_entry(sentinel: str) -> bool:
    """Subprocess body: die by SIGKILL once, succeed ever after.

    The sentinel file is the cross-process attempt counter: the first
    run creates it and SIGKILLs itself (a *real* kill, surfacing in the
    parent as :class:`~repro.runtime.watchdog.WorkerCrash`); reruns see
    the sentinel and return normally, so a retry policy recovers.
    """
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8") as handle:
            handle.write("struck\n")
        os.kill(os.getpid(), signal.SIGKILL)
    return True


class _SigkillWorker:
    """Task wrapper whose first wrapped call loses a worker to SIGKILL.

    Wraps a per-request callable so that, exactly once per sentinel
    path, a helper subprocess is killed with ``SIGKILL`` before the
    request runs -- raising :class:`~repro.runtime.watchdog.WorkerCrash`
    (a transient fault) into the service's retry loop.  Subsequent
    attempts find the sentinel and pass straight through.
    """

    def __init__(self, sentinel: Path, timeout: float = 30.0) -> None:
        self.sentinel = Path(sentinel)
        self.timeout = float(timeout)

    def wrap(
        self, fn: Callable[[object], object]
    ) -> Callable[[object], object]:
        """Return ``fn`` preceded by the one-shot SIGKILL probe."""

        def struck(item: object) -> object:
            run_in_subprocess(
                _sigkill_entry, str(self.sentinel), timeout=self.timeout
            )
            return fn(item)

        return struck


@dataclass(frozen=True)
class ServingStressReport:
    """Metrics and audited invariants of one serving soak campaign.

    Attributes
    ----------
    n_requests, n_served, n_overloaded, n_retried:
        Requests issued, answered, shed by admission control, and
        answered only after at least one retry.
    dropped_during_swap:
        Requests issued concurrently with a hot-swap that failed with
        anything other than typed load-shedding -- the zero-downtime
        invariant says this must be 0.
    unverified_serves:
        Served batches whose model version never passed checksum
        verification -- must be 0 by the registry's construction.
    chips_per_s, p50_latency_s, p99_latency_s:
        Scoring throughput and per-request latency percentiles.
    coverage, target_coverage, tolerance:
        Empirical coverage over every served-and-labelled chip of the
        campaign (drift phase included) against the promised
        ``1 - alpha`` and the campaign's allowance.
    n_recalibrations, n_versions, n_quarantined:
        Drift-triggered republications, registry versions at campaign
        end, and versions quarantined by corruption.
    downgrades:
        Every audited quality-loss event as ``(reason_code, detail)``
        pairs -- the trail the harness checks for completeness.
    final_state:
        The service state at campaign end (``ready`` on success).
    compiled_kernels:
        The decision-table kernels recorded in the bootstrap version's
        manifest (one entry per boosting ensemble in the flow, e.g.
        ``oblivious(n_trees=100, n_leaves=64)``) -- empty when the
        published flow holds no compiled ensembles.
    """

    n_requests: int
    n_served: int
    n_overloaded: int
    n_retried: int
    dropped_during_swap: int
    unverified_serves: int
    chips_per_s: float
    p50_latency_s: float
    p99_latency_s: float
    coverage: float
    target_coverage: float
    tolerance: float
    n_recalibrations: int
    n_versions: int
    n_quarantined: int
    downgrades: Tuple[Tuple[str, str], ...]
    final_state: str
    compiled_kernels: Tuple[str, ...] = ()

    def ok(self) -> bool:
        """Whether every soak invariant held."""
        return (
            self.unverified_serves == 0
            and self.dropped_during_swap == 0
            and self.coverage >= self.target_coverage - self.tolerance
            and self.final_state == "ready"
            and self.n_recalibrations >= 1
            and self.n_quarantined >= 1
            and all(reason for reason, _ in self.downgrades)
        )

    def to_table(self, title: Optional[str] = None) -> str:
        """Monospace metric table plus the downgrade audit trail."""
        rows = [
            ["requests", self.n_requests],
            ["served", self.n_served],
            ["overloaded (shed)", self.n_overloaded],
            ["retried", self.n_retried],
            ["dropped during swap", self.dropped_during_swap],
            ["unverified serves", self.unverified_serves],
            ["chips/s", self.chips_per_s],
            ["p50 latency (ms)", self.p50_latency_s * 1e3],
            ["p99 latency (ms)", self.p99_latency_s * 1e3],
            ["coverage (%)", self.coverage * 100.0],
            ["target - tol (%)", (self.target_coverage - self.tolerance) * 100.0],
            ["recalibrations", self.n_recalibrations],
            ["registry versions", self.n_versions],
            ["quarantined", self.n_quarantined],
            ["final state", self.final_state],
            ["compiled kernels", len(self.compiled_kernels)],
        ]
        table = format_table(
            ["Metric", "Value"], rows, title=title or "Serving soak report"
        )
        audit = "\n".join(
            f"  [{reason}] {detail}" for reason, detail in self.downgrades
        )
        return table + "\nDowngrade audit:\n" + (audit or "  (none)")


def _request_batches(
    n_rows: int, batch_size: int, count: int, start: int
) -> List[np.ndarray]:
    """``count`` wrapped index windows over ``n_rows`` rows."""
    return [
        (start + batch * batch_size + np.arange(batch_size)) % n_rows
        for batch in range(count)
    ]


def run_serving_campaign(
    flow,
    X: np.ndarray,
    y: np.ndarray,
    registry_root: Union[str, Path],
    batch_size: int = 25,
    n_clean_batches: int = 4,
    n_crash_batches: int = 4,
    n_swap_batches: int = 6,
    n_drift_batches: int = 12,
    n_recovery_batches: int = 8,
    drift_shift: float = 2.0,
    min_recal_labels: int = 30,
    tolerance: float = 0.15,
    seed: int = 0,
) -> ServingStressReport:
    """Soak a full serving stack through the faults of a deployment.

    Publishes ``flow`` to a fresh :class:`~repro.serve.registry.
    ModelRegistry` at ``registry_root``, starts a
    :class:`~repro.serve.service.VminServingService` on it, then drives
    six phases over the held-out stream ``(X, y)``:

    1. **clean** -- nominal scoring with label feedback;
    2. **worker crash** -- the first request loses a worker to a real
       ``SIGKILL`` (via a subprocess probe) and a seeded fraction of
       requests crash transiently in-process; the retry policy must
       recover all of them;
    3. **hot-swap under load** -- a new version is published and
       swapped in while concurrent threads keep scoring; no request may
       fail with anything but typed load shedding;
    4. **drift** -- labels shift by ``drift_shift`` volts while the
       monitors age (:class:`~repro.robust.faults.AgingDrift`); the
       coverage monitor must alarm, degrade the service, and the
       :class:`~repro.serve.recalibration.DriftRecalibrator` must
       republish a recalibrated version;
    5. **corruption** -- the latest bundle is corrupted on disk; the
       forced reload must quarantine it and roll back to the last known
       good version;
    6. **recovery** -- a good bundle is republished, the service swaps
       onto it and must end the campaign ``READY`` on a clean stream.

    Returns a :class:`ServingStressReport`; ``report.ok()`` is the
    single pass/fail the CI smoke job asserts.
    """
    # Deferred import: repro.serve depends on repro.robust, and keeping
    # eval's module import light lets `repro.eval` load without the
    # serving stack when only the data-fault campaigns are used.
    from repro.serve.recalibration import DriftRecalibrator
    from repro.serve.registry import ModelRegistry
    from repro.serve.service import (
        Overloaded,
        ServingConfig,
        VminServingService,
    )

    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2 or y.ndim != 1 or X.shape[0] != y.shape[0]:
        raise ValueError(
            f"X and y must be a matching 2-D/1-D pair, got {X.shape} and {y.shape}"
        )
    if X.shape[0] < batch_size:
        raise ValueError(
            f"need at least one batch of {batch_size} rows, got {X.shape[0]}"
        )
    root = Path(registry_root)
    registry = ModelRegistry(root)
    bootstrap = registry.publish(
        flow, reason="published", metadata={"phase": "bootstrap"}
    )
    compiled_kernels = tuple(
        "{}(n_trees={}, {}={})".format(
            entry["kernel"],
            entry["n_trees"],
            "n_leaves" if "n_leaves" in entry else "max_nodes",
            entry.get("n_leaves", entry.get("max_nodes")),
        )
        for entry in bootstrap.manifest.get("compiled", [])
    )
    config = ServingConfig(
        max_in_flight=2,
        max_waiting=4,
        queue_timeout_s=30.0,
        deadline_s=60.0,
        retry_policy=RetryPolicy(
            max_attempts=4, backoff_base=0.01, backoff_max=0.05, seed=seed
        ),
    )
    service = VminServingService(registry, config=config)
    service.start()

    latencies: List[float] = []
    chips_served = 0
    covered = 0
    labelled = 0
    n_requests = 0
    n_retried = 0
    unverified = 0
    results_lock = threading.Lock()

    def score_and_count(batch: np.ndarray, labels: Optional[np.ndarray]):
        """One audited request: score, tally metrics and coverage."""
        nonlocal chips_served, covered, labelled, n_requests, n_retried
        nonlocal unverified
        with results_lock:
            n_requests += 1
        result = service.score(batch)
        with results_lock:
            latencies.append(result.wall_s)
            chips_served += len(result.prediction)
            if result.attempts > 1:
                n_retried += 1
            if result.model_version not in service.verified_versions_:
                unverified += 1
            if labels is not None:
                covered += int(
                    np.sum(result.prediction.intervals.contains(labels))
                )
                labelled += int(labels.shape[0])
        return result

    cursor = 0

    # Phase 1: clean scoring with label feedback.
    for rows in _request_batches(X.shape[0], batch_size, n_clean_batches, cursor):
        score_and_count(X[rows], y[rows])
        service.observe(X[rows], y[rows])
    cursor += n_clean_batches * batch_size

    # Phase 2: a real SIGKILLed worker plus transient in-process crashes.
    crash = TaskCrashFault(fraction=0.5, n_failures=1, seed=seed + 1)
    sigkill = _SigkillWorker(root / "sigkill.sentinel")
    service.task_wrapper = lambda fn: sigkill.wrap(crash.wrap(fn))
    for rows in _request_batches(X.shape[0], batch_size, n_crash_batches, cursor):
        score_and_count(X[rows], y[rows])
        service.observe(X[rows], y[rows])
    service.task_wrapper = None
    cursor += n_crash_batches * batch_size

    # Phase 3: hot-swap while concurrent threads keep scoring.
    registry.publish(
        flow, reason="republished", metadata={"phase": "swap_under_load"}
    )
    swap_errors: List[BaseException] = []
    n_overload_sheds = 0

    def swap_load(thread_index: int) -> None:
        nonlocal n_overload_sheds
        offset = cursor + thread_index * n_swap_batches * batch_size
        for rows in _request_batches(
            X.shape[0], batch_size, n_swap_batches, offset
        ):
            try:
                score_and_count(X[rows], y[rows])
            except Overloaded:
                with results_lock:
                    n_overload_sheds += 1
            except BaseException as error:  # noqa: BLE001 - audited below
                with results_lock:
                    swap_errors.append(error)

    threads = [
        threading.Thread(target=swap_load, args=(index,)) for index in range(3)
    ]
    for thread in threads:
        thread.start()
    service.hot_swap()
    for thread in threads:
        thread.join()
    dropped_during_swap = len(swap_errors)
    cursor += 3 * n_swap_batches * batch_size

    # Phase 4: covariate + label drift; must alarm, recalibrate, republish.
    recalibrator = DriftRecalibrator(service, min_labels=min_recal_labels)
    drift_rng = np.random.default_rng(seed + 2)
    aging = AgingDrift(shift_scale=0.5)
    for rows in _request_batches(X.shape[0], batch_size, n_drift_batches, cursor):
        X_drift = aging.inject(X[rows], drift_rng)
        y_drift = y[rows] + drift_shift
        score_and_count(X_drift, y_drift)
        recalibrator.ingest(X_drift, y_drift)
    cursor += n_drift_batches * batch_size

    # Phase 5: corrupt the live bundle on disk; reload must quarantine
    # it and roll the service back to the last known good version.
    live = registry.latest()
    bundle = registry.versions_dir / live / "bundle.pkl"
    payload = bytearray(bundle.read_bytes())
    payload[: min(64, len(payload))] = b"\x00" * min(64, len(payload))
    bundle.write_bytes(bytes(payload))
    service.hot_swap()

    # Phase 6: republish a good bundle, swap onto it, finish clean.
    registry.publish(
        service.served_model,
        reason="republished",
        metadata={"phase": "recovery"},
    )
    service.hot_swap()
    for rows in _request_batches(
        X.shape[0], batch_size, n_recovery_batches, cursor
    ):
        score_and_count(X[rows], y[rows])
        service.observe(X[rows], y[rows])

    sorted_latencies = np.sort(np.asarray(latencies))
    total_wall = float(np.sum(sorted_latencies))
    return ServingStressReport(
        n_requests=n_requests,
        n_served=service.n_served_,
        n_overloaded=n_overload_sheds,
        n_retried=n_retried,
        dropped_during_swap=dropped_during_swap,
        unverified_serves=unverified,
        chips_per_s=(chips_served / total_wall) if total_wall > 0 else 0.0,
        p50_latency_s=float(np.percentile(sorted_latencies, 50)),
        p99_latency_s=float(np.percentile(sorted_latencies, 99)),
        coverage=(covered / labelled) if labelled else 0.0,
        target_coverage=1.0 - float(flow.alpha),
        tolerance=float(tolerance),
        n_recalibrations=len(recalibrator.events_),
        n_versions=len(registry.versions()),
        n_quarantined=len(registry.quarantined()),
        downgrades=tuple(
            (record.reason.value, record.detail)
            for record in service.health.downgrades()
        ),
        final_state=service.state.value,
        compiled_kernels=compiled_kernels,
    )


# ---------------------------------------------------------------------------
# distribution-shift campaign (new fab, corner drift, sensor recalibration)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ShiftPhaseResult:
    """Outcome of one phase of the distribution-shift campaign.

    Attributes
    ----------
    phase:
        Phase name (``control`` / ``new_fab`` / ``corner_drift`` /
        ``sensor_recal``).
    n_lots:
        Lots served during the phase (pre-repair traffic only).
    coverage:
        Worst per-lot empirical coverage of the phase *before* any
        repair -- the damage the shift inflicted.
    mean_width:
        Mean served interval width (V) over the phase's pre-repair lots.
    exchangeability_alarm, covariate_alarm:
        Whether each sentinel fired during the phase.
    detection_latency:
        Labelled observations (post phase start) consumed before the
        first sentinel fired; ``None`` when no sentinel fired.
    repair:
        Recovery path taken: ``none`` (nothing to repair),
        ``weighted`` (density-ratio-weighted recalibration accepted),
        ``adaptive`` (online recalibration republished by the
        :class:`~repro.serve.recalibration.DriftRecalibrator`), or
        ``refused+refit`` (weighted repair refused on degenerate
        weights, recovered by a full refit on fresh labels).
    ess:
        Effective sample size of the accepted density-ratio weights
        (``None`` when no weighted repair was accepted).
    post_repair_coverage:
        Coverage on a held-out lot of the *same shifted distribution*
        served after the repair (``None`` for the control phase).
    state:
        Service readiness at phase end.
    """

    phase: str
    n_lots: int
    coverage: float
    mean_width: float
    exchangeability_alarm: bool
    covariate_alarm: bool
    detection_latency: Optional[int]
    repair: str
    ess: Optional[float]
    post_repair_coverage: Optional[float]
    state: str


@dataclass(frozen=True)
class ShiftStressReport:
    """Full audit of one distribution-shift campaign.

    ``report.ok()`` is the single pass/fail the CI smoke job asserts:
    the control phase must stay quiet at nominal coverage, every
    shifted phase must be detected within the latency budget and
    repaired back above ``target - tolerance``, no phase may fall
    below the worst-case floor, every downgrade must carry a reason
    code, and the service must end the campaign ``READY``.
    """

    target_coverage: float
    tolerance: float
    detection_budget: int
    worst_coverage_floor: float
    phases: Tuple[ShiftPhaseResult, ...]
    n_recalibrations: int
    n_versions: int
    downgrades: Tuple[Tuple[str, str], ...]
    final_state: str

    def phase(self, name: str) -> ShiftPhaseResult:
        """The result of one named phase."""
        for result in self.phases:
            if result.phase == name:
                return result
        raise KeyError(f"no phase named {name!r}")

    def ok(self) -> bool:
        """Whether every campaign invariant held."""
        floor = self.target_coverage - self.tolerance
        control = self.phase("control")
        new_fab = self.phase("new_fab")
        drift = self.phase("corner_drift")
        recal = self.phase("sensor_recal")
        detected = (
            new_fab.detection_latency is not None
            and new_fab.detection_latency <= self.detection_budget
            and recal.detection_latency is not None
            and recal.detection_latency <= self.detection_budget
        )
        repaired = (
            new_fab.repair == "weighted"
            and new_fab.post_repair_coverage is not None
            and new_fab.post_repair_coverage >= floor
            and drift.repair == "adaptive"
            and drift.post_repair_coverage is not None
            and drift.post_repair_coverage >= floor
            and recal.repair == "refused+refit"
            and recal.post_repair_coverage is not None
            and recal.post_repair_coverage >= floor
        )
        return (
            not control.exchangeability_alarm
            and not control.covariate_alarm
            and control.coverage >= floor
            and new_fab.exchangeability_alarm
            and new_fab.covariate_alarm
            and recal.covariate_alarm
            and not recal.exchangeability_alarm
            and detected
            and repaired
            and self.n_recalibrations >= 1
            and min(r.coverage for r in self.phases) >= self.worst_coverage_floor
            and all(reason for reason, _ in self.downgrades)
            and self.final_state == "ready"
        )

    def to_table(self, title: Optional[str] = None) -> str:
        """Monospace phase table plus the downgrade audit trail."""
        rows = [
            [
                r.phase,
                r.n_lots,
                r.coverage * 100.0,
                r.mean_width * 1e3,
                "yes" if r.exchangeability_alarm else "no",
                "yes" if r.covariate_alarm else "no",
                "-" if r.detection_latency is None else r.detection_latency,
                r.repair,
                "-" if r.ess is None else round(r.ess, 1),
                "-"
                if r.post_repair_coverage is None
                else round(r.post_repair_coverage * 100.0, 1),
                r.state,
            ]
            for r in self.phases
        ]
        table = format_table(
            [
                "Phase",
                "Lots",
                "Coverage (%)",
                "Len (mV)",
                "Exch",
                "Covar",
                "Latency",
                "Repair",
                "ESS",
                "Post (%)",
                "State",
            ],
            rows,
            title=title or "Distribution-shift campaign report",
        )
        audit = "\n".join(
            f"  [{reason}] {detail}" for reason, detail in self.downgrades
        )
        return table + "\nDowngrade audit:\n" + (audit or "  (none)")


def run_shift_campaign(
    registry_root: Union[str, Path],
    n_chips: int = 260,
    n_estimators: int = 60,
    corner_offset_v: float = 0.015,
    drift_v_per_khour: float = 0.003,
    drift_hours: Sequence[int] = (2000, 4000, 6000),
    recal_offset_sigma: float = 8.0,
    detector_stride: int = 8,
    ratio_stride: int = 16,
    ratio_ridge: float = 4.0,
    min_ess: float = 10.0,
    min_recal_labels: Optional[int] = None,
    batch_size: int = 65,
    alpha: float = 0.1,
    tolerance: float = 0.05,
    detection_budget: int = 150,
    worst_coverage_floor: float = 0.6,
    seed: int = 2024,
) -> ShiftStressReport:
    """Drive a guarded serving stack through three distribution shifts.

    Generates a multi-fab fleet with :class:`~repro.silicon.fleet.
    FleetGenerator` (one product, a reference fab, and a skewed fab at a
    ``corner_offset_v`` Vth process corner), trains a
    :class:`~repro.robust.flow.RobustVminFlow` on one reference lot,
    publishes it, and serves through a
    :class:`~repro.serve.service.VminServingService` carrying a
    :class:`~repro.serve.shiftguard.ShiftGuard`.  Four phases:

    1. **control** -- two fresh reference-fab lots (exchangeable with
       the training lot); every sentinel must stay quiet and coverage
       must hold at nominal -- the false-alarm baseline;
    2. **new_fab** -- a lot from the skewed fab: the exchangeability
       martingale and the covariate detector must both fire within the
       detection budget, the service must degrade under audited reason
       codes, and :meth:`~repro.serve.service.VminServingService.
       repair_shift` must restore coverage on a held-out skewed lot via
       weighted conformal recalibration;
    3. **corner_drift** -- the reference fab's corner drifts with
       calendar time (``drift_v_per_khour``); realized coverage decays
       across the drift lots, the coverage monitor alarms, and the
       :class:`~repro.serve.recalibration.DriftRecalibrator` must
       republish an adaptively recalibrated version that restores
       coverage at the drifted corner;
    4. **sensor_recal** -- a firmware re-referencing adds a constant
       ``recal_offset_sigma``-sigma offset to one ROD flavour: the
       covariate detector must fire while the martingale stays quiet
       (the labels still agree with the model -- only the features
       moved), the weighted repair must *refuse* on degenerate weights,
       and recovery comes from a full refit on the re-referenced lot.

    Label feedback streams in ``batch_size``-row batches (the ATE
    delivers sub-lot batches, and sentinel latency is only meaningful
    at that granularity).  ``min_recal_labels`` defaults to two and a
    half lots' worth of labels so the drift phase republishes exactly
    once, on the full drift evidence -- republishing eagerly mid-drift
    makes the online recalibration overshoot on its own wide margins.
    Everything is seeded; the same arguments reproduce the same report
    bit for bit.  Returns a :class:`ShiftStressReport`; ``report.ok()``
    is the single pass/fail the CI smoke job asserts.
    """
    # Deferred imports, mirroring run_serving_campaign: keep the eval
    # package importable without the serving stack.
    from repro.models.oblivious import ObliviousBoostingRegressor
    from repro.robust.flow import RobustVminFlow
    from repro.serve.health import ReasonCode
    from repro.serve.recalibration import DriftRecalibrator
    from repro.serve.registry import ModelRegistry
    from repro.serve.service import VminServingService
    from repro.serve.shiftguard import ShiftGuard
    from repro.shift import (
        CovariateShiftDetector,
        DegenerateWeightsError,
        LogisticDensityRatio,
    )
    from repro.silicon.fleet import (
        CornerDrift,
        FabProfile,
        FleetGenerator,
        ProcessCorner,
        ProductSpec,
    )

    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if min_recal_labels is None:
        # Two and a half lots of labels: the drift recalibrator then
        # republishes exactly once, at the end of the drift stream, with
        # the full excursion in its adaptive state.  Republishing after
        # every lot lets the next lot's feedback run against the freshly
        # widened intervals, and the Gibbs-Candes update then overshoots
        # (alpha_t climbs far above alpha on a pure over-coverage
        # stream, collapsing the following version's intervals).
        min_recal_labels = int(2.5 * n_chips)

    fleet = FleetGenerator(
        products=[ProductSpec("alpha", n_chips=n_chips)],
        fabs=[
            FabProfile(
                "ref",
                ProcessCorner("nominal"),
                drift=CornerDrift(vth_v_per_khour=drift_v_per_khour),
            ),
            FabProfile(
                "newfab", ProcessCorner("slow", vth_offset_v=corner_offset_v)
            ),
        ],
        seed=seed,
    )

    def lot_data(fab: str, hours: int = 0, lot_index: int = 0):
        """One generated lot as (lot, features, labels)."""
        lot = fleet.lot(
            "alpha",
            fab,
            calendar_hours=hours,
            lot_index=lot_index,
            read_points=(0,),
            temperatures=(25.0,),
        )
        features, _ = lot.dataset.features(0)
        return lot, features, lot.dataset.vmin[(25.0, 0)]

    train_lot, X_train, y_train = lot_data("ref", lot_index=0)
    feature_names = train_lot.dataset.features(0)[1]
    monitor_columns = np.asarray(
        [
            index
            for index, name in enumerate(feature_names)
            if not name.startswith("par_")
        ],
        dtype=np.int64,
    )
    f0_columns = np.asarray(
        [
            index
            for index, name in enumerate(feature_names)
            if name.startswith("rod_f0")
        ],
        dtype=np.int64,
    )
    ratio_columns = monitor_columns[::ratio_stride]

    def make_flow() -> RobustVminFlow:
        """The campaign's flow configuration (shared by train and refit)."""
        return RobustVminFlow(
            base_model=ObliviousBoostingRegressor(
                n_estimators=n_estimators,
                max_bins=16,
                quantile=0.5,
                random_state=0,
            ),
            alpha=alpha,
            random_state=0,
            monitor_window=40,
            monitor_min_observations=20,
        )

    flow = make_flow()
    flow.fit(
        X_train,
        y_train,
        feature_names=feature_names,
        monitor_columns=monitor_columns,
    )

    guard = ShiftGuard(
        detector=CovariateShiftDetector(
            psi_threshold=1.0, alarm_fraction=0.10, min_observations=40
        ),
        feature_columns=monitor_columns[::detector_stride],
    )
    registry = ModelRegistry(Path(registry_root))
    registry.publish(flow, reason="published", metadata={"phase": "bootstrap"})
    service = VminServingService(registry, shift_guard=guard)
    service.start()

    def ratio_estimator() -> LogisticDensityRatio:
        """A fresh, seeded density-ratio template per repair attempt."""
        return LogisticDensityRatio(ridge=ratio_ridge, random_state=seed)

    def stream_observe(X, y, zones=None) -> None:
        """Feed label feedback in ATE-sized batches.

        Real test floors deliver labels a handful of wafers at a time,
        and sentinel detection latency is only meaningful at that
        granularity: the PSI detector evaluates once per ``observe``
        batch, so feeding a whole lot at once would quantise its latency
        to the lot size.
        """
        for start in range(0, len(y), batch_size):
            stop = start + batch_size
            service.observe(
                X[start:stop],
                y[start:stop],
                zones=None if zones is None else zones[start:stop],
            )

    def sentinel_latency(baseline: int) -> Optional[int]:
        """Observations past ``baseline`` before the first sentinel fired."""
        fired = []
        if guard.martingale_ is not None and guard.martingale_.alarms_:
            fired.append(guard.martingale_.alarms_[0].n_observed - baseline)
        if guard.detector_ is not None and guard.detector_.alarms_:
            fired.append(guard.detector_.alarms_[0].n_observed - baseline)
        eligible = [latency for latency in fired if latency > 0]
        return min(eligible) if eligible else None

    def reset_to_golden(phase: str) -> None:
        """Republish the pristine bundle and swap onto it (fresh guard).

        The service only ever mutates the *unpickled* copies it loads
        from the registry, so the in-process ``flow`` still holds the
        freshly fitted state; republishing it starts the next phase
        from a clean bundle with every sentinel re-baselined.
        """
        registry.publish(flow, reason="republished", metadata={"phase": phase})
        service.hot_swap()

    phases = []

    # Phase 1: control -- fresh reference lots, everything must stay quiet.
    control_coverages = []
    control_widths = []
    for lot_index in (1, 2):
        lot, X, y = lot_data("ref", lot_index=lot_index)
        result = service.score(X)
        control_coverages.append(result.prediction.coverage(y))
        control_widths.append(result.prediction.mean_width)
        stream_observe(X, y, zones=lot.zones(3))
    control_verdict = guard.verdict()
    phases.append(
        ShiftPhaseResult(
            phase="control",
            n_lots=2,
            coverage=float(min(control_coverages)),
            mean_width=float(np.mean(control_widths)),
            exchangeability_alarm=control_verdict.exchangeability_alarm,
            covariate_alarm=control_verdict.covariate_alarm,
            detection_latency=sentinel_latency(0),
            repair="none",
            ess=None,
            post_repair_coverage=None,
            state=service.state.value,
        )
    )

    # Phase 2: new fab -- both sentinels fire, weighted repair restores.
    phase_start = guard.n_observed_
    lot, X_shift, y_shift = lot_data("newfab", lot_index=0)
    result = service.score(X_shift)
    new_fab_coverage = result.prediction.coverage(y_shift)
    new_fab_width = result.prediction.mean_width
    stream_observe(X_shift, y_shift, zones=lot.zones(3))
    new_fab_verdict = guard.verdict()
    new_fab_latency = sentinel_latency(phase_start)
    ess: Optional[float] = None
    try:
        ess = service.repair_shift(
            X_shift,
            ratio_columns=ratio_columns,
            min_ess=min_ess,
            ratio_estimator=ratio_estimator(),
        )
        new_fab_repair = "weighted"
    except DegenerateWeightsError:
        new_fab_repair = "refused"
    _, X_held, y_held = lot_data("newfab", lot_index=1)
    new_fab_post = service.score(X_held).prediction.coverage(y_held)
    phases.append(
        ShiftPhaseResult(
            phase="new_fab",
            n_lots=1,
            coverage=float(new_fab_coverage),
            mean_width=float(new_fab_width),
            exchangeability_alarm=new_fab_verdict.exchangeability_alarm,
            covariate_alarm=new_fab_verdict.covariate_alarm,
            detection_latency=new_fab_latency,
            repair=new_fab_repair,
            ess=ess,
            post_repair_coverage=float(new_fab_post),
            state=service.state.value,
        )
    )

    # Phase 3: corner drift -- realized coverage decays with calendar
    # time; the coverage monitor alarms and the DriftRecalibrator must
    # republish an adaptively recalibrated version.
    reset_to_golden("corner_drift")
    recalibrator = DriftRecalibrator(service, min_labels=min_recal_labels)
    audit_start = len(service.health.transitions_)
    drift_coverages = []
    drift_widths = []
    for hours in drift_hours:
        _, X_drift, y_drift = lot_data("ref", hours=hours, lot_index=2)
        result = service.score(X_drift)
        drift_coverages.append(result.prediction.coverage(y_drift))
        drift_widths.append(result.prediction.mean_width)
        recalibrator.ingest(X_drift, y_drift)
    # A mid-phase republication re-arms (and thereby resets) the
    # sentinels, so the phase's alarm evidence is read from the
    # persistent health audit trail rather than the live guard.
    drift_records = service.health.transitions_[audit_start:]
    drift_exchangeability = any(
        record.reason is ReasonCode.EXCHANGEABILITY_ALARM
        for record in drift_records
    )
    drift_covariate = any(
        record.reason is ReasonCode.COVARIATE_SHIFT for record in drift_records
    )
    # Post-repair check at the drifted corner: the republished adaptive
    # flow must hold coverage where the stale bundle was failing.
    _, X_post, y_post = lot_data(
        "ref", hours=int(drift_hours[-1]), lot_index=3
    )
    drift_post = service.score(X_post).prediction.coverage(y_post)
    # The excursion is then corrected at the fab: recovery traffic from
    # the nominal corner brings the rolling coverage back to target.
    for lot_index in (4, 5):
        _, X_rec, y_rec = lot_data("ref", hours=0, lot_index=lot_index)
        service.score(X_rec)
        stream_observe(X_rec, y_rec)
    phases.append(
        ShiftPhaseResult(
            phase="corner_drift",
            n_lots=len(tuple(drift_hours)),
            coverage=float(min(drift_coverages)),
            mean_width=float(np.mean(drift_widths)),
            exchangeability_alarm=drift_exchangeability,
            covariate_alarm=drift_covariate,
            # Latency in observations is not well defined across the
            # mid-phase re-arm; the audit trail carries the ordering.
            detection_latency=None,
            repair=(
                "adaptive" if recalibrator.events_ else "none"
            ),
            ess=None,
            post_repair_coverage=float(drift_post),
            state=service.state.value,
        )
    )

    # Phase 4: sensor recalibration -- a constant re-referencing offset
    # on one ROD flavour.  Features move, labels do not: the covariate
    # detector must fire while the martingale stays quiet, the weighted
    # repair must refuse (degenerate weights), and recovery is a refit.
    reset_to_golden("sensor_recal")
    recal_offset = recal_offset_sigma * X_train[:, f0_columns].std(axis=0)
    recal_start = guard.n_observed_

    def recalibrated_lot(lot_index: int):
        """A reference lot with the f0 ROD block re-referenced."""
        lot, X, y = lot_data("ref", lot_index=lot_index)
        X = np.array(X)
        X[:, f0_columns] += recal_offset
        return lot, X, y

    lot, X_recal, y_recal = recalibrated_lot(6)
    result = service.score(X_recal)
    recal_coverage = result.prediction.coverage(y_recal)
    recal_width = result.prediction.mean_width
    stream_observe(X_recal, y_recal, zones=lot.zones(3))
    recal_verdict = guard.verdict()
    recal_latency = sentinel_latency(recal_start)
    recal_repair = "weighted"
    try:
        service.repair_shift(
            X_recal,
            ratio_columns=ratio_columns,
            min_ess=min_ess,
            ratio_estimator=ratio_estimator(),
        )
    except DegenerateWeightsError:
        # The honest path: refit on the re-referenced lot (labels are
        # in hand -- the same lot was just measured) and republish.
        refit = make_flow()
        refit.fit(
            X_recal,
            y_recal,
            feature_names=feature_names,
            monitor_columns=monitor_columns,
        )
        registry.publish(
            refit, reason="refit", metadata={"phase": "sensor_recal"}
        )
        service.hot_swap()
        recal_repair = "refused+refit"
    _, X_recal_held, y_recal_held = recalibrated_lot(7)
    recal_post = service.score(X_recal_held).prediction.coverage(
        y_recal_held
    )
    stream_observe(X_recal_held, y_recal_held)
    phases.append(
        ShiftPhaseResult(
            phase="sensor_recal",
            n_lots=1,
            coverage=float(recal_coverage),
            mean_width=float(recal_width),
            exchangeability_alarm=recal_verdict.exchangeability_alarm,
            covariate_alarm=recal_verdict.covariate_alarm,
            detection_latency=recal_latency,
            repair=recal_repair,
            ess=None,
            post_repair_coverage=float(recal_post),
            state=service.state.value,
        )
    )

    return ShiftStressReport(
        target_coverage=1.0 - float(alpha),
        tolerance=float(tolerance),
        detection_budget=int(detection_budget),
        worst_coverage_floor=float(worst_coverage_floor),
        phases=tuple(phases),
        n_recalibrations=len(recalibrator.events_),
        n_versions=len(registry.versions()),
        downgrades=tuple(
            (record.reason.value, record.detail)
            for record in service.health.downgrades()
        ),
        final_state=service.state.value,
    )
