"""Tests for group-conditional (Mondrian) conformal prediction."""

import numpy as np
import pytest

from repro.core.mondrian import (
    MondrianConformalRegressor,
    MondrianFallbackWarning,
)
from repro.models.linear import LinearRegression, QuantileLinearRegression


def _group_by_sign(X):
    return (X[:, 0] > 0).astype(int)


@pytest.fixture()
def grouped_data(rng):
    """Two subpopulations with very different noise scales."""
    n = 1200
    X = rng.normal(size=(n, 3))
    noise = np.where(X[:, 0] > 0, 2.0, 0.2)
    y = X[:, 1] + rng.normal(scale=noise)
    return X, y


class TestMondrian:
    def test_point_mode_per_group_coverage(self, grouped_data):
        X, y = grouped_data
        model = MondrianConformalRegressor(
            LinearRegression(), _group_by_sign, alpha=0.1, random_state=0
        ).fit(X[:900], y[:900])
        intervals = model.predict_interval(X[900:])
        for key in (0, 1):
            members = _group_by_sign(X[900:]) == key
            coverage = intervals.contains(y[900:]).astype(float)[members].mean()
            assert coverage >= 0.8, f"group {key} under-covered"

    def test_group_quantiles_reflect_noise(self, grouped_data):
        X, y = grouped_data
        model = MondrianConformalRegressor(
            LinearRegression(), _group_by_sign, alpha=0.1, random_state=0
        ).fit(X, y)
        assert model.group_quantiles_[1] > model.group_quantiles_[0]

    def test_marginal_cp_undercovers_noisy_group(self, grouped_data):
        """The motivating contrast: plain split CP's marginal interval is
        too narrow for the noisy group."""
        from repro.core.split_cp import SplitConformalRegressor

        X, y = grouped_data
        marginal = SplitConformalRegressor(
            LinearRegression(), alpha=0.1, random_state=0
        ).fit(X[:900], y[:900])
        intervals = marginal.predict_interval(X[900:])
        noisy = _group_by_sign(X[900:]) == 1
        noisy_coverage = intervals.contains(y[900:]).astype(float)[noisy].mean()
        mondrian = MondrianConformalRegressor(
            LinearRegression(), _group_by_sign, alpha=0.1, random_state=0
        ).fit(X[:900], y[:900])
        m_intervals = mondrian.predict_interval(X[900:])
        m_noisy = m_intervals.contains(y[900:]).astype(float)[noisy].mean()
        assert m_noisy >= noisy_coverage - 0.02

    def test_quantile_mode_uses_band(self, grouped_data):
        X, y = grouped_data
        model = MondrianConformalRegressor(
            QuantileLinearRegression(), _group_by_sign, alpha=0.1, random_state=0
        ).fit(X[:900], y[:900])
        assert model.band_ is not None and model.point_model_ is None
        intervals = model.predict_interval(X[900:])
        assert intervals.coverage(y[900:]) >= 0.85

    def test_unseen_group_falls_back_to_marginal(self, rng):
        """The fallback must serve every row AND page loudly: one
        :class:`MondrianFallbackWarning` per call, carrying the keys."""
        X = rng.normal(size=(200, 2))
        y = X[:, 0] + rng.normal(size=200)

        def grouper(Z):
            # At predict time, inject an unseen group label.
            return np.where(Z[:, 1] > 3.5, 99, 0)

        model = MondrianConformalRegressor(
            LinearRegression(), grouper, alpha=0.1, random_state=0
        ).fit(X, y)
        X_test = X.copy()
        X_test[0, 1] = 10.0  # force group 99
        assert model.unseen_group_keys(X_test) == (99,)
        with pytest.warns(MondrianFallbackWarning, match="99") as caught:
            intervals = model.predict_interval(X_test)
        assert len(intervals) == 200
        fallback = [
            w for w in caught if isinstance(w.message, MondrianFallbackWarning)
        ]
        assert len(fallback) == 1
        assert fallback[0].message.group_keys == (99,)

    def test_seen_groups_do_not_warn(self, grouped_data):
        import warnings

        X, y = grouped_data
        model = MondrianConformalRegressor(
            LinearRegression(), _group_by_sign, alpha=0.1, random_state=0
        ).fit(X[:900], y[:900])
        assert model.unseen_group_keys(X[900:]) == ()
        with warnings.catch_warnings():
            warnings.simplefilter("error", MondrianFallbackWarning)
            model.predict_interval(X[900:])

    def test_too_small_group_raises(self, rng):
        X = rng.normal(size=(40, 2))
        y = rng.normal(size=40)
        model = MondrianConformalRegressor(
            LinearRegression(), _group_by_sign, alpha=0.1, random_state=0
        ).fit(X, y)
        # Force a group whose calibration quantile is infinite (too few
        # members for the target alpha) and check the guard fires.
        key = next(iter(model.group_quantiles_))
        model.group_quantiles_[key] = float("inf")
        with pytest.raises(RuntimeError, match="too few"):
            model.predict_interval(X)

    def test_group_function_shape_checked(self, rng):
        X = rng.normal(size=(50, 2))
        y = rng.normal(size=50)
        model = MondrianConformalRegressor(
            LinearRegression(), lambda Z: np.zeros((2, 2)), random_state=0
        )
        with pytest.raises(ValueError, match="one key per row"):
            model.fit(X, y)
