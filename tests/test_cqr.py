"""Tests for conformalized quantile regression."""

import numpy as np
import pytest

from repro.core.cqr import ConformalizedQuantileRegressor
from repro.models.linear import LinearRegression, QuantileLinearRegression
from repro.models.oblivious import ObliviousBoostingRegressor
from repro.models.quantile import PackageDefaultQuantileBand


class TestCQR:
    def test_marginal_coverage_monte_carlo(self):
        rng = np.random.default_rng(11)
        coverages = []
        for _ in range(30):
            X = rng.normal(size=(150, 3))
            y = X[:, 0] + rng.normal(scale=0.4, size=150)
            cqr = ConformalizedQuantileRegressor(
                QuantileLinearRegression(),
                alpha=0.2,
                random_state=int(rng.integers(1e6)),
            ).fit(X[:100], y[:100])
            coverages.append(cqr.predict_interval(X[100:]).coverage(y[100:]))
        assert np.mean(coverages) >= 0.8 - 0.03

    def test_adapts_to_heteroscedastic_noise(self, hetero_data):
        X, y = hetero_data
        cqr = ConformalizedQuantileRegressor(
            QuantileLinearRegression(), alpha=0.1, random_state=0
        ).fit(X[:450], y[:450])
        intervals = cqr.predict_interval(X[450:])
        width = intervals.width
        noisy = X[450:, 0] > 1.0
        assert width[noisy].mean() > width[~noisy].mean()

    def test_correction_can_shrink_conservative_band(self, rng):
        """A band trained at extreme quantiles over-covers; CQR's q-hat goes
        negative to shrink it."""
        X = rng.normal(size=(500, 2))
        y = X[:, 0] + rng.normal(scale=0.2, size=500)
        cqr = ConformalizedQuantileRegressor(
            QuantileLinearRegression(),
            alpha=0.5,  # band quantiles 25/75, but alpha=0.5 target
            random_state=0,
        )
        # Manually widen: fit at alpha=0.02-style band via a template trick
        cqr_wide = ConformalizedQuantileRegressor(
            QuantileLinearRegression(), alpha=0.5, random_state=0
        )
        cqr_wide.band_template = None
        cqr_wide.fit(X, y)
        # For a 50% target on clean data the correction is usually <= 0 at
        # least sometimes; the invariant we assert is coverage near target.
        coverage = cqr_wide.predict_interval(X).coverage(y)
        assert coverage == pytest.approx(0.5, abs=0.1)

    def test_negative_correction_possible(self, rng):
        X = rng.normal(size=(400, 1))
        y = X[:, 0] + rng.normal(scale=0.1, size=400)

        class WideBand(PackageDefaultQuantileBand):
            """Band that is deliberately too wide for the target."""

            def predict_interval(self, X):
                lower, upper = super().predict_interval(X)
                return lower - 10.0, upper + 10.0

        band = WideBand(
            ObliviousBoostingRegressor(n_estimators=5, quantile=0.5),
            random_state=0,
        )
        cqr = ConformalizedQuantileRegressor(
            None, alpha=0.1, band_template=band, random_state=0
        ).fit(X, y)
        assert cqr.quantile_low_ < 0  # shrank the over-wide band

    def test_asymmetric_variant_covers(self, rng):
        X = rng.normal(size=(600, 2))
        y = X[:, 0] + rng.standard_t(df=3, size=600)
        cqr = ConformalizedQuantileRegressor(
            QuantileLinearRegression(), alpha=0.2, symmetric=False, random_state=0
        ).fit(X[:400], y[:400])
        coverage = cqr.predict_interval(X[400:]).coverage(y[400:])
        assert coverage >= 0.75

    def test_band_template_used(self, rng):
        X = rng.normal(size=(80, 2))
        y = rng.normal(size=80)
        band = PackageDefaultQuantileBand(
            ObliviousBoostingRegressor(n_estimators=3, quantile=0.5),
            random_state=0,
        )
        cqr = ConformalizedQuantileRegressor(
            None, alpha=0.2, band_template=band, random_state=0
        ).fit(X, y)
        assert isinstance(cqr.band_, PackageDefaultQuantileBand)
        assert band.lower_ is None  # template itself never fitted

    def test_requires_estimator_or_band(self):
        with pytest.raises(ValueError, match="estimator or a band"):
            ConformalizedQuantileRegressor(None)

    def test_predict_is_midpoint(self, rng):
        X = rng.normal(size=(120, 2))
        y = X[:, 0] + rng.normal(size=120)
        cqr = ConformalizedQuantileRegressor(
            QuantileLinearRegression(), alpha=0.2, random_state=0
        ).fit(X, y)
        intervals = cqr.predict_interval(X)
        np.testing.assert_allclose(cqr.predict(X), intervals.midpoint)

    def test_too_small_calibration_raises(self, rng):
        X = rng.normal(size=(16, 1))
        y = rng.normal(size=16)
        cqr = ConformalizedQuantileRegressor(
            QuantileLinearRegression(), alpha=0.05, random_state=0
        ).fit(X, y)
        with pytest.raises(RuntimeError, match="too small"):
            cqr.predict_interval(X)

    def test_deterministic_given_seed(self, rng):
        X = rng.normal(size=(100, 2))
        y = X[:, 0] + rng.normal(size=100)
        a = ConformalizedQuantileRegressor(
            QuantileLinearRegression(), random_state=5
        ).fit(X, y)
        b = ConformalizedQuantileRegressor(
            QuantileLinearRegression(), random_state=5
        ).fit(X, y)
        assert a.quantile_low_ == b.quantile_low_

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            ConformalizedQuantileRegressor(QuantileLinearRegression(), alpha=0.0)
