"""Unit tests for the whole-program analysis core: project/symbol
tables, CFG construction, reaching definitions, taint propagation, and
call-graph resolution across modules."""

import ast
import textwrap

import pytest

from repro.devtools.analysis.cfg import build_cfg
from repro.devtools.analysis.dataflow import (
    TaintAnalysis,
    assigned_names,
    reaching_definitions,
)
from repro.devtools.analysis.project import Project, module_name_for
from repro.devtools.analysis.rules.base import ProjectContext
from repro.devtools.analysis.callgraph import (
    build_call_graph,
    resolve_function_reference,
)


def _project(**sources):
    """Build a Project from ``name='source'`` keyword modules.

    ``pkg__mod`` becomes module ``pkg.mod`` at path ``pkg/mod.py``.
    """
    project = Project()
    for key, source in sources.items():
        name = key.replace("__", ".")
        path = name.replace(".", "/") + ".py"
        project.add_source(textwrap.dedent(source), path, name=name)
    return project


def _function_cfg(source, name=None):
    tree = ast.parse(textwrap.dedent(source))
    fn = next(
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef)
        and (name is None or node.name == name)
    )
    return build_cfg(fn.body)


class TestModuleNaming:
    def test_package_chain(self, tmp_path):
        pkg = tmp_path / "outer" / "inner"
        pkg.mkdir(parents=True)
        (tmp_path / "outer" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("x = 1\n")
        assert module_name_for(pkg / "mod.py") == "outer.inner.mod"
        assert module_name_for(pkg / "__init__.py") == "outer.inner"

    def test_bare_file(self, tmp_path):
        (tmp_path / "loose.py").write_text("x = 1\n")
        assert module_name_for(tmp_path / "loose.py") == "loose"


class TestProjectTables:
    def test_registers_nested_and_methods(self):
        project = _project(
            mod="""
            class Box:
                def fit(self, X):
                    def helper(v):
                        return v
                    return helper(X)

            def top():
                pass
            """
        )
        assert "mod.Box.fit" in project.functions
        assert "mod.Box.fit.<locals>.helper" in project.functions
        assert "mod.top" in project.functions
        assert project.functions["mod.Box.fit"].parent_class == "Box"
        assert project.functions["mod.Box.fit"].params() == ["X"]

    def test_syntax_error_becomes_engine_error(self):
        project = Project()
        assert project.add_source("def broken(:\n", "bad.py") is None
        assert len(project.errors) == 1
        assert project.errors[0].path == "bad.py"
        assert "parsed" in project.errors[0].message

    def test_alias_resolution_absolute_and_relative(self):
        project = _project(
            pkg__util="""
            def helper():
                return 1
            """,
            pkg__user="""
            from pkg.util import helper
            from .util import helper as h2
            import pkg.util as util_mod

            def caller():
                return helper() + h2()
            """,
        )
        assert project.resolve("pkg.user", "helper") == "pkg.util.helper"
        assert project.resolve("pkg.user", "h2") == "pkg.util.helper"
        assert project.resolve("pkg.user", "util_mod.helper") == "pkg.util.helper"
        assert project.resolve("pkg.user", "nothing") is None


class TestCfg:
    def test_branch_creates_join(self):
        cfg = _function_cfg(
            """
            def f(a):
                if a:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        # entry/header, two arms, join at minimum.
        assert len(cfg.blocks) >= 4
        header = next(
            b
            for b in cfg.blocks
            if any(isinstance(s, ast.If) for s in b.statements)
        )
        assert len(header.successors) == 2  # one per arm
        join = next(
            b
            for b in cfg.blocks
            if any(isinstance(s, ast.Return) for s in b.statements)
        )
        assert len(cfg.predecessors(join)) == 2  # both arms re-join

    def test_loop_has_back_edge(self):
        cfg = _function_cfg(
            """
            def f(n):
                total = 0
                while n:
                    n -= 1
                return total
            """
        )
        # Some block must have the loop header among its successors AND
        # the header must have >1 predecessor (entry + back edge).
        headers = [
            b
            for b in cfg.blocks
            if any(isinstance(s, ast.While) for s in b.statements)
        ]
        assert headers
        assert len(cfg.predecessors(headers[0])) >= 2


class TestReachingDefinitions:
    def test_both_branch_definitions_reach_join(self):
        cfg = _function_cfg(
            """
            def f(a):
                if a:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        rd = reaching_definitions(cfg)
        return_block = next(
            b
            for b in cfg.blocks
            if any(isinstance(s, ast.Return) for s in b.statements)
        )
        x_defs = {site for site in rd[return_block.id] if site[0] == "x"}
        assert len(x_defs) == 2  # one from each arm

    def test_loop_body_definition_reaches_itself(self):
        cfg = _function_cfg(
            """
            def f(n):
                x = 0
                while n:
                    x = x + 1
                return x
            """
        )
        rd = reaching_definitions(cfg)
        body_block = next(
            b
            for b in cfg.blocks
            if any(
                isinstance(s, ast.Assign)
                and isinstance(s.value, ast.BinOp)
                for s in b.statements
            )
        )
        # Around the back edge, the body's own definition of x reaches
        # the body entry alongside the initial x = 0.
        x_defs = {site for site in rd[body_block.id] if site[0] == "x"}
        assert len(x_defs) == 2

    def test_assigned_names_forms(self):
        stmts = ast.parse(
            "a, (b, c) = t\nd += 1\nfor e in xs: pass\nwith open(p) as f: pass\n"
        ).body
        assert assigned_names(stmts[0]) == ["a", "b", "c"]
        assert assigned_names(stmts[1]) == ["d"]
        assert assigned_names(stmts[2]) == ["e"]
        assert assigned_names(stmts[3]) == ["f"]


def _taint(source, sources_names, seams=None):
    """Run TaintAnalysis over one function; taint Name loads in
    ``sources_names``; return (analysis, sink-call labels by callee name)."""
    cfg = _function_cfg(source)

    def expr_sources(expr):
        if isinstance(expr, ast.Name) and expr.id in sources_names:
            return [("src", expr.id)]
        return []

    analysis = TaintAnalysis(cfg, expr_sources, call_result_positions=seams)
    analysis.run()
    hits = {}

    def visit(stmt, state):
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                for arg in node.args:
                    hits.setdefault(node.func.id, frozenset())
                    hits[node.func.id] |= analysis.expr_labels(arg, state)
                for kw in node.keywords:
                    hits[node.func.id] = hits.get(
                        node.func.id, frozenset()
                    ) | analysis.expr_labels(kw.value, state)

    analysis.visit_statements(visit)
    return analysis, hits


class TestTaint:
    def test_tuple_unpacking_propagates(self):
        _, hits = _taint(
            """
            def f(dirty):
                a, b = dirty, 1
                sink(a)
                clean(b)
            """,
            {"dirty"},
        )
        assert ("src", "dirty") in hits["sink"]
        assert not hits["clean"]

    def test_keyword_argument_carries_taint(self):
        _, hits = _taint(
            """
            def f(dirty):
                x = dirty + 1
                sink(value=x)
            """,
            {"dirty"},
        )
        assert ("src", "dirty") in hits["sink"]

    def test_seam_taints_only_listed_positions(self):
        def seams(call):
            if isinstance(call.func, ast.Name) and call.func.id == "split":
                return [("seam", "split")], [1]
            return None

        _, hits = _taint(
            """
            def f(n):
                train, cal = split(n)
                fit(train)
                score(cal)
            """,
            set(),
            seams=seams,
        )
        assert not hits["fit"]
        assert ("seam", "split") in hits["score"]

    def test_branch_merge_unions_labels(self):
        _, hits = _taint(
            """
            def f(dirty, flag):
                if flag:
                    x = dirty
                else:
                    x = 0
                sink(x)
            """,
            {"dirty"},
        )
        assert ("src", "dirty") in hits["sink"]

    def test_sanitizer_calls_drop_taint(self):
        _, hits = _taint(
            """
            def f(dirty):
                n = len(dirty)
                sink(n)
            """,
            {"dirty"},
        )
        assert not hits["sink"]

    def test_augassign_accumulates(self):
        _, hits = _taint(
            """
            def f(dirty):
                acc = 0
                acc += dirty
                sink(acc)
            """,
            {"dirty"},
        )
        assert ("src", "dirty") in hits["sink"]


class TestCallGraph:
    def test_resolves_across_modules(self):
        project = _project(
            pkg__lib="""
            def target():
                return 0
            """,
            pkg__app="""
            from pkg.lib import target

            def run():
                return target()
            """,
        )
        graph = build_call_graph(project)
        assert "pkg.lib.target" in graph.callees("pkg.app.run")

    def test_resolves_nested_and_self_methods(self):
        project = _project(
            mod="""
            class Runner:
                def outer(self):
                    def inner():
                        return 1
                    self.helper()
                    return inner()

                def helper(self):
                    return 2
            """
        )
        graph = build_call_graph(project)
        callees = graph.callees("mod.Runner.outer")
        assert "mod.Runner.outer.<locals>.inner" in callees
        assert "mod.Runner.helper" in callees

    def test_bare_reference_counts_as_edge(self):
        project = _project(
            mod="""
            def task():
                return 1

            def submitter(pool):
                pool.submit(task)
            """
        )
        graph = build_call_graph(project)
        assert "mod.task" in graph.callees("mod.submitter")

    def test_reachability_is_transitive(self):
        project = _project(
            mod="""
            def c():
                return 1

            def b():
                return c()

            def a():
                return b()
            """
        )
        graph = build_call_graph(project)
        assert {"mod.a", "mod.b", "mod.c"} <= graph.reachable({"mod.a"})

    def test_unresolvable_reference_is_none(self):
        project = _project(mod="def f(x):\n    return x.method()\n")
        fn = project.functions["mod.f"]
        call = next(
            n for n in ast.walk(fn.node) if isinstance(n, ast.Call)
        )
        assert resolve_function_reference(project, fn, call.func) is None


class TestProjectContext:
    def test_cfg_cached_and_lambda_wrapped(self):
        project = _project(
            mod="""
            square = lambda v: v * v

            def f():
                return 1
            """
        )
        context = ProjectContext(project)
        first = context.cfg("mod.f")
        assert context.cfg("mod.f") is first
