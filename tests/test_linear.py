"""Tests for linear point and quantile regression."""

import numpy as np
import pytest

from repro.models.linear import LinearRegression, QuantileLinearRegression


class TestLinearRegression:
    def test_recovers_true_coefficients(self, linear_data):
        X, y, coef, intercept = linear_data
        model = LinearRegression().fit(X, y)
        np.testing.assert_allclose(model.coef_, coef, atol=0.05)
        assert model.intercept_ == pytest.approx(intercept, abs=0.05)

    def test_matches_normal_equations(self, rng):
        X = rng.normal(size=(50, 3))
        y = rng.normal(size=50)
        model = LinearRegression(fit_intercept=False).fit(X, y)
        expected = np.linalg.solve(X.T @ X, X.T @ y)
        np.testing.assert_allclose(model.coef_, expected, atol=1e-8)

    def test_no_intercept_mode(self, rng):
        X = rng.normal(size=(100, 2)) + 5.0
        y = X @ np.array([1.0, 2.0])
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        np.testing.assert_allclose(model.coef_, [1.0, 2.0], atol=1e-8)

    def test_ridge_shrinks_coefficients(self, linear_data):
        X, y, *_ = linear_data
        ols = LinearRegression(alpha=0.0).fit(X, y)
        ridge = LinearRegression(alpha=100.0).fit(X, y)
        assert np.linalg.norm(ridge.coef_) < np.linalg.norm(ols.coef_)

    def test_ridge_does_not_penalise_intercept(self, rng):
        y = rng.normal(loc=100.0, scale=0.1, size=50)
        X = rng.normal(size=(50, 2))
        model = LinearRegression(alpha=1e6).fit(X, y)
        assert model.intercept_ == pytest.approx(100.0, abs=0.2)

    def test_rank_deficient_uses_min_norm(self, rng):
        base = rng.normal(size=(30, 1))
        X = np.hstack([base, base])  # perfectly collinear
        y = base[:, 0] * 2.0
        model = LinearRegression().fit(X, y)
        prediction = model.predict(X)
        np.testing.assert_allclose(prediction, y, atol=1e-8)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            LinearRegression(alpha=-1.0)

    def test_predict_rejects_wrong_width(self, linear_data):
        X, y, *_ = linear_data
        model = LinearRegression().fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(X[:, :2])


class TestQuantileLinearRegression:
    def test_intercept_only_recovers_empirical_quantile(self, rng):
        y = rng.normal(size=800)
        X = np.zeros((800, 1))
        for q in (0.1, 0.5, 0.9):
            model = QuantileLinearRegression(quantile=q).fit(X, y)
            assert model.intercept_ == pytest.approx(np.quantile(y, q), abs=0.08)

    def test_median_regression_recovers_slope(self, rng):
        X = rng.normal(size=(400, 1))
        y = 3.0 * X[:, 0] + rng.standard_t(df=3, size=400) * 0.1
        model = QuantileLinearRegression(quantile=0.5).fit(X, y)
        assert model.coef_[0] == pytest.approx(3.0, abs=0.05)

    def test_quantile_crossing_fraction_matches_q(self, rng):
        X = rng.normal(size=(1000, 2))
        y = X[:, 0] + rng.normal(size=1000)
        q = 0.8
        model = QuantileLinearRegression(quantile=q).fit(X, y)
        below = np.mean(y <= model.predict(X))
        assert below == pytest.approx(q, abs=0.03)

    def test_upper_above_lower(self, rng):
        X = rng.normal(size=(300, 2))
        y = X[:, 0] + rng.normal(size=300)
        lo = QuantileLinearRegression(quantile=0.1).fit(X, y)
        hi = QuantileLinearRegression(quantile=0.9).fit(X, y)
        assert np.mean(hi.predict(X) - lo.predict(X)) > 0

    def test_irls_close_to_lp(self, rng):
        X = rng.normal(size=(200, 2))
        y = X[:, 0] - 0.5 * X[:, 1] + rng.normal(size=200)
        lp = QuantileLinearRegression(quantile=0.7, alpha=0.0).fit(X, y)
        irls = QuantileLinearRegression(quantile=0.7, alpha=1e-6).fit(X, y)
        np.testing.assert_allclose(irls.coef_, lp.coef_, atol=0.15)

    def test_ridge_irls_shrinks(self, rng):
        X = rng.normal(size=(100, 3))
        y = 5 * X[:, 0] + rng.normal(size=100)
        small = QuantileLinearRegression(quantile=0.5, alpha=1e-6).fit(X, y)
        big = QuantileLinearRegression(quantile=0.5, alpha=100.0).fit(X, y)
        assert np.linalg.norm(big.coef_) < np.linalg.norm(small.coef_)

    def test_no_intercept(self, rng):
        X = np.abs(rng.normal(size=(200, 1)))
        y = 2.0 * X[:, 0]
        model = QuantileLinearRegression(quantile=0.5, fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        assert model.coef_[0] == pytest.approx(2.0, abs=1e-6)

    def test_rejects_invalid_quantile(self):
        with pytest.raises(ValueError, match="quantile"):
            QuantileLinearRegression(quantile=1.2)

    def test_predict_rejects_wrong_width(self, rng):
        X = rng.normal(size=(50, 3))
        y = rng.normal(size=50)
        model = QuantileLinearRegression().fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.predict(X[:, :1])
