"""Parametric ATE test families (the 1800-column block of Table II).

Production parametric tests -- IDDQ vectors, supply-trip currents,
leakage screens, Vdd trip points -- are measured once at time zero across
the three ATE temperature corners.  We model 600 channels per corner in
five families whose responses are physically motivated views of the
latent process state:

========== ===== ==========================================================
family     count response
========== ===== ==========================================================
iddq        150  log-normal quiescent current: ``I0 * leak * exp(-vth/nVt)``
leakage     150  per-block subthreshold leakage, like iddq with its own
                 vector weighting and a weak defect coupling on a few
                 channels
trip_idd    100  active supply current at a trip condition: linear in
                 Vth / channel length with vector-specific weights
vdd_trip    100  lowest functional Vdd of an analog block, quantised to
                 the 5 mV ATE step
misc        100  process-insensitive channels (continuity, shorts, dead
                 codes): pure measurement noise -- realistic ballast the
                 feature selection must reject
========== ===== ==========================================================

Channel responses are deliberately *noisier* views of the process state
than the on-chip monitors (single-shot analog measurements vs averaged
on-die sensors), which is what gives the paper's Table IV its on-chip
advantage.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.models.base import check_random_state
from repro.silicon.constants import (
    N_PARAMETRIC_TESTS,
    TEMPERATURES_C,
    THERMAL_VOLTAGE_V,
)
from repro.silicon.defects import DefectPopulation
from repro.silicon.process import ProcessSample

__all__ = ["ParametricTestBank"]

_FAMILY_SIZES = {
    "iddq": 150,
    "leakage": 150,
    "trip_idd": 100,
    "vdd_trip": 100,
    "misc": 100,
}
_CHANNELS_PER_CORNER = sum(_FAMILY_SIZES.values())  # 600
if _CHANNELS_PER_CORNER * len(TEMPERATURES_C) != N_PARAMETRIC_TESTS:
    # Import-time consistency check: unlike an assert this survives
    # `python -O`, so a drifted family table can never silently ship
    # measurement blocks that disagree with the Table-II geometry.
    raise ValueError(
        f"parametric family sizes are inconsistent with Table II: "
        f"{_CHANNELS_PER_CORNER} channels x {len(TEMPERATURES_C)} corners "
        f"!= {N_PARAMETRIC_TESTS}"
    )


class ParametricTestBank:
    """Generator of the full 1800-column parametric block.

    Parameters
    ----------
    relative_noise:
        Multiplicative measurement noise on current-type channels.
    vdd_trip_step_v:
        ATE voltage resolution for the vdd_trip family (V).
    random_state:
        Seed for the per-channel response coefficients (the "test program"
        is fixed at construction; per-reading noise uses the rng passed to
        :meth:`measure`).
    """

    def __init__(
        self,
        relative_noise: float = 0.04,
        vdd_trip_step_v: float = 0.005,
        random_state: Optional[int] = None,
    ) -> None:
        if relative_noise < 0:
            raise ValueError(f"relative_noise must be >= 0, got {relative_noise}")
        if vdd_trip_step_v <= 0:
            raise ValueError(f"vdd_trip_step_v must be positive, got {vdd_trip_step_v}")
        self.relative_noise = relative_noise
        self.vdd_trip_step_v = vdd_trip_step_v
        self.random_state = random_state

        rng = check_random_state(random_state)
        # Per-channel response coefficients, shared across corners so a
        # channel is "the same test" at each temperature.
        self._iddq_scale = np.exp(rng.normal(np.log(2e-3), 0.8, _FAMILY_SIZES["iddq"]))
        self._iddq_vth_weight = rng.uniform(0.6, 1.4, _FAMILY_SIZES["iddq"])
        self._leak_scale = np.exp(
            rng.normal(np.log(4e-4), 1.0, _FAMILY_SIZES["leakage"])
        )
        self._leak_vth_weight = rng.uniform(0.5, 1.5, _FAMILY_SIZES["leakage"])
        # A few leakage vectors cover defect-prone blocks.
        self._leak_defect_weight = np.where(
            rng.random(_FAMILY_SIZES["leakage"]) < 0.08,
            rng.uniform(2.0, 6.0, _FAMILY_SIZES["leakage"]),
            0.0,
        )
        self._trip_base = rng.uniform(5e-3, 60e-3, _FAMILY_SIZES["trip_idd"])
        self._trip_vth_weight = rng.normal(0.0, 1.0, _FAMILY_SIZES["trip_idd"])
        self._trip_leff_weight = rng.normal(0.0, 1.0, _FAMILY_SIZES["trip_idd"])
        self._vddtrip_offset = rng.uniform(0.45, 0.65, _FAMILY_SIZES["vdd_trip"])
        self._vddtrip_vth_weight = rng.uniform(0.5, 1.3, _FAMILY_SIZES["vdd_trip"])
        self._misc_scale = np.exp(rng.normal(0.0, 1.0, _FAMILY_SIZES["misc"]))

    # -- metadata --------------------------------------------------------------
    @property
    def n_channels(self) -> int:
        return N_PARAMETRIC_TESTS

    def channel_names(self) -> List[str]:
        """Stable channel names, corner-major then family-major."""
        names: List[str] = []
        for temperature in TEMPERATURES_C:
            tag = f"{int(temperature)}C"
            for family, count in _FAMILY_SIZES.items():
                names.extend(f"par_{family}_{tag}_{i:03d}" for i in range(count))
        return names

    def channel_temperatures(self) -> np.ndarray:
        """ATE corner of every channel, aligned with :meth:`channel_names`."""
        return np.repeat(np.asarray(TEMPERATURES_C), _CHANNELS_PER_CORNER)

    # -- measurement -------------------------------------------------------------
    def measure(
        self, process: ProcessSample, defects: DefectPopulation, rng
    ) -> np.ndarray:
        """Full time-zero parametric test: (n_chips, 1800).

        Current-type families are returned in log10 space, the standard
        transform applied to IDDQ/leakage data before ML modelling (raw
        currents span decades and would drown Pearson correlations).
        """
        rng = check_random_state(rng)
        corners = [
            self._measure_corner(process, defects, temperature, rng)
            for temperature in TEMPERATURES_C
        ]
        return np.hstack(corners)

    def _measure_corner(
        self,
        process: ProcessSample,
        defects: DefectPopulation,
        temperature: float,
        rng,
    ) -> np.ndarray:
        n = process.n_chips
        vt = THERMAL_VOLTAGE_V[temperature]
        vth = process.vth_shift[:, None]
        leff = process.leff_shift[:, None]
        leak = process.leakage_factor[:, None]
        severity = defects.severity[:, None]

        def noisy(values: np.ndarray) -> np.ndarray:
            return values * (
                1.0 + rng.normal(0.0, self.relative_noise, size=values.shape)
            )

        # Subthreshold currents shrink exponentially with Vth; hotter
        # corners have a larger thermal voltage (weaker Vth dependence,
        # larger magnitude).
        hot_boost = np.exp((temperature - 25.0) / 120.0)
        iddq = noisy(
            self._iddq_scale[None, :]
            * leak
            * hot_boost
            * np.exp(-self._iddq_vth_weight[None, :] * vth / (1.5 * vt))
        )
        leakage = noisy(
            self._leak_scale[None, :]
            * leak
            * hot_boost
            * np.exp(-self._leak_vth_weight[None, :] * vth / (1.5 * vt))
            * (1.0 + self._leak_defect_weight[None, :] * severity / 0.02 * 0.3)
        )
        trip = noisy(
            self._trip_base[None, :]
            * (
                1.0
                + self._trip_vth_weight[None, :] * vth / 0.1
                + self._trip_leff_weight[None, :] * leff * 0.03
            )
        )
        # Cold raises every analog block's trip voltage.
        corner_shift = {-45.0: 0.05, 25.0: 0.0, 125.0: 0.02}[temperature]
        vdd_trip_raw = (
            self._vddtrip_offset[None, :]
            + corner_shift
            + self._vddtrip_vth_weight[None, :] * vth
            + rng.normal(0.0, 0.004, size=(n, _FAMILY_SIZES["vdd_trip"]))
        )
        vdd_trip = (
            np.round(vdd_trip_raw / self.vdd_trip_step_v) * self.vdd_trip_step_v
        )
        misc = self._misc_scale[None, :] * (
            1.0 + rng.normal(0.0, 1.0, size=(n, _FAMILY_SIZES["misc"]))
        )

        return np.hstack(
            [np.log10(iddq), np.log10(leakage), trip, vdd_trip, misc]
        )
