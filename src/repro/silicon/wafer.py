"""Wafer-level structure: die placement and cross-wafer systematics.

The base :class:`~repro.silicon.process.ProcessVariationModel` treats
chips as iid.  Real lots have an extra layer: chips come from a handful
of wafers, each wafer carries its own mean shift (lot/wafer-level
process drift), and within a wafer the classic radial "bullseye"
signature makes edge dies systematically different from centre dies.
This module adds that hierarchy as a *composable* overlay:

* :class:`WaferLayout` -- deterministic die placement on a circular
  wafer (gross dies inside the usable radius, serpentine order, the way
  a stepper fills a wafer),
* :class:`WaferModel` -- samples per-wafer offsets and the radial
  signature, yielding a per-chip Vth overlay plus (wafer id, die x/y)
  provenance.

The overlay feeds two consumers: the dataset generator can add it to
``vth_shift`` for more realistic population structure, and the Mondrian
conformal benchmark uses wafer/zone ids as its grouping taxonomy (the
automotive use case: per-wafer-zone coverage guarantees).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.models.base import check_random_state

__all__ = ["WaferLayout", "WaferModel", "WaferProvenance"]


class WaferLayout:
    """Die placement on a circular wafer.

    Parameters
    ----------
    dies_per_row:
        Grid resolution across the wafer diameter; the usable dies are
        the grid cells whose centre lies inside ``usable_fraction`` of
        the radius.
    usable_fraction:
        Fraction of the wafer radius holding printable dies (edge
        exclusion).
    """

    def __init__(self, dies_per_row: int = 14, usable_fraction: float = 0.95) -> None:
        if dies_per_row < 2:
            raise ValueError(f"dies_per_row must be >= 2, got {dies_per_row}")
        if not 0.0 < usable_fraction <= 1.0:
            raise ValueError(
                f"usable_fraction must be in (0, 1], got {usable_fraction}"
            )
        self.dies_per_row = dies_per_row
        self.usable_fraction = usable_fraction
        self._coordinates = self._build()

    def _build(self) -> np.ndarray:
        # Cell centres in normalised wafer coordinates [-1, 1].
        centres = (np.arange(self.dies_per_row) + 0.5) / self.dies_per_row * 2.0 - 1.0
        dies = []
        for row, y in enumerate(centres):
            row_dies = [
                (x, y)
                for x in centres
                if np.hypot(x, y) <= self.usable_fraction
            ]
            # Serpentine stepper order: alternate rows reverse direction.
            if row % 2 == 1:
                row_dies.reverse()
            dies.extend(row_dies)
        if not dies:
            raise ValueError("layout has no usable dies; increase dies_per_row")
        return np.asarray(dies, dtype=np.float64)

    @property
    def dies_per_wafer(self) -> int:
        return int(self._coordinates.shape[0])

    def coordinates(self) -> np.ndarray:
        """(dies_per_wafer, 2) normalised die-centre coordinates."""
        return self._coordinates.copy()

    def radius(self) -> np.ndarray:
        """Normalised distance of every die from the wafer centre."""
        return np.hypot(self._coordinates[:, 0], self._coordinates[:, 1])

    def zone(self, n_rings: int = 3) -> np.ndarray:
        """Ring-zone index per die: 0 = centre ... n_rings-1 = edge.

        Rings are equal-width in radius up to ``usable_fraction``; the
        natural grouping taxonomy for per-zone conformal guarantees.
        """
        if n_rings < 1:
            raise ValueError(f"n_rings must be >= 1, got {n_rings}")
        edges = np.linspace(0.0, self.usable_fraction, n_rings + 1)[1:-1]
        return np.searchsorted(edges, self.radius(), side="right")


@dataclass(frozen=True)
class WaferProvenance:
    """Per-chip wafer provenance produced by :class:`WaferModel`."""

    wafer_id: np.ndarray
    """Wafer index per chip."""

    die_xy: np.ndarray
    """(n_chips, 2) normalised die-centre coordinates."""

    vth_overlay_v: np.ndarray
    """Wafer + radial systematic Vth contribution per chip (V)."""

    def zone(self, layout: "WaferLayout", n_rings: int = 3) -> np.ndarray:
        """Ring-zone label per chip, matching ``layout.zone`` semantics."""
        if n_rings < 1:
            raise ValueError(f"n_rings must be >= 1, got {n_rings}")
        radius = np.hypot(self.die_xy[:, 0], self.die_xy[:, 1])
        edges = np.linspace(0.0, layout.usable_fraction, n_rings + 1)[1:-1]
        return np.searchsorted(edges, radius, side="right")


class WaferModel:
    """Sampler for wafer-hierarchy Vth overlays.

    Parameters
    ----------
    layout:
        Die placement; default 14x14 grid, ~140 usable dies.
    wafer_sigma_v:
        Std of per-wafer mean Vth offsets (lot-level drift).
    radial_amplitude_v:
        Mean bullseye amplitude: edge dies shift by about this much
        relative to centre dies (sign varies per wafer).
    radial_sigma_v:
        Wafer-to-wafer spread of the bullseye amplitude.
    """

    def __init__(
        self,
        layout: Optional[WaferLayout] = None,
        wafer_sigma_v: float = 0.004,
        radial_amplitude_v: float = 0.005,
        radial_sigma_v: float = 0.002,
    ) -> None:
        if wafer_sigma_v < 0 or radial_sigma_v < 0:
            raise ValueError("sigma parameters must be >= 0")
        self.layout = layout or WaferLayout()
        self.wafer_sigma_v = wafer_sigma_v
        self.radial_amplitude_v = radial_amplitude_v
        self.radial_sigma_v = radial_sigma_v

    def sample(self, n_chips: int, rng) -> WaferProvenance:
        """Assign ``n_chips`` to wafers in stepper order and draw overlays.

        Chips fill wafer 0 die-by-die, then wafer 1, etc., exactly like a
        test floor receives them; the final wafer may be partial.
        """
        if n_chips < 1:
            raise ValueError(f"n_chips must be >= 1, got {n_chips}")
        rng = check_random_state(rng)
        per_wafer = self.layout.dies_per_wafer
        n_wafers = int(np.ceil(n_chips / per_wafer))

        wafer_offsets = rng.normal(0.0, self.wafer_sigma_v, size=n_wafers)
        radial_amplitudes = rng.normal(
            self.radial_amplitude_v, self.radial_sigma_v, size=n_wafers
        ) * rng.choice((-1.0, 1.0), size=n_wafers)

        die_index = np.arange(n_chips) % per_wafer
        wafer_id = np.arange(n_chips) // per_wafer
        coordinates = self.layout.coordinates()[die_index]
        radius = np.hypot(coordinates[:, 0], coordinates[:, 1])
        normalised = radius / max(self.layout.usable_fraction, 1e-12)
        overlay = wafer_offsets[wafer_id] + radial_amplitudes[wafer_id] * normalised**2
        return WaferProvenance(
            wafer_id=wafer_id,
            die_xy=coordinates,
            vth_overlay_v=overlay,
        )
