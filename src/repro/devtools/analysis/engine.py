"""The analysis engine: project loading, rule dispatch, suppression.

The deep-pass counterpart of :class:`repro.devtools.engine.LintEngine`.
One run parses every file into a :class:`Project`, hands the shared
:class:`ProjectContext` (cached CFGs, call graph) to each enabled
REP2xx/REP3xx rule, then applies the same ``# reprolint:
disable=RULE`` inline suppressions the per-file linter honours.

Files that fail to parse never crash the pass: they surface as
:class:`EngineError` records on the result, which the CLI reports as
``REP000`` engine diagnostics with exit code 2 (an analysis that could
not see the whole program must not pretend the program is clean).
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Type

from repro.devtools.analysis.project import EngineError, Project
from repro.devtools.analysis.rules import (
    ALL_ANALYSIS_RULES,
    AnalysisRule,
    ProjectContext,
)
from repro.devtools.config import LintConfig
from repro.devtools.diagnostics import Diagnostic
from repro.devtools.engine import collect_files

__all__ = ["AnalysisEngine", "AnalysisResult", "analyze_paths"]


@dataclass
class AnalysisResult:
    """Everything one whole-program pass produced."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    errors: List[EngineError] = field(default_factory=list)
    checked_files: int = 0

    @property
    def ok(self) -> bool:
        """No findings and no engine errors."""
        return not self.diagnostics and not self.errors


class AnalysisEngine:
    """Run whole-program rules over a set of files."""

    def __init__(
        self,
        rules: Optional[Sequence[Type[AnalysisRule]]] = None,
        config: Optional[LintConfig] = None,
    ) -> None:
        self.config = config or LintConfig()
        selected = list(rules) if rules is not None else list(ALL_ANALYSIS_RULES)
        self.rules: List[AnalysisRule] = [
            rule() if isinstance(rule, type) else rule
            for rule in selected
            if self.config.analysis.rule_enabled(
                getattr(rule, "rule_id", ""), getattr(rule, "name", "")
            )
        ]

    def analyze_files(self, files: Sequence[str]) -> AnalysisResult:
        """Parse ``files`` into one project and run every enabled rule."""
        project = Project.load(files)
        context = ProjectContext(project)
        findings: List[Diagnostic] = []
        for rule in self.rules:
            findings.extend(rule.check(context))
        findings = [d for d in findings if not self._suppressed(project, d)]
        return AnalysisResult(
            diagnostics=sorted(set(findings), key=Diagnostic.sort_key),
            errors=sorted(project.errors, key=lambda e: (e.path, e.line)),
            checked_files=len(files),
        )

    def _suppressed(self, project: Project, diagnostic: Diagnostic) -> bool:
        module = project.by_path.get(diagnostic.path)
        if module is None:
            return False
        active = module.suppressions.get(diagnostic.line)
        if not active:
            return False
        return bool({"all", diagnostic.rule_id, diagnostic.rule_name} & active)


def analyze_paths(
    paths: Sequence[str],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Type[AnalysisRule]]] = None,
) -> AnalysisResult:
    """Collect files and analyze them; the programmatic entry point.

    The analysis-specific ``exclude`` globs stack on top of the base
    linter excludes, so fixture trees full of deliberately-bad code can
    be kept out of the deep pass without loosening the linter.
    """
    config = config or LintConfig()
    files = collect_files(paths, config)
    extra = config.analysis.exclude
    if extra:
        files = [
            f
            for f in files
            if not any(
                fnmatch.fnmatch(candidate, pattern)
                for candidate in (f, Path(f).as_posix())
                for pattern in extra
            )
        ]
    engine = AnalysisEngine(rules=rules, config=config)
    return engine.analyze_files(files)
