"""End-to-end resilience of the experiment grids (runtime + eval).

The contracts asserted here are the acceptance criteria of the
resilient execution runtime: an interrupted-and-resumed grid is
bit-identical to an uninterrupted one, injected transient faults plus
retries are bit-identical to a clean run, and exhausted failures are
captured as structured records instead of discarding siblings.
"""

from __future__ import annotations

import pytest

from repro.eval.experiments import (
    FailureRecord,
    GridResult,
    run_point_grid,
    run_region_grid,
)
from repro.eval.stress import run_execution_campaign
from repro.robust.faults import TaskCrashFault
from repro.runtime.checkpoint import RunJournal
from repro.runtime.retry import PermanentFault, RetryPolicy, TransientFault

MODELS = ("LR",)
TEMPS = (25.0,)
HOURS = (0, 24)

FAST_RETRIES = RetryPolicy(
    max_attempts=3, backoff_base=0.001, backoff_max=0.01, seed=0
)


@pytest.fixture(scope="module")
def clean_grid(small_lot):
    """The uninterrupted reference grid every resilience test diffs against."""
    return run_point_grid(
        small_lot, MODELS, TEMPS, HOURS, profile=_profile(), seed=0
    )


def _profile():
    from repro.eval.experiments import ExperimentProfile

    return ExperimentProfile.smoke()


class _CountingWrapper:
    """task_wrapper that counts executions, optionally failing chosen cells."""

    def __init__(self, fail_cells=(), error=None):
        self.fail_cells = set(fail_cells)
        self.error = error or PermanentFault("injected permanent failure")
        self.executed = []

    def __call__(self, fn):
        def wrapped(cell):
            self.executed.append(cell)
            if cell in self.fail_cells:
                raise self.error
            return fn(cell)

        return wrapped


class TestGridResultType:
    def test_grid_is_a_dict_in_cell_order(self, clean_grid):
        assert isinstance(clean_grid, dict)
        assert list(clean_grid) == [
            (name, temp, hours)
            for name in MODELS
            for temp in TEMPS
            for hours in HOURS
        ]
        assert clean_grid.ok and clean_grid.failures == ()

    def test_values_identical_to_serial_experiment(self, small_lot, clean_grid):
        from repro.eval.experiments import run_point_experiment

        cell = ("LR", 25.0, 0)
        direct = run_point_experiment(
            small_lot, "LR", 25.0, 0, profile=_profile(), seed=0, n_jobs=1
        )
        assert clean_grid[cell] == direct


class TestCheckpointResume:
    def test_interrupted_grid_resumes_bit_identical(
        self, small_lot, clean_grid, tmp_path
    ):
        journal_path = tmp_path / "grid.jsonl"
        crash_cell = ("LR", 25.0, 24)

        # First run: one cell fails permanently; the other is journaled.
        interrupted = run_point_grid(
            small_lot,
            MODELS,
            TEMPS,
            HOURS,
            profile=_profile(),
            seed=0,
            journal=RunJournal(journal_path),
            task_wrapper=_CountingWrapper(fail_cells={crash_cell}),
            on_error="capture",
        )
        assert crash_cell not in interrupted
        assert len(interrupted) == len(clean_grid) - 1

        # Resume: only the missing cell runs; the result is bit-identical.
        resume_counter = _CountingWrapper()
        resumed = run_point_grid(
            small_lot,
            MODELS,
            TEMPS,
            HOURS,
            profile=_profile(),
            seed=0,
            journal=RunJournal(journal_path),
            task_wrapper=resume_counter,
        )
        assert resume_counter.executed == [crash_cell]
        assert dict(resumed) == dict(clean_grid)
        assert list(resumed) == list(clean_grid)

    def test_journal_not_reused_across_configurations(
        self, small_lot, tmp_path
    ):
        journal_path = tmp_path / "grid.jsonl"
        run_point_grid(
            small_lot,
            MODELS,
            TEMPS,
            (0,),
            profile=_profile(),
            seed=0,
            journal=RunJournal(journal_path),
        )
        # A different seed fingerprints differently: nothing is skipped.
        counter = _CountingWrapper()
        run_point_grid(
            small_lot,
            MODELS,
            TEMPS,
            (0,),
            profile=_profile(),
            seed=1,
            journal=RunJournal(journal_path),
            task_wrapper=counter,
        )
        assert counter.executed == [("LR", 25.0, 0)]

    def test_completed_journal_runs_nothing(self, small_lot, clean_grid, tmp_path):
        journal_path = tmp_path / "grid.jsonl"
        run_point_grid(
            small_lot,
            MODELS,
            TEMPS,
            HOURS,
            profile=_profile(),
            seed=0,
            journal=RunJournal(journal_path),
        )
        counter = _CountingWrapper()
        replayed = run_point_grid(
            small_lot,
            MODELS,
            TEMPS,
            HOURS,
            profile=_profile(),
            seed=0,
            journal=RunJournal(journal_path),
            task_wrapper=counter,
        )
        assert counter.executed == []
        assert dict(replayed) == dict(clean_grid)

    def test_region_grid_resumes_bit_identical(self, small_lot, tmp_path):
        journal_path = tmp_path / "region.jsonl"
        kwargs = dict(profile=_profile(), seed=0, alpha=0.2)
        clean = run_region_grid(small_lot, ("CQR LR",), TEMPS, (0,), **kwargs)
        run_region_grid(
            small_lot,
            ("CQR LR",),
            TEMPS,
            (0,),
            journal=RunJournal(journal_path),
            **kwargs,
        )
        counter = _CountingWrapper()
        resumed = run_region_grid(
            small_lot,
            ("CQR LR",),
            TEMPS,
            (0,),
            journal=RunJournal(journal_path),
            task_wrapper=counter,
            **kwargs,
        )
        assert counter.executed == []
        assert dict(resumed) == dict(clean)


class TestFaultRecovery:
    def test_transient_faults_plus_retries_bit_identical(
        self, small_lot, clean_grid
    ):
        fault = TaskCrashFault(fraction=1.0, n_failures=2, seed=0)
        recovered = run_point_grid(
            small_lot,
            MODELS,
            TEMPS,
            HOURS,
            profile=_profile(),
            seed=0,
            retry_policy=FAST_RETRIES,
            task_wrapper=fault.wrap,
        )
        assert dict(recovered) == dict(clean_grid)
        assert recovered.n_retried == len(clean_grid)
        assert all(count == 3 for count in recovered.attempts.values())

    def test_exhausted_retries_raise_by_default(self, small_lot):
        def always_crash(fn):
            def wrapped(cell):
                raise TransientFault(f"injected crash for {cell!r}")

            return wrapped

        with pytest.raises(TransientFault, match="injected crash"):
            run_point_grid(
                small_lot,
                MODELS,
                TEMPS,
                (0,),
                profile=_profile(),
                seed=0,
                retry_policy=FAST_RETRIES,
                task_wrapper=always_crash,
            )

    def test_capture_mode_returns_structured_failures(
        self, small_lot, clean_grid
    ):
        crash_cell = ("LR", 25.0, 24)
        captured = run_point_grid(
            small_lot,
            MODELS,
            TEMPS,
            HOURS,
            profile=_profile(),
            seed=0,
            retry_policy=FAST_RETRIES,
            task_wrapper=_CountingWrapper(fail_cells={crash_cell}),
            on_error="capture",
        )
        assert not captured.ok
        assert len(captured.failures) == 1
        failure = captured.failures[0]
        assert isinstance(failure, FailureRecord)
        assert failure.key == crash_cell
        assert failure.error_type == "PermanentFault"
        assert failure.attempts == 1  # permanent faults are never retried
        assert not failure.timed_out
        # Completed siblings are kept, bit-identical to the clean run.
        assert captured[("LR", 25.0, 0)] == clean_grid[("LR", 25.0, 0)]

    def test_bad_on_error_rejected(self, small_lot):
        with pytest.raises(ValueError, match="on_error"):
            run_point_grid(
                small_lot, MODELS, TEMPS, (0,), profile=_profile(), on_error="ignore"
            )


class TestExecutionCampaign:
    def test_campaign_recovers_every_scenario(self, small_lot):
        report = run_execution_campaign(
            small_lot,
            model_names=MODELS,
            temperatures=TEMPS,
            read_points=(0,),
            seed=0,
            n_jobs=2,
            timeout=2.0,
        )
        assert report.all_recovered(), report.to_table()
        assert report.all_identical(), report.to_table()
        assert {r.scenario for r in report.results} == {
            "worker_crash",
            "worker_crash_repeat",
            "worker_hang",
        }
        crash = next(r for r in report.results if r.scenario == "worker_crash")
        assert crash.n_retried >= 1  # the injected crash really happened

    def test_report_renders_a_table(self, small_lot):
        report = run_execution_campaign(
            small_lot,
            model_names=MODELS,
            temperatures=TEMPS,
            read_points=(0,),
            scenarios=(
                ("crash", TaskCrashFault(fraction=1.0, n_failures=1, seed=3)),
            ),
            seed=0,
            n_jobs=1,
            timeout=2.0,
        )
        table = report.to_table()
        assert "Scenario" in table and "crash" in table
