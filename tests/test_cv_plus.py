"""Tests for CV+ and Jackknife+ conformal intervals."""

import numpy as np
import pytest

from repro.core.cv_plus import CVPlusRegressor, JackknifePlusRegressor
from repro.models.linear import LinearRegression


class TestCVPlus:
    def test_marginal_coverage_monte_carlo(self):
        rng = np.random.default_rng(3)
        coverages = []
        for _ in range(25):
            X = rng.normal(size=(140, 3))
            y = X[:, 0] + rng.normal(scale=0.5, size=140)
            model = CVPlusRegressor(
                LinearRegression(),
                alpha=0.2,
                n_folds=5,
                random_state=int(rng.integers(1e6)),
            ).fit(X[:100], y[:100])
            coverages.append(model.predict_interval(X[100:]).coverage(y[100:]))
        assert np.mean(coverages) >= 0.8 - 0.03

    def test_residuals_are_out_of_fold(self, rng):
        X = rng.normal(size=(60, 2))
        y = X[:, 0] + rng.normal(scale=0.3, size=60)
        model = CVPlusRegressor(
            LinearRegression(), n_folds=4, random_state=0
        ).fit(X, y)
        # Check residual i matches fold model that did NOT see sample i.
        for i in range(0, 60, 13):
            k = model.fold_of_sample_[i]
            expected = abs(y[i] - model.fold_models_[k].predict(X[i : i + 1])[0])
            assert model.residuals_[i] == pytest.approx(expected)

    def test_prediction_is_fold_mean(self, rng):
        X = rng.normal(size=(40, 2))
        y = rng.normal(size=40)
        model = CVPlusRegressor(LinearRegression(), n_folds=4, random_state=0).fit(X, y)
        stacked = np.stack([m.predict(X) for m in model.fold_models_])
        np.testing.assert_allclose(model.predict(X), stacked.mean(axis=0))

    def test_intervals_ordered(self, rng):
        X = rng.normal(size=(50, 2))
        y = rng.normal(size=50)
        model = CVPlusRegressor(LinearRegression(), n_folds=5, random_state=0).fit(X, y)
        intervals = model.predict_interval(X)
        assert np.all(intervals.lower <= intervals.upper)

    def test_rejects_more_folds_than_samples(self, rng):
        X = rng.normal(size=(4, 2))
        model = CVPlusRegressor(LinearRegression(), n_folds=10)
        with pytest.raises(ValueError, match="exceeds"):
            model.fit(X, rng.normal(size=4))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CVPlusRegressor(LinearRegression(), alpha=0.0)
        with pytest.raises(ValueError):
            CVPlusRegressor(LinearRegression(), n_folds=1)


class TestJackknifePlus:
    def test_uses_leave_one_out_folds(self, rng):
        X = rng.normal(size=(25, 2))
        y = rng.normal(size=25)
        model = JackknifePlusRegressor(LinearRegression(), random_state=0).fit(X, y)
        assert len(model.fold_models_) == 25

    def test_coverage_on_fresh_data(self, rng):
        X = rng.normal(size=(220, 2))
        y = X[:, 0] + rng.normal(scale=0.4, size=220)
        model = JackknifePlusRegressor(
            LinearRegression(), alpha=0.1, random_state=0
        ).fit(X[:60], y[:60])
        coverage = model.predict_interval(X[60:]).coverage(y[60:])
        assert coverage >= 0.8
