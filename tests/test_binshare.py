"""Shared-binning cache, process-grid engine, shm transport, and perf gate.

The tentpole contract under test: fitting through the content-addressed
binning cache -- one ``FeatureBinner`` fit per distinct training matrix,
shared across the CQR lo/hi pair, the CV folds, and the grid cells --
changes **no number anywhere**, and the process-backend grid that ships
the cached bin codes through shared memory is bit-identical to the
serial thread path.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
from pathlib import Path

import numpy as np
import pytest

from repro.eval.experiments import (
    ExperimentProfile,
    FeatureSet,
    _grid_bin_subsets,
    run_region_experiment,
    run_region_grid,
)
from repro.models.binning import (
    BinnedDataset,
    FeatureBinner,
    bin_cache_stats,
    clear_bin_cache,
    dataset_digest,
    disable_bin_cache,
    quantile_bin_edges,
    seed_bin_cache,
    shared_binned_dataset,
)
from repro.models.gbm import GradientBoostingRegressor
from repro.models.oblivious import ObliviousBoostingRegressor
from repro.models.quantile import QuantileBandRegressor
from repro.perf import gate
from repro.perf.bench import BenchRecorder, _git_sha_fallback, peak_rss_mb
from repro.perf.shm import ArraySpec, SharedArrayBundle, attach_array, detach_all

SMOKE = ExperimentProfile.smoke()


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Every test starts and ends with an empty binning cache."""
    clear_bin_cache()
    yield
    clear_bin_cache()


def _training_data(rng, n=120, f=8):
    X = rng.normal(size=(n, f))
    X[:, 0] = np.round(X[:, 0], 1)  # heavy ties: midpoint path
    X[:, 1] = 3.25  # constant: no edges
    y = X[:, 2] + 0.1 * rng.normal(size=n)
    return X, y


class TestVectorizedBinnerParity:
    """The vectorised fit is bit-identical to the per-column oracle."""

    @pytest.mark.parametrize("max_bins", [2, 8, 32])
    def test_edges_match_oracle(self, rng, max_bins):
        X, _ = _training_data(rng)
        fitted = FeatureBinner(max_bins).fit(X)
        for j in range(X.shape[1]):
            oracle = quantile_bin_edges(X[:, j], max_bins)
            np.testing.assert_array_equal(fitted.edges_[j], oracle)

    def test_from_edges_roundtrip(self, rng):
        X, _ = _training_data(rng)
        fitted = FeatureBinner(16).fit(X)
        rebuilt = FeatureBinner.from_edges(16, fitted.edges_)
        np.testing.assert_array_equal(rebuilt.transform(X), fitted.transform(X))
        assert rebuilt.n_bins == fitted.n_bins


class TestCacheSemantics:
    def test_equal_content_shares_one_build(self, rng):
        X, _ = _training_data(rng)
        first = shared_binned_dataset(X, 32)
        second = shared_binned_dataset(X.copy(), 32)  # distinct buffer
        assert second is first
        stats = bin_cache_stats()
        assert stats["builds"] == 1
        assert stats["hits"] == 1

    def test_max_bins_is_part_of_the_key(self, rng):
        X, _ = _training_data(rng)
        assert shared_binned_dataset(X, 16) is not shared_binned_dataset(X, 32)
        assert bin_cache_stats()["builds"] == 2
        assert dataset_digest(X, 16) != dataset_digest(X, 32)

    def test_disable_bypasses_entirely(self, rng):
        X, _ = _training_data(rng)
        with disable_bin_cache():
            first = shared_binned_dataset(X, 32)
            second = shared_binned_dataset(X, 32)
        assert first is not second
        stats = bin_cache_stats()
        assert stats == {"hits": 0, "builds": 0, "seeded": 0, "entries": 0}

    def test_seeded_entry_is_returned_verbatim(self, rng):
        X, _ = _training_data(rng)
        built = BinnedDataset.from_matrix(X, 32)
        seed_bin_cache({dataset_digest(X, 32): built})
        assert shared_binned_dataset(X, 32) is built
        stats = bin_cache_stats()
        assert stats["seeded"] == 1
        assert stats["builds"] == 0

    def test_seeding_rejects_foreign_values(self):
        with pytest.raises(TypeError):
            seed_bin_cache({"key": np.zeros((2, 2))})

    def test_lru_evicts_oldest(self, rng):
        matrices = [rng.normal(size=(3, 2)) for _ in range(70)]
        for X in matrices:
            shared_binned_dataset(X, 4)
        stats = bin_cache_stats()
        assert stats["entries"] == 64
        # The first matrix was evicted: asking again rebuilds.
        shared_binned_dataset(matrices[0], 4)
        assert bin_cache_stats()["builds"] == 71

    def test_clear_resets_counters(self, rng):
        X, _ = _training_data(rng)
        shared_binned_dataset(X, 32)
        clear_bin_cache()
        assert bin_cache_stats() == {
            "hits": 0, "builds": 0, "seeded": 0, "entries": 0,
        }


class TestCachedFitsAreBitIdentical:
    """Cache on vs cache off: every prediction float is unchanged."""

    def test_gbm_hist(self, rng):
        X, y = _training_data(rng)
        params = dict(
            n_estimators=12,
            tree_method="hist",
            max_bins=16,
            subsample=0.8,
            colsample_bytree=0.8,
            random_state=5,
        )
        cached = GradientBoostingRegressor(**params).fit(X, y)
        with disable_bin_cache():
            plain = GradientBoostingRegressor(**params).fit(X, y)
        np.testing.assert_array_equal(cached.predict(X), plain.predict(X))

    def test_oblivious_with_explicit_seam(self, rng):
        X, y = _training_data(rng)
        params = dict(n_estimators=10, max_bins=16, random_state=5)
        dataset = shared_binned_dataset(X, 16)
        seamed = ObliviousBoostingRegressor(**params).fit(X, y, binned=dataset)
        with disable_bin_cache():
            plain = ObliviousBoostingRegressor(**params).fit(X, y)
        np.testing.assert_array_equal(seamed.predict(X), plain.predict(X))

    def test_oblivious_rejects_mismatched_seam(self, rng):
        X, y = _training_data(rng)
        wrong = shared_binned_dataset(X[: len(X) // 2], 16)
        with pytest.raises(ValueError):
            ObliviousBoostingRegressor(max_bins=16).fit(X, y, binned=wrong)

    def test_quantile_pair_shares_one_binning(self, rng):
        X, y = _training_data(rng)

        def template():
            return GradientBoostingRegressor(
                n_estimators=8,
                tree_method="hist",
                max_bins=16,
                quantile=0.5,
                random_state=5,
            )

        shared_band = QuantileBandRegressor(template(), alpha=0.2).fit(X, y)
        # Both members binned the same matrix: one build, one-plus hits.
        stats = bin_cache_stats()
        assert stats["builds"] == 1
        assert stats["hits"] >= 1
        with disable_bin_cache():
            plain_band = QuantileBandRegressor(template(), alpha=0.2).fit(X, y)
        shared_lo, shared_hi = shared_band.predict_interval(X)
        plain_lo, plain_hi = plain_band.predict_interval(X)
        np.testing.assert_array_equal(shared_lo, plain_lo)
        np.testing.assert_array_equal(shared_hi, plain_hi)

    def test_region_experiment_folds(self, lot):
        kwargs = dict(profile=SMOKE, seed=3, n_jobs=1)
        cached = run_region_experiment(lot, "CQR XGBoost", 25.0, 0, **kwargs)
        assert bin_cache_stats()["hits"] > 0
        with disable_bin_cache():
            plain = run_region_experiment(lot, "CQR XGBoost", 25.0, 0, **kwargs)
        assert cached.coverage_per_fold == plain.coverage_per_fold
        assert cached.width_per_fold == plain.width_per_fold


def _region_fingerprint(grid):
    return tuple(
        (cell, result.coverage_per_fold, result.width_per_fold)
        for cell, result in grid.items()
    )


GRID_ARGS = dict(profile=SMOKE, seed=3)
GRID_METHODS = ["QR XGBoost", "CQR XGBoost"]


class TestGridBinsOnce:
    def test_builds_equal_distinct_subsets(self, lot):
        serial = run_region_grid(
            lot, GRID_METHODS, [25.0], [0], n_jobs=1, **GRID_ARGS
        )
        stats = bin_cache_stats()
        expected = _grid_bin_subsets(
            lot,
            "region",
            GRID_METHODS,
            [0],
            FeatureSet.BOTH,
            SMOKE,
            3,
            calibration_fraction=0.25,
        )
        # Binning ran exactly once per distinct training matrix; every
        # further fit was a cache hit.
        assert stats["builds"] == len(expected)
        assert stats["hits"] > 0
        # A second identical grid re-uses everything: zero new builds.
        again = run_region_grid(
            lot, GRID_METHODS, [25.0], [0], n_jobs=1, **GRID_ARGS
        )
        assert bin_cache_stats()["builds"] == stats["builds"]
        assert _region_fingerprint(again) == _region_fingerprint(serial)


class TestProcessGrid:
    def test_process_matches_serial_bitwise(self, lot):
        serial = run_region_grid(
            lot, GRID_METHODS, [25.0], [0], n_jobs=1, backend="thread", **GRID_ARGS
        )
        clear_bin_cache()
        process = run_region_grid(
            lot, GRID_METHODS, [25.0], [0], n_jobs=2, backend="process", **GRID_ARGS
        )
        assert _region_fingerprint(process) == _region_fingerprint(serial)

    def test_process_rejects_task_wrapper(self, lot):
        with pytest.raises(ValueError, match="backend='thread'"):
            run_region_grid(
                lot,
                GRID_METHODS[:1],
                [25.0],
                [0],
                n_jobs=2,
                backend="process",
                task_wrapper=lambda fn: fn,
                **GRID_ARGS,
            )

    def test_no_segments_leak(self, lot):
        run_region_grid(
            lot, GRID_METHODS[:1], [25.0], [0], n_jobs=2, backend="process",
            **GRID_ARGS,
        )
        if os.path.isdir("/dev/shm"):
            assert not [
                name for name in os.listdir("/dev/shm") if name.startswith("psm_")
            ]


def _attach_and_die(spec):
    """Worker body: attach the segment, then die without any cleanup."""
    attach_array(spec)
    os.kill(os.getpid(), signal.SIGKILL)


def _spawn_probe(spec, queue):
    """Spawn-context worker: attach and report the array checksum."""
    view = attach_array(spec)
    queue.put(float(view.sum()))
    detach_all()


class TestSharedMemoryTransport:
    def test_roundtrip_and_readonly(self, rng):
        payload = rng.normal(size=(17, 5))
        with SharedArrayBundle() as bundle:
            spec = bundle.share("codes", payload)
            view = attach_array(spec)
            np.testing.assert_array_equal(view, payload)
            with pytest.raises(ValueError):
                view[0, 0] = 1.0
            # Re-attach returns a view onto the same mapping.
            again = attach_array(spec)
            np.testing.assert_array_equal(again, payload)
            detach_all()
        assert bundle.specs() == {}

    def test_duplicate_key_rejected(self, rng):
        with SharedArrayBundle() as bundle:
            bundle.share("codes", rng.normal(size=(2, 2)))
            with pytest.raises(ValueError):
                bundle.share("codes", rng.normal(size=(2, 2)))

    def test_close_is_idempotent(self, rng):
        bundle = SharedArrayBundle()
        bundle.share("codes", rng.normal(size=(2, 2)))
        bundle.close()
        bundle.close()

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="POSIX shm filesystem required"
    )
    def test_sigkilled_worker_leaks_nothing(self, rng):
        payload = rng.normal(size=(32, 4))
        context = multiprocessing.get_context("fork")
        with SharedArrayBundle() as bundle:
            spec = bundle.share("codes", payload)
            worker = context.Process(target=_attach_and_die, args=(spec,))
            worker.start()
            worker.join(timeout=30)
            assert worker.exitcode == -signal.SIGKILL
        assert not Path("/dev/shm", spec.name).exists()

    def test_spawn_context_attach(self, rng):
        payload = rng.normal(size=(8, 3))
        context = multiprocessing.get_context("spawn")
        with SharedArrayBundle() as bundle:
            spec = bundle.share("codes", payload)
            queue = context.Queue()
            worker = context.Process(target=_spawn_probe, args=(spec, queue))
            worker.start()
            checksum = queue.get(timeout=60)
            worker.join(timeout=60)
            assert worker.exitcode == 0
        assert checksum == float(payload.sum())


def _report(profile="smoke", n_jobs=4, **walls):
    return {
        "schema_version": 1,
        "benchmark": "training",
        "profile": profile,
        "n_jobs": n_jobs,
        "git_sha": None,
        "timings": {
            name: {"wall_s": wall, "repeats": 1} for name, wall in walls.items()
        },
        "speedups": {},
        "checks": {},
    }


class TestRegressionGate:
    def test_flags_past_threshold(self):
        baseline = _report(table3_grid_hist_process=10.0, fit_gbm=0.001)
        current = _report(table3_grid_hist_process=13.0, fit_gbm=0.002)
        result = gate.compare_reports(
            baseline, current, threshold=1.15, stages=["table3_grid"]
        )
        assert result.skipped is None
        assert list(result.flagged) == ["table3_grid_hist_process"]
        assert result.flagged["table3_grid_hist_process"] == (10.0, 13.0)
        assert result.exit_code == gate.EXIT_REGRESSED
        # The micro-stage doubled but is outside the gated prefix.
        ungated = gate.compare_reports(baseline, current, threshold=1.15)
        assert "fit_gbm" in ungated.flagged

    def test_within_threshold_passes(self):
        baseline = _report(table3_grid_hist_process=10.0)
        current = _report(table3_grid_hist_process=11.0)
        result = gate.compare_reports(baseline, current, threshold=1.15)
        assert result.flagged == {}
        assert result.gated == ("table3_grid_hist_process",)
        assert result.exit_code == gate.EXIT_OK

    @pytest.mark.parametrize(
        "kwargs", [dict(profile="fast"), dict(n_jobs=1)]
    )
    def test_incomparable_reports_skip(self, kwargs):
        baseline = _report(table3_grid_hist_process=10.0)
        current = _report(table3_grid_hist_process=99.0, **kwargs)
        result = gate.compare_reports(baseline, current, threshold=1.15)
        assert result.skipped is not None
        assert result.exit_code == gate.EXIT_OK

    def test_cli_end_to_end(self, tmp_path, capsys):
        base_path = tmp_path / "baseline.json"
        cur_path = tmp_path / "current.json"
        base_path.write_text(json.dumps(_report(table3_grid_hist_process=10.0)))
        cur_path.write_text(json.dumps(_report(table3_grid_hist_process=20.0)))
        argv = [str(base_path), str(cur_path), "--stages", "table3_grid"]
        assert gate.main(argv + ["--threshold", "1.15"]) == gate.EXIT_REGRESSED
        assert gate.main(argv + ["--threshold", "2.5"]) == gate.EXIT_OK
        assert "table3_grid_hist_process" in capsys.readouterr().out

    def test_cli_error_paths(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        present = tmp_path / "ok.json"
        present.write_text(json.dumps(_report(x=1.0)))
        assert gate.main([missing, str(present)]) == gate.EXIT_ERROR
        torn = tmp_path / "torn.json"
        torn.write_text('{"timings": {')
        assert gate.main([str(torn), str(present)]) == gate.EXIT_ERROR
        assert (
            gate.main([str(present), str(present), "--threshold", "0.9"])
            == gate.EXIT_ERROR
        )
        capsys.readouterr()

    def test_cli_no_common_stages(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(_report(alpha_stage=1.0)))
        b.write_text(json.dumps(_report(beta_stage=1.0)))
        assert gate.main([str(a), str(b)]) == gate.EXIT_OK
        assert "nothing gated" in capsys.readouterr().out


class TestBenchProvenance:
    def test_git_sha_fallback_resolves_head(self, monkeypatch):
        monkeypatch.chdir(Path(__file__).resolve().parents[1])
        sha = _git_sha_fallback()
        assert sha is not None
        assert len(sha) == 40
        assert set(sha) <= set("0123456789abcdef")

    def test_recorder_prefers_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "deadbeef")
        recorder = BenchRecorder("training", "smoke")
        assert recorder.git_sha == "deadbeef"

    def test_recorder_falls_back_to_checkout(self, monkeypatch):
        monkeypatch.delenv("REPRO_GIT_SHA", raising=False)
        monkeypatch.chdir(Path(__file__).resolve().parents[1])
        recorder = BenchRecorder("training", "smoke")
        assert recorder.git_sha is not None
        assert len(recorder.git_sha) == 40

    def test_explicit_sha_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_GIT_SHA", "deadbeef")
        assert BenchRecorder("training", "smoke", git_sha="abc").git_sha == "abc"

    def test_peak_rss_is_positive(self):
        rss = peak_rss_mb()
        assert rss is not None
        assert rss > 0
