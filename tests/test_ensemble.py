"""Tests for the deep-ensemble UQ baseline."""

import numpy as np
import pytest

from repro.models.ensemble import DeepEnsembleRegressor
from repro.models.linear import LinearRegression
from repro.models.nn import MLPRegressor


@pytest.fixture()
def data(rng):
    X = rng.normal(size=(120, 2))
    y = X[:, 0] + rng.normal(scale=0.2, size=120)
    return X, y


def _fast_template():
    return MLPRegressor(epochs=80, random_state=0)


class TestDeepEnsemble:
    def test_members_have_distinct_seeds(self, data):
        X, y = data
        ensemble = DeepEnsembleRegressor(_fast_template(), n_members=3, random_state=0)
        ensemble.fit(X, y)
        seeds = {member.random_state for member in ensemble.members_}
        assert len(seeds) == 3

    def test_mean_prediction_reasonable(self, data):
        X, y = data
        ensemble = DeepEnsembleRegressor(
            _fast_template(), n_members=3, random_state=0
        ).fit(X, y)
        assert ensemble.score(X, y) > 0.8

    def test_std_positive_with_noise_floor(self, data):
        X, y = data
        ensemble = DeepEnsembleRegressor(
            _fast_template(), n_members=3, random_state=0
        ).fit(X, y)
        _, std = ensemble.predict(X, return_std=True)
        assert np.all(std > 0)
        assert ensemble.noise_std_ > 0

    def test_interval_monotone_in_alpha(self, data):
        X, y = data
        ensemble = DeepEnsembleRegressor(
            _fast_template(), n_members=2, random_state=0
        ).fit(X, y)
        lo90, hi90 = ensemble.predict_interval(X, alpha=0.1)
        lo50, hi50 = ensemble.predict_interval(X, alpha=0.5)
        assert np.all(hi90 - lo90 >= hi50 - lo50)

    def test_default_template_is_paper_mlp(self):
        ensemble = DeepEnsembleRegressor(random_state=0)
        assert ensemble.template is None  # resolved lazily at fit

    def test_works_with_seedless_template(self, data):
        X, y = data
        ensemble = DeepEnsembleRegressor(
            LinearRegression(), n_members=2, random_state=0
        ).fit(X, y)
        # Identical members: epistemic spread 0, noise floor still > 0.
        _, std = ensemble.predict(X, return_std=True)
        assert np.all(std > 0)

    def test_deterministic_given_seed(self, data):
        X, y = data
        a = DeepEnsembleRegressor(_fast_template(), n_members=2, random_state=4).fit(X, y)
        b = DeepEnsembleRegressor(_fast_template(), n_members=2, random_state=4).fit(X, y)
        np.testing.assert_allclose(a.predict(X), b.predict(X))

    def test_rejects_small_ensemble(self):
        with pytest.raises(ValueError, match="n_members"):
            DeepEnsembleRegressor(n_members=1)

    def test_interval_rejects_bad_alpha(self, data):
        X, y = data
        ensemble = DeepEnsembleRegressor(
            LinearRegression(), n_members=2, random_state=0
        ).fit(X, y)
        with pytest.raises(ValueError, match="alpha"):
            ensemble.predict_interval(X, alpha=2.0)
