"""Engine-level tests for reprolint: role classification, file
collection, suppressions, config loading, reporters, and CLI exit
codes."""

import json

import pytest

from repro.devtools import (
    Diagnostic,
    LintConfig,
    classify_role,
    lint_source,
    load_config,
    render_json,
    render_text,
)
from repro.devtools.engine import collect_files, collect_suppressions
from repro.devtools.lint import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, main
from repro.devtools.rules import ALL_RULES, get_rule


class TestClassifyRole:
    @pytest.mark.parametrize(
        "path",
        ["tests/test_models.py", "tests/helpers.py", "pkg/tests/inner.py"],
    )
    def test_tests_directory(self, path):
        assert classify_role(path) == "test"

    @pytest.mark.parametrize("path", ["test_standalone.py", "conftest.py"])
    def test_test_basenames(self, path):
        assert classify_role(path) == "test"

    @pytest.mark.parametrize(
        "path", ["src/repro/models/cqr.py", "src/repro/__main__.py", "setup.py"]
    )
    def test_source_files(self, path):
        assert classify_role(path) == "src"

    def test_custom_test_dirs(self):
        config = LintConfig(test_dirs=frozenset({"checks"}))
        assert classify_role("checks/probe.py", config) == "test"
        assert classify_role("tests/probe.py", config) == "src"


class TestCollectFiles:
    def test_walks_directories_and_sorts(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "notes.txt").write_text("not python\n")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "c.py").write_text("x = 1\n")
        files = collect_files([str(tmp_path)])
        assert [f.rsplit("/", 1)[-1] for f in files] == ["a.py", "b.py", "c.py"]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            collect_files(["/no/such/path_anywhere"])

    def test_exclude_globs(self, tmp_path):
        (tmp_path / "keep.py").write_text("x = 1\n")
        (tmp_path / "skip.py").write_text("x = 1\n")
        config = LintConfig(exclude=("*skip.py",))
        files = collect_files([str(tmp_path)], config)
        assert [f.rsplit("/", 1)[-1] for f in files] == ["keep.py"]


class TestSuppressionParsing:
    def test_comma_separated_list(self):
        marks = collect_suppressions("x = 1  # reprolint: disable=REP101, REP104\n")
        assert marks[1] == frozenset({"REP101", "REP104"})

    def test_plain_comments_ignored(self):
        assert collect_suppressions("x = 1  # a normal comment\n") == {}

    def test_unterminated_source_does_not_crash(self):
        assert collect_suppressions("s = '''open\n") == {}


class TestLintConfig:
    def test_enable_beats_disable(self):
        config = LintConfig(
            enable=frozenset({"REP104"}), disable=frozenset({"REP104"})
        )
        assert config.rule_enabled("REP104", "no-assert-in-src")
        assert not config.rule_enabled("REP101", "rng-discipline")

    def test_disable_accepts_names_and_ids(self):
        config = LintConfig(disable=frozenset({"rng-discipline"}))
        assert not config.rule_enabled("REP101", "rng-discipline")
        assert config.rule_enabled("REP104", "no-assert-in-src")


class TestLoadConfig:
    def write_pyproject(self, tmp_path, body):
        (tmp_path / "pyproject.toml").write_text(body)
        return str(tmp_path / "anything.py")

    def test_reads_section(self, tmp_path):
        anchor = self.write_pyproject(
            tmp_path,
            '[tool.reprolint]\ndisable = ["REP108"]\nexclude = ["legacy/*"]\n'
            'test-dirs = ["tests", "checks"]\n',
        )
        config = load_config(anchor)
        assert config.disable == frozenset({"REP108"})
        assert config.exclude == ("legacy/*",)
        assert config.test_dirs == frozenset({"tests", "checks"})

    def test_missing_section_gives_defaults(self, tmp_path):
        anchor = self.write_pyproject(tmp_path, '[project]\nname = "x"\n')
        assert load_config(anchor) == LintConfig()

    def test_unknown_key_raises(self, tmp_path):
        anchor = self.write_pyproject(
            tmp_path, '[tool.reprolint]\ntypo-key = ["REP101"]\n'
        )
        with pytest.raises(ValueError, match="unknown keys"):
            load_config(anchor)

    def test_wrong_type_raises(self, tmp_path):
        anchor = self.write_pyproject(tmp_path, '[tool.reprolint]\ndisable = "REP101"\n')
        with pytest.raises(ValueError, match="list of strings"):
            load_config(anchor)

    def test_reads_scope_tables(self, tmp_path):
        anchor = self.write_pyproject(
            tmp_path,
            '[tool.reprolint]\ndisable = []\n'
            '[tool.reprolint.perf]\npaths = ["src/repro/perf/*"]\n'
            'disable = ["REP102"]\n',
        )
        config = load_config(anchor)
        assert len(config.scopes) == 1
        scope = config.scopes[0]
        assert scope.name == "perf"
        assert scope.paths == ("src/repro/perf/*",)
        assert scope.disable == frozenset({"REP102"})

    def test_scope_unknown_key_raises(self, tmp_path):
        anchor = self.write_pyproject(
            tmp_path,
            '[tool.reprolint.perf]\npaths = ["src/*"]\nexclude = ["x"]\n',
        )
        with pytest.raises(ValueError, match=r"reprolint\.perf.*unknown keys"):
            load_config(anchor)

    def test_scope_requires_paths(self, tmp_path):
        anchor = self.write_pyproject(
            tmp_path, '[tool.reprolint.perf]\ndisable = ["REP102"]\n'
        )
        with pytest.raises(ValueError, match="paths"):
            load_config(anchor)


class TestScopedFiltering:
    def scoped_config(self, **kwargs):
        from repro.devtools.config import ScopeConfig

        return LintConfig(
            scopes=(ScopeConfig(name="perf", paths=("src/repro/perf/*",), **kwargs),)
        )

    def test_scope_disables_rule_inside_paths_only(self):
        config = self.scoped_config(disable=frozenset({"REP104"}))
        code = "def f(x):\n    assert x\n    return x\n"
        inside = lint_source(code, path="src/repro/perf/bench.py", config=config)
        outside = lint_source(code, path="src/repro/core/cqr.py", config=config)
        assert "REP104" not in {f.rule_id for f in inside}
        assert "REP104" in {f.rule_id for f in outside}

    def test_scope_enable_keeps_only_listed_rules(self):
        config = self.scoped_config(enable=frozenset({"REP103"}))
        code = "def f(x, cache={}):\n    assert x\n    return cache\n"
        inside = lint_source(code, path="src/repro/perf/bench.py", config=config)
        assert {f.rule_id for f in inside} == {"REP103"}

    def test_scope_cannot_resurrect_base_disabled_rule(self):
        from repro.devtools.config import ScopeConfig

        config = LintConfig(
            disable=frozenset({"REP104"}),
            scopes=(
                ScopeConfig(
                    name="perf",
                    paths=("src/repro/perf/*",),
                    enable=frozenset({"REP104"}),
                ),
            ),
        )
        assert not config.rule_enabled_for(
            "src/repro/perf/bench.py", "REP104", "no-assert-in-src"
        )


class TestEngineBehaviour:
    def test_syntax_error_becomes_rep000(self):
        findings = lint_source("def broken(:\n", path="src/pkg/bad.py")
        assert [f.rule_id for f in findings] == ["REP000"]
        assert findings[0].rule_name == "parse-error"

    def test_config_disable_filters_rules(self):
        code = "def f(x):\n    assert x\n    return x\n"
        config = LintConfig(disable=frozenset({"REP104"}))
        hits = lint_source(code, path="src/pkg/mod.py", config=config)
        assert "REP104" not in {f.rule_id for f in hits}

    def test_findings_are_sorted(self):
        code = (
            "import numpy as np\n"
            "def f(x, cache={}):\n"
            "    assert x\n"
            "    np.random.seed(0)\n"
            "    return cache\n"
        )
        findings = lint_source(code, path="src/pkg/mod.py")
        positions = [(f.line, f.column, f.rule_id) for f in findings]
        assert positions == sorted(positions)

    def test_get_rule_round_trip(self):
        for rule in ALL_RULES:
            assert get_rule(rule.rule_id) is rule
            assert get_rule(rule.name) is rule
        with pytest.raises(KeyError):
            get_rule("REP999")


class TestReporters:
    def make_diag(self):
        return Diagnostic(
            path="src/m.py",
            line=3,
            column=4,
            rule_id="REP104",
            rule_name="no-assert-in-src",
            message="assert found",
        )

    def test_text_clean(self):
        assert render_text([], checked_files=5) == "checked 5 file(s): all clean"

    def test_text_with_findings(self):
        out = render_text([self.make_diag()], checked_files=2)
        assert "src/m.py:3:4: REP104 [no-assert-in-src] assert found" in out
        assert "found 1 issue(s) in 2 file(s) (REP104: 1)" in out

    def test_json_document(self):
        document = json.loads(render_json([self.make_diag()], checked_files=2))
        assert document["version"] == 1
        assert document["summary"] == {
            "checked_files": 2,
            "total": 1,
            "by_rule": {"REP104": 1},
        }
        assert document["diagnostics"][0]["rule_id"] == "REP104"


class TestCli:
    def write(self, tmp_path, name, body):
        target = tmp_path / name
        target.write_text(body)
        return str(target)

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = self.write(
            tmp_path,
            "clean.py",
            '"""Docstring."""\n\n__all__ = ["f"]\n\n\ndef f():\n'
            '    """Return one."""\n    return 1\n',
        )
        assert main(["--no-config", clean]) == EXIT_CLEAN
        assert "all clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        dirty = self.write(tmp_path, "dirty.py", "def f(x):\n    assert x\n")
        assert main(["--no-config", dirty]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "REP104" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["--no-config", "/no/such/dir"]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        clean = self.write(tmp_path, "x.py", "x = 1\n")
        assert main(["--no-config", "--disable", "REP999", clean]) == EXIT_ERROR
        assert "unknown rule" in capsys.readouterr().err

    def test_no_paths_exits_two(self, capsys):
        assert main(["--no-config"]) == EXIT_ERROR
        assert "no paths" in capsys.readouterr().err

    def test_enable_narrows_to_one_rule(self, tmp_path, capsys):
        dirty = self.write(
            tmp_path, "dirty.py", "def f(x):\n    assert x\n    return None\n"
        )
        assert main(["--no-config", "--enable", "REP101", dirty]) == EXIT_CLEAN
        capsys.readouterr()

    def test_json_format(self, tmp_path, capsys):
        dirty = self.write(tmp_path, "dirty.py", "def f(x):\n    assert x\n")
        assert main(["--no-config", "--format", "json", dirty]) == EXIT_FINDINGS
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["by_rule"].get("REP104") == 1

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.rule_id in out


class TestAnalysisConfigLoading:
    def write_pyproject(self, tmp_path, body):
        (tmp_path / "pyproject.toml").write_text(body)
        return str(tmp_path / "anything.py")

    def test_reads_analysis_table(self, tmp_path):
        anchor = self.write_pyproject(
            tmp_path,
            "[tool.reprolint]\n"
            'disable = ["REP104"]\n'
            "[tool.reprolint.analysis]\n"
            'disable = ["REP203"]\n'
            'exclude = ["*/vendor/*"]\n'
            'baseline = "accepted.json"\n',
        )
        config = load_config(anchor)
        assert config.analysis.disable == frozenset({"REP203"})
        assert config.analysis.exclude == ("*/vendor/*",)
        # The relative baseline anchors at the pyproject directory.
        assert config.analysis.baseline == str(tmp_path / "accepted.json")
        # The analysis table is NOT a lint scope and leaves lint config alone.
        assert config.disable == frozenset({"REP104"})
        assert all(scope.name != "analysis" for scope in config.scopes)

    def test_missing_analysis_table_gives_defaults(self, tmp_path):
        anchor = self.write_pyproject(tmp_path, "[tool.reprolint]\n")
        config = load_config(anchor)
        assert config.analysis.baseline is None
        assert config.analysis.rule_enabled("REP201", "parallel-closure-mutation")

    def test_analysis_unknown_key_raises(self, tmp_path):
        anchor = self.write_pyproject(
            tmp_path, "[tool.reprolint.analysis]\npaths = []\n"
        )
        with pytest.raises(ValueError, match=r"analysis.*unknown keys"):
            load_config(anchor)

    def test_analysis_baseline_type_checked(self, tmp_path):
        anchor = self.write_pyproject(
            tmp_path, "[tool.reprolint.analysis]\nbaseline = 3\n"
        )
        with pytest.raises(ValueError, match="baseline must be a string"):
            load_config(anchor)

    def test_analysis_rule_enable_beats_disable(self):
        from repro.devtools.config import AnalysisConfig

        analysis = AnalysisConfig(
            enable=frozenset({"REP301"}), disable=frozenset({"REP301"})
        )
        assert analysis.rule_enabled("REP301", "calibration-leak")
        assert not analysis.rule_enabled("REP302", "refit-after-calibrate")


class TestCliHardening:
    """Engine failures must be reported as exit 2, never a traceback
    and never a clean/dirty verdict on code the engine could not see."""

    def test_syntax_error_file_exits_two(self, tmp_path, capsys):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        assert main(["--no-config", str(tmp_path)]) == EXIT_ERROR
        out = capsys.readouterr().out
        assert "REP000" in out

    def test_empty_scope_paths_exits_two(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.reprolint.perf]\npaths = []\n"
        )
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert "error:" in err
        assert "paths" in err

    def test_scopeless_table_exits_two(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text(
            '[tool.reprolint.perf]\ndisable = ["REP102"]\n'
        )
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err

    def test_malformed_analysis_table_exits_two(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.reprolint.analysis]\nbogus = 1\n"
        )
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main([str(tmp_path)]) == EXIT_ERROR
        assert "error:" in capsys.readouterr().err


class TestSarifReporter:
    def make_diag(self, rule_id="REP104", name="no-assert-in-src"):
        return Diagnostic(
            path="src/m.py",
            line=3,
            column=4,
            rule_id=rule_id,
            rule_name=name,
            message="assert found",
        )

    def test_sarif_shape(self):
        from repro.devtools.reporters import render_sarif

        document = json.loads(
            render_sarif([self.make_diag()], tool_name="reprolint", rules=ALL_RULES)
        )
        assert document["version"] == "2.1.0"
        assert document["$schema"].startswith("https://")
        run = document["runs"][0]
        assert run["tool"]["driver"]["name"] == "reprolint"
        ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert ids == sorted(ids)
        result = run["results"][0]
        assert result["ruleId"] == "REP104"
        assert ids[result["ruleIndex"]] == "REP104"
        region = result["locations"][0]["physicalLocation"]["region"]
        # SARIF columns are 1-based; Diagnostic columns are 0-based.
        assert region == {"startLine": 3, "startColumn": 5}

    def test_sarif_unknown_rule_gets_index_minus_one(self):
        from repro.devtools.reporters import render_sarif

        diag = self.make_diag(rule_id="REP000", name="parse-error")
        document = json.loads(
            render_sarif([diag], tool_name="reprolint", rules=())
        )
        result = document["runs"][0]["results"][0]
        assert result["ruleId"] == "REP000"
        assert "ruleIndex" not in result or result["ruleIndex"] == -1

    def test_sarif_empty_run_is_valid(self):
        from repro.devtools.reporters import render_sarif

        document = json.loads(render_sarif([], tool_name="reprolint", rules=ALL_RULES))
        assert document["runs"][0]["results"] == []

    def test_lint_cli_sarif_output(self, tmp_path, capsys):
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(x):\n    assert x\n")
        artifact = tmp_path / "lint.sarif"
        code = main(
            ["--no-config", "--sarif-output", str(artifact), str(dirty)]
        )
        assert code == EXIT_FINDINGS
        capsys.readouterr()
        document = json.loads(artifact.read_text())
        assert any(
            r["ruleId"] == "REP104" for r in document["runs"][0]["results"]
        )
