"""Interval-based specification screening.

The paper's motivating production use (Sections I, II-B, V): decide from
a *predicted* Vmin interval -- without running the slow step-down Vmin
search -- whether a chip passes the product spec (the ``min_spec`` line of
Fig. 1).  With a calibrated ``1 − α`` interval the decision logic is:

* **pass**  -- the whole interval sits below the spec: even the
  pessimistic bound meets it, so ship without measuring;
* **fail**  -- the whole interval sits above the spec: the optimistic
  bound already violates it, so scrap/bin without measuring;
* **retest** -- the interval straddles the spec: only these marginal
  chips go to the expensive ATE Vmin search.

Because the interval covers the true Vmin with probability ``1 − α``,
the chip-level mis-screen rate (a true failure shipped, or a good chip
scrapped) is bounded by ``α`` -- and in practice far lower, since only
straddling chips are ever at risk and those are routed to retest.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.intervals import PredictionIntervals
from repro.silicon.constants import MIN_SPEC_V

__all__ = ["ScreeningDecision", "ScreeningOutcome", "SpecScreeningPolicy"]


class ScreeningDecision(enum.Enum):
    """Per-chip screening verdict."""

    PASS = "pass"
    FAIL = "fail"
    RETEST = "retest"


@dataclass(frozen=True)
class ScreeningOutcome:
    """Aggregate result of screening one lot.

    Attributes
    ----------
    decisions:
        Per-chip :class:`ScreeningDecision` array (dtype object).
    test_time_saved:
        Fraction of chips that skipped the ATE Vmin search.
    underkill / overkill:
        With reference labels supplied: fraction of truly failing chips
        that were passed, and of truly passing chips that were failed
        (both exclude retested chips, which are measured anyway).
    """

    decisions: np.ndarray
    test_time_saved: float
    underkill: float
    overkill: float

    def count(self, decision: ScreeningDecision) -> int:
        return int(np.sum(self.decisions == decision))


class SpecScreeningPolicy:
    """Screen chips against a Vmin specification using intervals.

    Parameters
    ----------
    min_spec_v:
        The specification threshold (V); chips whose true Vmin exceeds it
        are failures.  Defaults to the simulated product's spec.
    guard_band_v:
        Extra margin subtracted from the spec on the pass side: a chip
        passes only if ``upper + guard_band <= min_spec``.  Non-negative.
    """

    def __init__(
        self, min_spec_v: float = MIN_SPEC_V, guard_band_v: float = 0.0
    ) -> None:
        if guard_band_v < 0:
            raise ValueError(f"guard_band_v must be >= 0, got {guard_band_v}")
        self.min_spec_v = min_spec_v
        self.guard_band_v = guard_band_v

    def decide(self, intervals: PredictionIntervals) -> np.ndarray:
        """Per-chip decisions from predicted intervals."""
        upper_ok = intervals.upper + self.guard_band_v <= self.min_spec_v
        lower_bad = intervals.lower > self.min_spec_v
        decisions = np.empty(len(intervals), dtype=object)
        decisions[:] = ScreeningDecision.RETEST
        decisions[upper_ok] = ScreeningDecision.PASS
        decisions[lower_bad] = ScreeningDecision.FAIL
        return decisions

    def screen(
        self,
        intervals: PredictionIntervals,
        true_vmin: np.ndarray,
    ) -> ScreeningOutcome:
        """Screen a lot and audit the decisions against reference Vmin.

        ``true_vmin`` is the measured (or ground-truth) Vmin used only for
        the underkill/overkill audit -- the decisions themselves never see
        it.
        """
        true_vmin = np.asarray(true_vmin, dtype=np.float64)
        if true_vmin.shape != intervals.lower.shape:
            raise ValueError(
                f"true_vmin has shape {true_vmin.shape}, intervals have "
                f"shape {intervals.lower.shape}"
            )
        decisions = self.decide(intervals)
        retested = decisions == ScreeningDecision.RETEST
        passed = decisions == ScreeningDecision.PASS
        failed = decisions == ScreeningDecision.FAIL

        truly_failing = true_vmin > self.min_spec_v
        n_failing = int(truly_failing.sum())
        n_passing = int((~truly_failing).sum())
        underkill = (
            float(np.sum(passed & truly_failing)) / n_failing if n_failing else 0.0
        )
        overkill = (
            float(np.sum(failed & ~truly_failing)) / n_passing if n_passing else 0.0
        )
        return ScreeningOutcome(
            decisions=decisions,
            test_time_saved=float(np.mean(~retested)),
            underkill=underkill,
            overkill=overkill,
        )
