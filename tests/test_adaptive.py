"""Tests for online adaptive conformal inference."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveConformalPredictor
from repro.models.linear import QuantileLinearRegression


@pytest.fixture()
def stream(rng):
    X = rng.normal(size=(600, 2))
    y = X[:, 0] + rng.normal(scale=0.3, size=600)
    return X, y


class TestAdaptive:
    def test_alpha_drops_after_misses(self, stream):
        X, y = stream
        aci = AdaptiveConformalPredictor(
            QuantileLinearRegression(), alpha=0.1, gamma=0.05
        ).fit(X[:200], y[:200])
        # Feed labels shifted far outside the intervals: every miss should
        # push alpha_t down (widening future intervals).
        aci.update(X[200:220], y[200:220] + 100.0)
        assert aci.alpha_t < 0.1

    def test_alpha_rises_when_over_covering(self, stream):
        X, y = stream
        aci = AdaptiveConformalPredictor(
            QuantileLinearRegression(), alpha=0.1, gamma=0.05
        ).fit(X[:200], y[:200])
        aci.update(X[200:220], y[200:220] * 0.0)  # all inside? not guaranteed
        # After observing all-covered points alpha_t moves up by gamma*alpha each.
        aci2 = AdaptiveConformalPredictor(
            QuantileLinearRegression(), alpha=0.1, gamma=0.05
        ).fit(X[:200], y[:200])
        intervals = aci2.predict_interval(X[200:210])
        centred = intervals.midpoint
        aci2.update(X[200:210], centred)  # midpoints always covered
        assert aci2.alpha_t > 0.1

    def test_long_run_coverage_under_drift(self, rng):
        """Under a mean shift mid-stream, long-run coverage stays near the
        target thanks to the alpha feedback."""
        n = 900
        X = rng.normal(size=(n, 2))
        y = X[:, 0] + rng.normal(scale=0.3, size=n)
        y[450:] += 1.5  # abrupt in-field drift
        aci = AdaptiveConformalPredictor(
            QuantileLinearRegression(), alpha=0.1, gamma=0.05
        ).fit(X[:300], y[:300])
        for start in range(300, n, 30):
            aci.update(X[start : start + 30], y[start : start + 30])
        assert aci.long_run_coverage() >= 0.8

    def test_gamma_zero_keeps_alpha_fixed(self, stream):
        X, y = stream
        aci = AdaptiveConformalPredictor(
            QuantileLinearRegression(), alpha=0.1, gamma=0.0
        ).fit(X[:200], y[:200])
        aci.update(X[200:260], y[200:260])
        assert aci.alpha_t == pytest.approx(0.1)

    def test_window_limits_history(self, stream):
        X, y = stream
        aci = AdaptiveConformalPredictor(
            QuantileLinearRegression(), alpha=0.1, gamma=0.02, window=50
        ).fit(X[:200], y[:200])
        aci.update(X[200:400], y[200:400])
        assert aci._current_scores().size == 50

    def test_history_recorded(self, stream):
        X, y = stream
        aci = AdaptiveConformalPredictor(
            QuantileLinearRegression(), alpha=0.1, gamma=0.05
        ).fit(X[:200], y[:200])
        aci.update(X[200:230], y[200:230])
        assert len(aci.error_history_) == 30
        assert len(aci.alpha_history_) == 31  # initial + 30 updates

    def test_unfitted_raises(self):
        aci = AdaptiveConformalPredictor(QuantileLinearRegression())
        with pytest.raises(RuntimeError):
            aci.predict_interval(np.zeros((2, 2)))
        with pytest.raises(RuntimeError):
            _ = aci.alpha_t

    def test_no_updates_coverage_raises(self, stream):
        X, y = stream
        aci = AdaptiveConformalPredictor(QuantileLinearRegression()).fit(
            X[:100], y[:100]
        )
        with pytest.raises(RuntimeError, match="no updates"):
            aci.long_run_coverage()

    @pytest.mark.parametrize(
        "kwargs", [{"alpha": 0.0}, {"gamma": -0.1}, {"window": 0}]
    )
    def test_rejects_bad_params(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveConformalPredictor(QuantileLinearRegression(), **kwargs)


class TestFromFitted:
    def test_warm_start_matches_fresh_fit(self, stream):
        """Adopting a fitted band + its calibration scores serves the
        same intervals a natively fitted predictor would."""
        from repro.core.cqr import ConformalizedQuantileRegressor

        X, y = stream
        cqr = ConformalizedQuantileRegressor(
            QuantileLinearRegression(), alpha=0.1, random_state=0
        ).fit(X[:300], y[:300])
        warm = AdaptiveConformalPredictor.from_fitted(
            cqr.band_, cqr.calibration_scores_, alpha=0.1, gamma=0.05
        )
        assert warm.alpha_t == 0.1
        intervals = warm.predict_interval(X[300:330])
        assert intervals.coverage(y[300:330]) >= 0.7
        # The warm-started predictor keeps adapting like a fresh one.
        warm.update(X[300:330], y[300:330] + 100.0)
        assert warm.alpha_t < 0.1

    def test_from_fitted_validates_inputs(self, stream):
        from repro.core.cqr import ConformalizedQuantileRegressor

        X, y = stream
        cqr = ConformalizedQuantileRegressor(
            QuantileLinearRegression(), alpha=0.1, random_state=0
        ).fit(X[:300], y[:300])
        with pytest.raises(TypeError, match="predict_interval"):
            AdaptiveConformalPredictor.from_fitted(object(), cqr.calibration_scores_)
        with pytest.raises(ValueError, match="scores"):
            AdaptiveConformalPredictor.from_fitted(cqr.band_, [])
        with pytest.raises(ValueError, match="scores"):
            AdaptiveConformalPredictor.from_fitted(cqr.band_, [1.0, np.nan])


class TestSortedWindowBitIdentity:
    def test_sorted_window_matches_naive_trailing_list(self, stream):
        """The bisect-maintained sorted mirror must be bit-identical to
        re-sorting a naive arrival-order trailing list at every step --
        eviction by value (not position) is where the two could diverge,
        e.g. on duplicated or near-equal floats."""
        from repro.core.calibration import (
            conformal_quantile,
            conformal_quantile_sorted,
        )

        X, y = stream
        window = 50
        aci = AdaptiveConformalPredictor(
            QuantileLinearRegression(), alpha=0.1, gamma=0.05, window=window
        ).fit(X[:200], y[:200])
        # Reconstruct the seed exactly as fit() does, then stream rows
        # one at a time, mirroring the per-row update protocol.
        from repro.core.scores import cqr_score

        lower, upper = aci.band_.predict_interval(X[:200])
        naive = [float(s) for s in cqr_score(y[:200], lower, upper)]
        for i in range(200, 400):
            aci.update(X[i : i + 1], y[i : i + 1])
            lo, hi = aci.band_.predict_interval(X[i : i + 1])
            naive.append(float(cqr_score(y[i : i + 1], lo, hi)[0]))
            expected = np.sort(np.asarray(naive[-window:], dtype=np.float64))
            np.testing.assert_array_equal(aci._current_scores(), expected)
            # The margin served off the sorted mirror equals a from-scratch
            # partition of the naive window at the same effective level.
            effective = float(np.clip(aci.alpha_t, 1e-6, 1.0 - 1e-6))
            assert conformal_quantile_sorted(
                expected, effective
            ) == conformal_quantile(np.asarray(naive[-window:]), effective)

    def test_duplicate_scores_evict_correctly(self):
        """Duplicated float values exercise bisect eviction-by-value."""
        from repro.core.adaptive import _SortedScoreWindow

        win = _SortedScoreWindow([1.0, 2.0, 1.0], window=3)
        win.append(1.0)  # evicts the oldest 1.0
        win.append(3.0)  # evicts the 2.0
        np.testing.assert_array_equal(win.sorted_array(), [1.0, 1.0, 3.0])
        assert len(win) == 3
