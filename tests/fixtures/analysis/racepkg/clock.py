"""REP204 fixture: wall-clock/entropy reaching fingerprints and seeds."""

import os
import time


def fingerprint(payload):
    """Name-matched fingerprint sink (mirrors repro.runtime.checkpoint)."""
    return hash(repr(payload))


def checkpoint_key(config):
    stamp = time.time()
    return fingerprint({"config": config, "at": stamp})  # REP204: direct


def stamp_and_digest(config):
    salt = os.urandom(8)
    return _digest_cell(config, salt)  # REP204: one call away


def _digest_cell(config, extra):
    return fingerprint((config, extra))


def jittered_wait(policy):
    wobble = time.monotonic()
    return policy.delay(seed=wobble)  # REP204: entropy into seed=
