"""Safe parallel patterns that shape-match REP201/REP202."""

import numpy as np

from ..racepkg.pool import parallel_map


def collect_via_return(items):
    """The blessed pattern: return values, let the map keep order."""

    def worker(item):
        local = []
        local.append(item * item)  # mutates a task-local container only
        return local[0]

    return parallel_map(worker, items)


def journaled_run(journal, items):
    """Recording through a thread-safe object is not a container mutation.

    Mirrors repro.eval.experiments._run_grid: ``journal`` is an object
    with its own locking, not a captured list/dict.
    """

    def worker(item):
        value = item * 2
        journal.record(str(item), {"value": value})
        return value

    return parallel_map(worker, items)


def seeded_tasks(seed, items):
    """Per-task generators from derived seeds are deterministic."""

    def worker(index):
        rng = np.random.default_rng((seed, index))  # seeded: fine
        return rng.normal()

    return parallel_map(worker, list(range(len(items))))
