"""Tests for the estimator protocol in repro.models.base."""

import numpy as np
import pytest

from repro.models.base import (
    BaseRegressor,
    NotFittedError,
    check_fitted,
    check_random_state,
    check_X,
    check_X_y,
    clone,
)
from repro.models.linear import LinearRegression, QuantileLinearRegression


class _Dummy(BaseRegressor):
    def __init__(self, alpha=1.0, beta="x"):
        self.alpha = alpha
        self.beta = beta


class TestParamProtocol:
    def test_get_params_returns_constructor_args(self):
        model = _Dummy(alpha=2.5, beta="y")
        assert model.get_params() == {"alpha": 2.5, "beta": "y"}

    def test_set_params_updates_value(self):
        model = _Dummy()
        model.set_params(alpha=9.0)
        assert model.alpha == 9.0

    def test_set_params_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="invalid parameter"):
            _Dummy().set_params(gamma=1)

    def test_repr_contains_params(self):
        text = repr(_Dummy(alpha=3))
        assert "alpha=3" in text and "_Dummy" in text


class TestClone:
    def test_clone_copies_params(self):
        original = _Dummy(alpha=4.0)
        copy = clone(original)
        assert copy is not original
        assert copy.get_params() == original.get_params()

    def test_clone_is_deep_for_mutable_params(self):
        original = _Dummy(alpha=[1, 2])
        copy = clone(original)
        copy.alpha.append(3)
        assert original.alpha == [1, 2]

    def test_clone_with_quantile_override(self):
        template = QuantileLinearRegression(quantile=0.5)
        lower = clone(template, quantile=0.05)
        assert lower.quantile == 0.05
        assert template.quantile == 0.5

    def test_clone_quantile_rejected_for_non_quantile_model(self):
        with pytest.raises(ValueError, match="no 'quantile' parameter"):
            clone(LinearRegression(), quantile=0.1)

    def test_clone_rejects_object_without_get_params(self):
        with pytest.raises(TypeError, match="cannot clone"):
            clone(object())

    def test_clone_does_not_copy_fitted_state(self, linear_data):
        X, y, *_ = linear_data
        model = LinearRegression().fit(X, y)
        fresh = clone(model)
        assert fresh.coef_ is None


class TestCheckX:
    def test_accepts_2d_and_casts_float(self):
        out = check_X([[1, 2], [3, 4]])
        assert out.dtype == np.float64 and out.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            check_X(np.zeros(5))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_X(np.zeros((0, 3)))

    def test_rejects_nan(self):
        X = np.ones((3, 2))
        X[1, 1] = np.nan
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_X(X)

    def test_rejects_inf(self):
        X = np.ones((3, 2))
        X[0, 0] = np.inf
        with pytest.raises(ValueError):
            check_X(X)


class TestCheckXY:
    def test_returns_pair(self):
        X, y = check_X_y([[1.0], [2.0]], [3.0, 4.0])
        assert X.shape == (2, 1) and y.shape == (2,)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="inconsistent lengths"):
            check_X_y(np.ones((3, 2)), np.ones(4))

    def test_rejects_2d_y(self):
        with pytest.raises(ValueError, match="1-D"):
            check_X_y(np.ones((3, 2)), np.ones((3, 1)))

    def test_rejects_nan_y(self):
        with pytest.raises(ValueError, match="NaN"):
            check_X_y(np.ones((2, 1)), [1.0, np.nan])


class TestCheckFitted:
    def test_raises_before_fit(self):
        with pytest.raises(NotFittedError, match="not fitted"):
            check_fitted(LinearRegression(), "coef_")

    def test_passes_after_fit(self, linear_data):
        X, y, *_ = linear_data
        model = LinearRegression().fit(X, y)
        check_fitted(model, "coef_")  # no exception

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict(np.ones((2, 2)))


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = check_random_state(7).integers(0, 1000, 5)
        b = check_random_state(7).integers(0, 1000, 5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert check_random_state(gen) is gen

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_random_state("seed")


class TestScore:
    def test_perfect_prediction_scores_one(self, linear_data):
        X, y, *_ = linear_data
        model = LinearRegression().fit(X, y)
        assert model.score(X, y) > 0.99

    def test_constant_target_handled(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.full(10, 2.0)
        model = LinearRegression().fit(X, y)
        assert model.score(X, y) == pytest.approx(1.0)


class TestCloneConformalWrappers:
    """Conformal wrappers are BaseRegressors too: cloning them must yield
    unfitted copies with independent template instances."""

    def test_clone_split_cp(self, linear_data):
        from repro.core.split_cp import SplitConformalRegressor

        X, y, *_ = linear_data
        original = SplitConformalRegressor(
            LinearRegression(), alpha=0.2, random_state=1
        ).fit(X, y)
        copy = clone(original)
        assert copy.estimator_ is None  # unfitted
        assert copy.alpha == 0.2
        assert copy.estimator is not original.estimator

    def test_clone_cqr_preserves_band_template(self, rng):
        from repro.core.cqr import ConformalizedQuantileRegressor
        from repro.models.oblivious import ObliviousBoostingRegressor
        from repro.models.quantile import PackageDefaultQuantileBand

        band = PackageDefaultQuantileBand(
            ObliviousBoostingRegressor(n_estimators=3, quantile=0.5),
            random_state=0,
        )
        original = ConformalizedQuantileRegressor(
            None, alpha=0.1, band_template=band, random_state=0
        )
        copy = clone(original)
        assert isinstance(copy.band_template, PackageDefaultQuantileBand)
        assert copy.band_template is not band
