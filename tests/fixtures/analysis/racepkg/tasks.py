"""REP201 fixture: pooled closures mutating captured containers."""

from .pool import parallel_map


def collect_squares(items):
    results = []

    def worker(item):
        results.append(item * item)  # REP201: completion-order dependent

    parallel_map(worker, items)
    return results


def tally_by_key(pairs, pool):
    counts = {}

    def worker(pair):
        key, value = pair
        counts[key] = counts.get(key, 0) + value  # REP201: subscript store

    pool.submit(worker, pairs)
    return counts


def count_with_lambda(items):
    seen = []
    parallel_map(lambda item: seen.append(item), items)  # REP201: lambda
    return seen
