"""Tests for dataset persistence and CSV export."""

import csv

import numpy as np
import pytest

from repro.silicon import SiliconDataset
from repro.silicon.io import (
    DatasetSchemaError,
    export_flow_csv,
    load_measurements,
    save_measurements,
)


class TestRoundTrip:
    def test_measurements_identical(self, small_lot, tmp_path):
        path = save_measurements(small_lot, tmp_path / "lot.npz")
        loaded = load_measurements(path)
        np.testing.assert_array_equal(loaded.parametric, small_lot.parametric)
        for hours in small_lot.read_points:
            np.testing.assert_array_equal(loaded.rod[hours], small_lot.rod[hours])
            np.testing.assert_array_equal(loaded.cpd[hours], small_lot.cpd[hours])
        for key in small_lot.vmin:
            np.testing.assert_array_equal(loaded.vmin[key], small_lot.vmin[key])

    def test_feature_assembly_works_after_load(self, small_lot, tmp_path):
        path = save_measurements(small_lot, tmp_path / "lot.npz")
        loaded = load_measurements(path)
        X_orig, names_orig = small_lot.features(48)
        X_load, names_load = loaded.features(48)
        np.testing.assert_array_equal(X_load, X_orig)
        assert names_load == names_orig

    def test_targets_work_after_load(self, small_lot, tmp_path):
        path = save_measurements(small_lot, tmp_path / "lot.npz")
        loaded = load_measurements(path)
        np.testing.assert_array_equal(
            loaded.target(25.0, 24), small_lot.target(25.0, 24)
        )

    def test_latents_not_persisted(self, small_lot, tmp_path):
        path = save_measurements(small_lot, tmp_path / "lot.npz")
        loaded = load_measurements(path)
        assert loaded.true_vmin == {}
        with pytest.raises(AttributeError, match="measurements only"):
            _ = loaded.population.defects

    def test_format_version_checked(self, small_lot, tmp_path):
        path = save_measurements(small_lot, tmp_path / "lot.npz")
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["format_version"] = np.array([99])
        np.savez_compressed(tmp_path / "bad.npz", **arrays)
        with pytest.raises(DatasetSchemaError, match="format version"):
            load_measurements(tmp_path / "bad.npz")


class TestAtomicityAndSchemaErrors:
    def test_no_temp_files_left_behind(self, small_lot, tmp_path):
        save_measurements(small_lot, tmp_path / "lot.npz")
        export_flow_csv(small_lot, tmp_path / "flow.csv")
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["flow.csv", "lot.npz"]

    def test_save_failure_preserves_previous_archive(self, small_lot, tmp_path):
        path = save_measurements(small_lot, tmp_path / "lot.npz")
        before = path.read_bytes()

        broken = SiliconDataset.generate(n_chips=10, seed=0)
        broken.read_points = (0, 24, 77777)  # hours with no recorded block
        with pytest.raises(KeyError):
            save_measurements(broken, path)
        assert path.read_bytes() == before  # old lot untouched

    def test_missing_file_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="no such lot"):
            load_measurements(tmp_path / "absent.npz")

    def test_non_archive_is_schema_error(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        bogus.write_text("this is not a zip archive")
        with pytest.raises(DatasetSchemaError, match="not a readable lot"):
            load_measurements(bogus)

    def test_truncated_archive_is_schema_error(self, small_lot, tmp_path):
        path = save_measurements(small_lot, tmp_path / "lot.npz")
        content = path.read_bytes()
        truncated = tmp_path / "torn.npz"
        truncated.write_bytes(content[: len(content) // 2])
        with pytest.raises(DatasetSchemaError):
            load_measurements(truncated)

    def test_missing_field_names_the_field(self, small_lot, tmp_path):
        path = save_measurements(small_lot, tmp_path / "lot.npz")
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        del arrays["rod_names"]
        np.savez_compressed(tmp_path / "partial.npz", **arrays)
        with pytest.raises(DatasetSchemaError, match="'rod_names'"):
            load_measurements(tmp_path / "partial.npz")

    def test_some_other_npz_is_schema_error(self, tmp_path):
        np.savez_compressed(tmp_path / "other.npz", weights=np.ones(3))
        with pytest.raises(DatasetSchemaError, match="format_version"):
            load_measurements(tmp_path / "other.npz")


class TestCSVExport:
    def test_row_count_and_header(self, small_lot, tmp_path):
        path = tmp_path / "flow.csv"
        count = export_flow_csv(small_lot, path)
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "read_point_hours"
        assert len(rows) == count + 1

    def test_values_parse_back(self, small_lot, tmp_path):
        path = tmp_path / "flow.csv"
        export_flow_csv(small_lot, path)
        with open(path) as handle:
            reader = csv.DictReader(handle)
            first = next(
                row
                for row in reader
                if row["insertion"] == "rod" and row["read_point_hours"] == "0"
            )
        column = small_lot.rod_names.index(first["channel"])
        chip = int(first["chip_index"])
        assert float(first["value"]) == pytest.approx(
            small_lot.rod[0][chip, column]
        )

    def test_parametric_excluded_by_default(self, small_lot, tmp_path):
        path = tmp_path / "flow.csv"
        export_flow_csv(small_lot, path)
        with open(path) as handle:
            assert "parametric" not in handle.read()
