"""CI wall-time regression gate over benchmark JSON reports.

Usage::

    python -m repro.perf.gate BASELINE CURRENT --threshold 1.15
    python -m repro.perf.gate BASELINE CURRENT --stages table3_grid

Compares a freshly produced benchmark report against a committed
baseline (both written by :class:`repro.perf.bench.BenchRecorder`) and
exits non-zero when any gated stage's wall time regressed past
``threshold`` times its baseline.  Two reports are only comparable when
they measured the same workload, so a ``profile`` or ``n_jobs``
mismatch **skips** the gate (exit 0 with an explanatory message) rather
than failing it -- a CI matrix change must not masquerade as a perf
regression.

``--stages`` restricts the gate to stage names with the given prefix
(repeatable).  CI gates only the Table-III grid stages: micro-stages
measured in milliseconds are pure scheduler noise at smoke scale, while
the grid stages are long enough for a 15% threshold to mean something.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.perf.bench import load_report, regressions

__all__ = ["EXIT_ERROR", "EXIT_OK", "EXIT_REGRESSED", "GateResult", "compare_reports", "main"]

EXIT_OK = 0
EXIT_REGRESSED = 1
EXIT_ERROR = 2


@dataclass(frozen=True)
class GateResult:
    """Outcome of one baseline/current comparison.

    ``skipped`` carries the incomparability reason (profile or worker
    mismatch) when the gate declined to judge; ``flagged`` maps each
    regressed stage to its ``(baseline_wall_s, current_wall_s)`` pair;
    ``gated`` lists the stage names that were actually compared.
    """

    skipped: Optional[str] = None
    flagged: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    gated: Tuple[str, ...] = ()

    @property
    def exit_code(self) -> int:
        """Process exit status: 0 for pass/skip, 1 for a regression."""
        return EXIT_REGRESSED if self.flagged else EXIT_OK


def _stage_subset(
    report: Mapping[str, Any], stages: Sequence[str]
) -> Dict[str, Any]:
    """Copy of ``report`` with timings restricted to the stage prefixes."""
    timings = report.get("timings", {})
    if stages:
        timings = {
            name: entry
            for name, entry in timings.items()
            if any(name.startswith(prefix) for prefix in stages)
        }
    shallow = dict(report)
    shallow["timings"] = dict(timings)
    return shallow


def compare_reports(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    threshold: float = 1.15,
    stages: Sequence[str] = (),
) -> GateResult:
    """Gate ``current`` against ``baseline``; see the module docstring.

    Returns a :class:`GateResult` -- skipped when the reports measured
    different workloads (``profile`` or ``n_jobs`` mismatch), otherwise
    carrying every gated stage whose current wall time exceeds
    ``threshold`` times its baseline.  Stages present in only one
    report are ignored, exactly as in
    :func:`repro.perf.bench.regressions`.
    """
    for key in ("profile", "n_jobs"):
        base_value = baseline.get(key)
        cur_value = current.get(key)
        if base_value != cur_value:
            return GateResult(
                skipped=(
                    f"{key} mismatch (baseline {base_value!r} vs current "
                    f"{cur_value!r}); reports are not comparable"
                )
            )
    gated_current = _stage_subset(current, stages)
    gated_baseline = _stage_subset(baseline, stages)
    gated = tuple(
        sorted(
            set(gated_current["timings"]) & set(gated_baseline["timings"])
        )
    )
    flagged = regressions(gated_current, gated_baseline, threshold=threshold)
    return GateResult(flagged=dict(sorted(flagged.items())), gated=gated)


def _build_parser() -> argparse.ArgumentParser:
    """The CLI surface; separated so tests can inspect defaults."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf.gate",
        description=(
            "Fail when a benchmark stage's wall time regressed past "
            "THRESHOLD x the committed baseline."
        ),
    )
    parser.add_argument("baseline", help="committed baseline report (JSON)")
    parser.add_argument("current", help="freshly produced report (JSON)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.15,
        help="failure ratio current/baseline (default: 1.15)",
    )
    parser.add_argument(
        "--stages",
        action="append",
        default=[],
        metavar="PREFIX",
        help="gate only stage names with this prefix (repeatable; "
        "default: every stage present in both reports)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = _build_parser().parse_args(argv)
    if args.threshold <= 1.0:
        print(
            f"gate: threshold must be > 1.0, got {args.threshold}",
            file=sys.stderr,
        )
        return EXIT_ERROR
    try:
        baseline = load_report(args.baseline)
        current = load_report(args.current)
    except (OSError, ValueError) as error:
        print(f"gate: {error}", file=sys.stderr)
        return EXIT_ERROR
    result = compare_reports(
        baseline, current, threshold=args.threshold, stages=args.stages
    )
    if result.skipped is not None:
        print(f"gate: skipped -- {result.skipped}")
        return EXIT_OK
    if not result.gated:
        print("gate: no common stages to compare; nothing gated")
        return EXIT_OK
    if result.flagged:
        print(
            f"gate: {len(result.flagged)} stage(s) regressed past "
            f"{args.threshold:.2f}x baseline:"
        )
        for name, (base_wall, cur_wall) in result.flagged.items():
            ratio = cur_wall / base_wall if base_wall else float("inf")
            print(
                f"  {name}: {base_wall:.3f}s -> {cur_wall:.3f}s "
                f"({ratio:.2f}x)"
            )
        return EXIT_REGRESSED
    print(
        f"gate: OK -- {len(result.gated)} stage(s) within "
        f"{args.threshold:.2f}x of baseline"
    )
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
