"""Zero-copy transport of numpy arrays to worker processes.

The process-backend Table-III grid ships the raw feature matrices and
their pre-binned code matrices to every worker exactly once, through
POSIX shared memory, instead of pickling hundreds of megabytes per task.
The ownership model is deliberately one-sided:

* the **parent** creates every segment through a
  :class:`SharedArrayBundle` and is the only process that ever unlinks
  one -- the bundle is a context manager, so segments are freed even
  when a worker crashes or is SIGKILLed mid-task,
* **workers** attach read-only views via :func:`attach_array` from the
  picklable :class:`ArraySpec` descriptors and never unlink anything.

Workers are always children of the creating session (pool workers,
watchdog requeue subprocesses), so they share the parent's
``multiprocessing`` resource tracker: attach-time registrations
deduplicate against the parent's create-time one instead of scheduling
a premature unlink, and if the whole session dies without running
``close`` the tracker reaps the segments -- the backstop that keeps a
SIGKILL from leaking ``/dev/shm`` entries.

Worker views are marked non-writeable: a grid cell that scribbled on
the shared code matrix would silently corrupt every sibling, so the
attempt raises instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["ArraySpec", "SharedArrayBundle", "attach_array", "detach_all"]


@dataclass(frozen=True)
class ArraySpec:
    """Picklable descriptor of one shared array.

    Carries everything a worker needs to rebuild a zero-copy view:
    the OS-level segment name plus the numpy shape and dtype string.
    """

    name: str
    shape: Tuple[int, ...]
    dtype: str


class SharedArrayBundle:
    """Parent-owned collection of shared-memory array segments.

    ``share`` copies an array into a fresh segment and returns its
    :class:`ArraySpec`; ``specs`` returns every descriptor keyed by the
    caller's label, ready to pickle into a pool initializer.  ``close``
    (also run on context exit) closes **and unlinks** every segment --
    the parent is the sole owner, so segment lifetime is exactly the
    bundle's lifetime regardless of what happens to the workers.
    """

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []
        self._specs: Dict[str, ArraySpec] = {}

    def share(self, key: str, array: np.ndarray) -> ArraySpec:
        """Copy ``array`` into a new segment registered under ``key``."""
        if key in self._specs:
            raise ValueError(f"key {key!r} already shared")
        array = np.ascontiguousarray(array)
        segment = shared_memory.SharedMemory(
            create=True, size=max(array.nbytes, 1)
        )
        self._segments.append(segment)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        spec = ArraySpec(
            name=segment.name, shape=tuple(array.shape), dtype=str(array.dtype)
        )
        self._specs[key] = spec
        return spec

    def specs(self) -> Dict[str, ArraySpec]:
        """Every shared descriptor, keyed by the label given to ``share``."""
        return dict(self._specs)

    def close(self) -> None:
        """Close and unlink every segment (idempotent)."""
        for segment in self._segments:
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover - platform noise
                pass
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._segments = []
        self._specs = {}

    def __enter__(self) -> "SharedArrayBundle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# Worker-side registry of attached segments.  The SharedMemory handles
# must outlive the array views they back (the buffer would be unmapped
# under the view otherwise), so they are held here until detach_all.
_ATTACHED: Dict[str, shared_memory.SharedMemory] = {}


def attach_array(spec: ArraySpec) -> np.ndarray:
    """Attach a read-only zero-copy view of a parent-shared array.

    Safe to call repeatedly with the same spec (one attach per segment
    per process).  The view is non-writeable by construction; see the
    module docstring for the ownership model.
    """
    segment = _ATTACHED.get(spec.name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=spec.name)
        _ATTACHED[spec.name] = segment
    view = np.ndarray(
        spec.shape, dtype=np.dtype(spec.dtype), buffer=segment.buf
    )
    view.flags.writeable = False
    return view


def detach_all() -> None:
    """Close every segment this process attached (worker teardown)."""
    for segment in _ATTACHED.values():
        try:
            segment.close()
        except (OSError, BufferError):  # pragma: no cover - platform noise
            pass
    _ATTACHED.clear()
