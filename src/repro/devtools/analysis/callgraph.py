"""Project-wide call graph with best-effort static resolution.

Resolution is name-based and deliberately modest: direct calls to
module-level functions (local or imported, including ``module.fn``
attribute chains), calls to nested functions of the enclosing scope,
and *references* to functions (a nested ``def`` passed to
``parallel_map`` creates an edge, because whoever receives the
reference may call it).  Method calls on arbitrary objects cannot be
resolved without type inference; the call site still records the
attribute name so name-matching rules (``.fit`` sinks) can use it.

Every call site is attributed to the *innermost* enclosing function:
statements inside a nested ``def`` belong to the nested function's
node in the graph, not its parent's.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.devtools.analysis.project import FunctionInfo, Project
from repro.devtools.rules.base import dotted_name

__all__ = [
    "CallGraph",
    "CallSite",
    "build_call_graph",
    "owned_nodes",
    "resolve_function_reference",
]


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function."""

    caller: str
    node: ast.Call
    callee: Optional[str]  # resolved project qualname, or None
    attr: Optional[str]  # terminal attribute name for method calls


@dataclass
class CallGraph:
    """Edges and call sites of the whole project."""

    sites: Dict[str, List[CallSite]] = field(default_factory=dict)
    edges: Dict[str, Set[str]] = field(default_factory=dict)

    def add(self, site: CallSite) -> None:
        self.sites.setdefault(site.caller, []).append(site)
        if site.callee is not None:
            self.edges.setdefault(site.caller, set()).add(site.callee)

    def add_edge(self, caller: str, callee: str) -> None:
        self.edges.setdefault(caller, set()).add(callee)

    def callees(self, qualname: str) -> Set[str]:
        return set(self.edges.get(qualname, set()))

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Transitive closure of ``roots`` over the edge relation."""
        seen: Set[str] = set()
        frontier = [root for root in roots]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.edges.get(current, ()))
        return seen


def owned_nodes(function: FunctionInfo) -> List[ast.AST]:
    """AST nodes belonging to ``function`` itself, nested defs excluded.

    Walks the function body but stops at nested function/lambda
    boundaries (their bodies belong to their own :class:`FunctionInfo`).
    The nested ``def``/``lambda`` node itself is yielded, so callers can
    see the reference without descending into it.
    """
    owned: List[ast.AST] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            owned.append(child)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            visit(child)

    visit(function.node)
    return owned


def _local_function_index(project: Project) -> Dict[str, Dict[str, str]]:
    """Per-function map: simple name -> qualname of its nested functions."""
    nested: Dict[str, Dict[str, str]] = {}
    for qualname in project.functions:
        if ".<locals>." in qualname:
            parent = qualname.rsplit(".<locals>.", 1)[0]
            simple = qualname.rsplit(".", 1)[-1]
            nested.setdefault(parent, {})[simple] = qualname
    return nested


def resolve_function_reference(
    project: Project,
    caller: FunctionInfo,
    expr: ast.expr,
    nested_index: Optional[Dict[str, Dict[str, str]]] = None,
) -> Optional[str]:
    """Resolve an expression naming a function to its project qualname."""
    nested_index = nested_index or _local_function_index(project)
    dotted = dotted_name(expr)
    if not dotted:
        return None
    head, _, rest = dotted.partition(".")
    # 1. nested function of the calling scope (walk outward).
    scope = caller.qualname
    while scope:
        local = nested_index.get(scope, {})
        if not rest and head in local:
            return local[head]
        scope = scope.rsplit(".<locals>.", 1)[0] if ".<locals>." in scope else ""
    # 2. class sibling: a method calling another method via self.
    if head in ("self", "cls") and caller.parent_class is not None and rest:
        prefix = caller.qualname.rsplit(".", 1)[0]
        candidate = f"{prefix}.{rest}"
        if candidate in project.functions:
            return candidate
    # 3. module-level / imported resolution.
    return project.resolve(caller.module, dotted)


def build_call_graph(project: Project) -> CallGraph:
    """Resolve every call site of every registered function."""
    graph = CallGraph()
    nested_index = _local_function_index(project)
    for qualname, function in project.functions.items():
        for node in owned_nodes(function):
            if isinstance(node, ast.Call):
                callee = resolve_function_reference(
                    project, function, node.func, nested_index
                )
                attr = node.func.attr if isinstance(node.func, ast.Attribute) else None
                graph.add(
                    CallSite(caller=qualname, node=node, callee=callee, attr=attr)
                )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                # A bare reference to a function (callback passing)
                # conservatively counts as a potential call.
                referenced = resolve_function_reference(
                    project, function, node, nested_index
                )
                if referenced is not None and referenced != qualname:
                    graph.add_edge(qualname, referenced)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Defining a nested function creates the edge lazily via
                # references; the definition alone is not a call.
                continue
        graph.sites.setdefault(qualname, [])
    return graph
