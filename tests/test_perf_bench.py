"""Tests for the perf-benchmark recording harness (repro.perf.bench)."""

from __future__ import annotations

import json

import pytest

from repro.perf.bench import (
    SCHEMA_VERSION,
    BenchRecorder,
    BenchTiming,
    load_report,
    regressions,
    time_call,
)


class TestTimeCall:
    def test_returns_result_and_nonnegative_wall(self):
        result, wall = time_call(lambda: 41 + 1)
        assert result == 42
        assert wall >= 0.0

    def test_repeats_keep_best(self):
        calls = []

        def work():
            calls.append(1)
            return len(calls)

        result, wall = time_call(work, repeats=3)
        assert result == 3  # last result
        assert len(calls) == 3
        assert wall >= 0.0

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeats=0)


class TestBenchTiming:
    def test_as_dict_merges_meta(self):
        entry = BenchTiming("stage", 1.5, repeats=2, n_rows=100)
        assert entry.as_dict() == {"wall_s": 1.5, "repeats": 2, "n_rows": 100}

    def test_negative_wall_rejected(self):
        with pytest.raises(ValueError):
            BenchTiming("stage", -0.1)


class TestBenchRecorder:
    def _recorder(self):
        rec = BenchRecorder("training", "smoke", n_jobs=4, git_sha="abc123")
        rec.record("slow", 2.0)
        rec.record("fast", 0.5)
        return rec

    def test_timed_records_and_returns(self):
        rec = self._recorder()
        assert rec.timed("stage", lambda: "out") == "out"
        assert rec.wall_s("stage") >= 0.0

    def test_speedup(self):
        rec = self._recorder()
        assert rec.speedup("opt", "slow", "fast") == pytest.approx(4.0)
        assert rec.as_dict()["speedups"]["opt"] == pytest.approx(4.0)

    def test_zero_candidate_is_inf(self):
        rec = self._recorder()
        rec.record("instant", 0.0)
        assert rec.speedup("div", "slow", "instant") == float("inf")

    def test_git_sha_from_environment(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_GIT_SHA", "deadbeef")
        assert BenchRecorder("training", "smoke").git_sha == "deadbeef"
        monkeypatch.delenv("REPRO_GIT_SHA")
        # Without the variable the recorder falls back to the checkout's
        # HEAD; only off a git repository does it stay None.
        monkeypatch.chdir(tmp_path)
        assert BenchRecorder("training", "smoke").git_sha is None

    def test_write_and_load_roundtrip(self, tmp_path):
        rec = self._recorder()
        rec.check("parity", True)
        path = rec.write(tmp_path / "nested" / "BENCH_training.json")
        report = load_report(path)
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["benchmark"] == "training"
        assert report["n_jobs"] == 4
        assert report["git_sha"] == "abc123"
        assert report["timings"]["slow"]["wall_s"] == 2.0
        assert report["checks"] == {"parity": True}

    def test_load_rejects_non_report(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError, match="timings"):
            load_report(path)

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"timings": {}, "schema_version": 99}))
        with pytest.raises(ValueError, match="schema_version"):
            load_report(path)


class TestRegressions:
    def _report(self, **walls):
        return {
            "timings": {name: {"wall_s": wall} for name, wall in walls.items()}
        }

    def test_flags_only_slowdowns_beyond_threshold(self):
        baseline = self._report(a=1.0, b=1.0, c=1.0)
        current = self._report(a=1.2, b=2.0, c=0.5)
        flagged = regressions(current, baseline, threshold=1.5)
        assert flagged == {"b": (1.0, 2.0)}

    def test_new_and_removed_stages_ignored(self):
        baseline = self._report(a=1.0, gone=1.0)
        current = self._report(a=1.0, new=50.0)
        assert regressions(current, baseline) == {}

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            regressions(self._report(), self._report(), threshold=0.0)
