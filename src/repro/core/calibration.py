"""Finite-sample conformal quantile computation (paper Eqs. 7 and 9).

Split CP and CQR both reduce to one number: the
:math:`\\lceil (M+1)(1-\\alpha) \\rceil / M`-th empirical quantile of the
calibration scores, where ``M`` is the calibration-set size.  The ``+1``
is what upgrades the in-sample quantile to a finite-sample guarantee for
an exchangeable test point; getting it off by one silently destroys the
guarantee, so it lives here once, fully tested, instead of being repeated
in every predictor.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "conformal_quantile",
    "conformal_quantile_sorted",
    "effective_coverage_level",
    "required_calibration_size",
]


def conformal_quantile(scores: np.ndarray, alpha: float) -> float:
    """The finite-sample-corrected ``(1 − alpha)`` quantile of the scores.

    Computes the ``ceil((M+1)(1−alpha))``-th smallest score.  When the
    required rank exceeds ``M`` (calibration set too small for the target
    coverage) the quantile is ``+inf``: the only interval with guaranteed
    coverage is the whole real line, and callers must handle that case
    rather than silently under-cover.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1 or scores.size == 0:
        raise ValueError(f"scores must be a non-empty 1-D array, got shape {scores.shape}")
    if np.any(np.isnan(scores)):
        raise ValueError("scores contain NaN")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    m = scores.size
    rank = math.ceil((m + 1) * (1.0 - alpha))
    if rank > m:
        return float("inf")
    # rank is 1-based; np.partition gives the rank-th smallest at index rank-1.
    return float(np.partition(scores, rank - 1)[rank - 1])


def conformal_quantile_sorted(sorted_scores: np.ndarray, alpha: float) -> float:
    """:func:`conformal_quantile` for scores already in ascending order.

    The rank-``k`` smallest element of a multiset does not depend on the
    input order, so this returns the same value bit-for-bit as
    :func:`conformal_quantile` -- but by direct indexing instead of an
    ``O(M)`` partition.  Callers that maintain a sorted calibration
    buffer (see :class:`repro.core.adaptive.AdaptiveConformalPredictor`)
    use it on every prediction; ascending order is *their* contract and
    is not re-verified here, which is what keeps the lookup ``O(1)``.
    """
    sorted_scores = np.asarray(sorted_scores, dtype=np.float64)
    if sorted_scores.ndim != 1 or sorted_scores.size == 0:
        raise ValueError(
            f"sorted_scores must be a non-empty 1-D array, got shape "
            f"{sorted_scores.shape}"
        )
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    m = sorted_scores.size
    rank = math.ceil((m + 1) * (1.0 - alpha))
    if rank > m:
        return float("inf")
    return float(sorted_scores[rank - 1])


def effective_coverage_level(n_calibration: int, alpha: float) -> float:
    """The marginal coverage actually guaranteed with ``M`` calibration points.

    Split conformal guarantees coverage at least
    ``ceil((M+1)(1−alpha)) / (M+1)``, which exceeds the nominal ``1−alpha``
    slightly (the discrete-rank overshoot).  Useful for reporting the real
    guarantee behind Table III's 90 % target with ~29 calibration chips.
    """
    if n_calibration < 1:
        raise ValueError(f"n_calibration must be >= 1, got {n_calibration}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    rank = math.ceil((n_calibration + 1) * (1.0 - alpha))
    return min(1.0, rank / (n_calibration + 1))


def required_calibration_size(alpha: float) -> int:
    """Smallest calibration size for which the quantile is finite.

    A finite conformal quantile needs ``ceil((M+1)(1−alpha)) <= M``, i.e.
    at least ``ceil(1/alpha) − 1`` calibration samples.  At the paper's
    ``alpha = 0.1`` this is 9 chips.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    return math.ceil(1.0 / alpha) - 1
