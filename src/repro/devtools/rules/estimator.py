"""REP106 -- the estimator contract: ``fit`` chains, ``predict`` is pure.

Every estimator in this repository follows the scikit-learn protocol
(:mod:`repro.models.base`): ``fit(X, y)`` returns ``self`` so calls
chain and :func:`~repro.models.base.clone`-based cross-validation
works, and prediction methods are *read-only* -- an estimator whose
``predict``/``predict_interval`` mutates ``self`` gives different
answers depending on how often it was queried, which destroys both
reproducibility and the exchangeability bookkeeping of the conformal
wrappers (the calibration state used at prediction time must be
exactly the state ``fit`` left behind).

Checks, per class in ``src``:

* ``fit`` must ``return self`` (an abstract body that only raises is
  exempt), and must not return anything else on any path;
* ``predict`` and every ``predict_*`` method must not assign to
  ``self.<attr>`` (including augmented assigns and ``setattr(self,
  ...)``); state updates belong in ``fit`` or an explicit ``update``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Union

from typing import TYPE_CHECKING

from repro.devtools.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.devtools.engine import ModuleContext
from repro.devtools.rules.base import Rule

__all__ = ["EstimatorContractRule"]

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _own_statements(function: _FunctionNode) -> List[ast.AST]:
    """All nodes of a function body, excluding nested function/class scopes."""
    collected: List[ast.AST] = []
    stack: List[ast.AST] = list(function.body)
    while stack:
        node = stack.pop()
        collected.append(node)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue  # different scope; its returns/assigns are not ours
        stack.extend(ast.iter_child_nodes(node))
    return collected


def _is_self_attribute(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _is_super_fit_call(node: ast.AST) -> bool:
    """Match the ``return super().fit(...)`` chaining idiom."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "fit"
        and isinstance(node.func.value, ast.Call)
        and isinstance(node.func.value.func, ast.Name)
        and node.func.value.func.id == "super"
    )


class EstimatorContractRule(Rule):
    """Enforce ``fit -> self`` and side-effect-free prediction methods."""

    rule_id = "REP106"
    name = "estimator-contract"
    summary = "fit returns self; predict/predict_* never assign to self"
    rationale = (
        "chainable fit is what clone/CV assume; a predict that mutates "
        "state makes answers depend on query history and invalidates "
        "the calibration snapshot conformal wrappers rely on"
    )
    scopes = frozenset({"src"})

    def visit_ClassDef(
        self, node: ast.ClassDef, context: ModuleContext
    ) -> Iterator[Diagnostic]:
        """Audit ``fit`` and prediction methods of one class."""
        for member in node.body:
            if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if member.name == "fit":
                yield from self._check_fit(member, node, context)
            elif member.name == "predict" or member.name.startswith("predict_"):
                yield from self._check_predict(member, node, context)

    def _check_fit(
        self, method: _FunctionNode, owner: ast.ClassDef, context: ModuleContext
    ) -> Iterator[Diagnostic]:
        own = _own_statements(method)
        returns = [n for n in own if isinstance(n, ast.Return)]
        raises = [n for n in own if isinstance(n, ast.Raise)]
        if not returns:
            if raises:
                return  # abstract/NotImplementedError-style stub
            yield self.diagnostic(
                method,
                context,
                f"{owner.name}.fit never returns; the estimator contract "
                "requires 'return self' so calls chain and clone()-based "
                "CV works",
            )
            return
        for statement in returns:
            value = statement.value
            if _is_super_fit_call(value):
                continue  # the parent's fit is held to the same contract
            if not (isinstance(value, ast.Name) and value.id == "self"):
                yield self.diagnostic(
                    statement,
                    context,
                    f"{owner.name}.fit must 'return self', not another "
                    "value; put derived results in trailing-underscore "
                    "attributes",
                )

    def _check_predict(
        self, method: _FunctionNode, owner: ast.ClassDef, context: ModuleContext
    ) -> Iterator[Diagnostic]:
        for statement in _own_statements(method):
            targets: List[ast.AST] = []
            if isinstance(statement, ast.Assign):
                targets = list(statement.targets)
            elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
                targets = [statement.target]
            elif (
                isinstance(statement, ast.Call)
                and isinstance(statement.func, ast.Name)
                and statement.func.id == "setattr"
                and statement.args
                and isinstance(statement.args[0], ast.Name)
                and statement.args[0].id == "self"
            ):
                yield self.diagnostic(
                    statement,
                    context,
                    f"{owner.name}.{method.name} calls setattr(self, ...); "
                    "prediction must not mutate estimator state",
                )
                continue
            for target in targets:
                flattened = (
                    target.elts if isinstance(target, (ast.Tuple, ast.List)) else [target]
                )
                if any(_is_self_attribute(t) for t in flattened):
                    yield self.diagnostic(
                        statement,
                        context,
                        f"{owner.name}.{method.name} assigns to self.*; "
                        "prediction must be read-only -- move state "
                        "updates to fit() or an explicit update() method",
                    )
