"""The deployable Vmin interval-prediction pipeline.

:class:`VminPredictionFlow` packages the paper's recommended recipe --
CFS feature selection, standardisation, a quantile-capable base model,
and split-CQR calibration -- behind a single fit/predict interface, so a
test-floor integration only deals with feature matrices in and calibrated
intervals out.  It also exposes the selected feature names, the conformal
correction, and the effective finite-sample guarantee for audit trails
(automotive quality flows require exactly this kind of traceability).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.calibration import effective_coverage_level
from repro.core.cqr import ConformalizedQuantileRegressor
from repro.core.intervals import PredictionIntervals
from repro.features.selection import CFSSelectedRegressor
from repro.models.base import BaseRegressor, check_X_y, check_fitted, clone
from repro.models.oblivious import ObliviousBoostingRegressor

__all__ = ["VminPredictionFlow"]


class VminPredictionFlow:
    """Select -> scale -> fit quantile band -> conformalize -> predict.

    Parameters
    ----------
    base_model:
        Unfitted quantile-capable template.  ``None`` uses the paper's
        best variant, CQR CatBoost (oblivious boosting, 100 trees).
    alpha:
        Target miscoverage (paper: 0.1).
    n_features:
        CFS subset size; ``None`` skips selection and feeds all columns
        (the right choice for tree-based base models, Section IV-C).
    scale:
        Standardise selected features (recommended for NN/GP bases;
        harmless for trees).
    calibration_fraction:
        Held-out fraction for conformal calibration (paper: 0.25).
    random_state:
        Seed for the internal calibration split.
    """

    def __init__(
        self,
        base_model: Optional[BaseRegressor] = None,
        alpha: float = 0.1,
        n_features: Optional[int] = None,
        scale: bool = False,
        calibration_fraction: float = 0.25,
        random_state: Optional[int] = None,
    ) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if n_features is not None and n_features < 1:
            raise ValueError(f"n_features must be >= 1, got {n_features}")
        self.base_model = base_model
        self.alpha = alpha
        self.n_features = n_features
        self.scale = scale
        self.calibration_fraction = calibration_fraction
        self.random_state = random_state
        self.cqr_: Optional[ConformalizedQuantileRegressor] = None

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        feature_names: Optional[List[str]] = None,
    ) -> "VminPredictionFlow":
        """Fit the full pipeline on training chips.

        ``feature_names``, if given, must align with the columns of ``X``
        and enables :attr:`selected_feature_names_`.
        """
        X, y = check_X_y(X, y)
        if feature_names is not None and len(feature_names) != X.shape[1]:
            raise ValueError(
                f"{len(feature_names)} feature names for {X.shape[1]} columns"
            )
        self._feature_names = list(feature_names) if feature_names is not None else None

        template = self.base_model
        if template is None:
            template = ObliviousBoostingRegressor(
                quantile=0.5, random_state=self.random_state
            )
        elif "quantile" not in template.get_params():
            raise ValueError(
                f"{type(template).__name__} has no 'quantile' parameter; "
                "the flow needs a quantile-capable base model"
            )
        if self.n_features is not None or self.scale:
            # Selection/scaling live INSIDE the template so the conformal
            # split refits them on the proper-training part only --
            # selecting on data that later calibrates the intervals voids
            # the coverage guarantee (see CFSSelectedRegressor).
            template = CFSSelectedRegressor(
                clone(template),
                k=self.n_features if self.n_features is not None else X.shape[1],
                scale=self.scale,
                quantile=0.5,
            )
        self.cqr_ = ConformalizedQuantileRegressor(
            clone(template),
            alpha=self.alpha,
            calibration_fraction=self.calibration_fraction,
            random_state=self.random_state,
        ).fit(X, y)
        return self

    @property
    def selected_feature_names_(self):
        """Names chosen by the lower quantile model's CFS pass (or all).

        With selection enabled the two quantile models may in principle
        pick different subsets on the proper-training split; the lower
        model's choice is reported as the representative one.
        """
        check_fitted(self, "cqr_")
        if self.n_features is None:
            return self._feature_names
        if self._feature_names is None:
            return None
        selected_model = self.cqr_.band_.lower_
        return [self._feature_names[i] for i in selected_model.selector_.selected_]

    def predict_interval(self, X: np.ndarray) -> PredictionIntervals:
        """Calibrated Vmin interval per chip (V)."""
        check_fitted(self, "cqr_")
        return self.cqr_.predict_interval(np.asarray(X, dtype=np.float64))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Interval midpoint as a point estimate (V)."""
        return self.predict_interval(X).midpoint

    @property
    def guaranteed_coverage_(self) -> float:
        """The finite-sample marginal guarantee actually achieved.

        Slightly above ``1 − alpha`` due to the discrete conformal rank;
        see :func:`repro.core.calibration.effective_coverage_level`.
        """
        check_fitted(self, "cqr_")
        return effective_coverage_level(self.cqr_.n_calibration_, self.alpha)

    @property
    def conformal_correction_(self) -> Tuple[float, float]:
        """The (lower, upper) margins added to the raw quantile band (V)."""
        check_fitted(self, "cqr_")
        return self.cqr_.quantile_low_, self.cqr_.quantile_high_
