"""Crash-safe artifact I/O: write-temp-then-rename plus checksums.

Every artifact this repository persists -- measurement ``.npz`` lots,
flow-log CSVs, benchmark JSON reports, grid result files -- used to be
written in place, so a crash mid-write left a truncated file that a
later reader would half-parse.  These helpers make every write atomic
at the filesystem level: content goes to a temporary file *in the same
directory* (same filesystem, so the final ``os.replace`` is atomic),
is flushed and fsynced, and only then renamed over the destination.
Readers therefore observe either the old complete file or the new
complete file, never a torn one.

Checksum helpers round the story out: :func:`file_checksum` computes a
SHA-256, :func:`write_checksum` drops a ``<name>.sha256`` sidecar, and
:func:`verify_artifact` validates a file against its sidecar (or an
explicit digest) before anything trusts its contents.  Validation
failures are typed: a *missing* sidecar is an :class:`ArtifactError`
(the artifact may be fine, the bookkeeping is not), while a digest
mismatch or an unparsable sidecar is an
:class:`ArtifactCorruptionError` -- the content itself cannot be
trusted, and callers like the model registry quarantine the file.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, IO, Iterator, Optional, Union

from contextlib import contextmanager

__all__ = [
    "ArtifactCorruptionError",
    "ArtifactError",
    "atomic_path",
    "atomic_write",
    "file_checksum",
    "verify_artifact",
    "write_checksum",
    "write_json_atomic",
    "write_text_atomic",
]

PathLike = Union[str, Path]

_CHECKSUM_SUFFIX = ".sha256"


class ArtifactError(ValueError):
    """An artifact failed validation (checksum mismatch, missing sidecar).

    Subclasses ``ValueError`` so pre-existing ``except ValueError``
    handlers (and the CLI's exit-2 mapping) keep working -- the
    backward-compatible alias for code written against the PR-4 API.
    """


class ArtifactCorruptionError(ArtifactError):
    """An artifact's content disagrees with its recorded checksum.

    The strongest validation failure: the bytes on disk are not the
    bytes that were published (bit rot, torn copy, tampering, a writer
    bypassing the atomic path).  Readers must not use the content;
    the model registry responds by quarantining the artifact and
    falling back to the last known-good version.
    """


@contextmanager
def atomic_path(path: PathLike, suffix: Optional[str] = None) -> Iterator[Path]:
    """Yield a temporary path that atomically replaces ``path`` on success.

    For writer APIs that insist on opening a path themselves
    (``np.savez_compressed``, ``csv`` pipelines).  The temporary file
    lives next to the destination so the final ``os.replace`` never
    crosses filesystems; ``suffix`` defaults to the destination's own
    suffix (some writers -- numpy -- append an extension when the name
    has none).  On any exception the temporary file is removed and the
    destination left untouched.  The destination's parent directory
    must already exist -- a bad output path fails here, loudly, exactly
    as an in-place ``open`` would.
    """
    path = Path(path)
    descriptor, name = tempfile.mkstemp(
        dir=path.parent,
        prefix=f".{path.name}.",
        suffix=path.suffix if suffix is None else suffix,
    )
    os.close(descriptor)
    tmp = Path(name)
    try:
        yield tmp
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


@contextmanager
def atomic_write(
    path: PathLike,
    mode: str = "w",
    encoding: Optional[str] = None,
    newline: Optional[str] = None,
) -> Iterator[IO[Any]]:
    """Open a handle whose content atomically replaces ``path`` on success.

    Text mode defaults to UTF-8.  The handle is flushed and fsynced
    before the rename, so once the block exits the new content is
    durable; if the block raises, the destination keeps its previous
    content (or stays absent).
    """
    if "r" in mode or "+" in mode or "a" in mode:
        raise ValueError(
            f"atomic_write only supports fresh writes ('w'/'x' modes), got {mode!r}"
        )
    if "b" not in mode and encoding is None:
        encoding = "utf-8"
    with atomic_path(path) as tmp:
        with open(tmp, mode, encoding=encoding, newline=newline) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())


def write_text_atomic(path: PathLike, text: str) -> Path:
    """Atomically write ``text`` (UTF-8) to ``path``; returns the path."""
    path = Path(path)
    with atomic_write(path, "w") as handle:
        handle.write(text)
    return path


def write_json_atomic(path: PathLike, value: Any, indent: Optional[int] = 2) -> Path:
    """Atomically write ``value`` as JSON to ``path``; returns the path.

    Keys are sorted so the artifact is byte-stable for identical
    content -- two runs producing the same results produce the same
    file, which is what the CI resilience job diffs.
    """
    path = Path(path)
    text = json.dumps(value, indent=indent, sort_keys=True) + "\n"
    return write_text_atomic(path, text)


def file_checksum(path: PathLike) -> str:
    """SHA-256 hex digest of a file's content (streamed)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _sidecar(path: Path) -> Path:
    return path.with_name(path.name + _CHECKSUM_SUFFIX)


def write_checksum(path: PathLike) -> Path:
    """Write the ``<name>.sha256`` sidecar for ``path``; returns the sidecar.

    The sidecar itself is written atomically, and uses the conventional
    ``<digest>  <filename>`` format ``sha256sum --check`` understands.
    """
    path = Path(path)
    digest = file_checksum(path)
    sidecar = _sidecar(path)
    write_text_atomic(sidecar, f"{digest}  {path.name}\n")
    return sidecar


def verify_artifact(path: PathLike, expected: Optional[str] = None) -> str:
    """Validate ``path`` against a digest; returns the actual digest.

    ``expected=None`` reads the ``<name>.sha256`` sidecar written by
    :func:`write_checksum`.  Raises :class:`ArtifactError` when the
    sidecar is missing, and :class:`ArtifactCorruptionError` when the
    sidecar is unparsable or the digests disagree -- readers call this
    before trusting a restored artifact.
    """
    path = Path(path)
    if expected is None:
        sidecar = _sidecar(path)
        if not sidecar.exists():
            raise ArtifactError(
                f"{path}: no checksum sidecar {sidecar.name}; "
                "pass expected= or call write_checksum first"
            )
        fields = sidecar.read_text(encoding="utf-8").split()
        if not fields or len(fields[0]) != 64:
            raise ArtifactCorruptionError(
                f"{sidecar}: unparsable checksum sidecar"
            )
        expected = fields[0]
    actual = file_checksum(path)
    if actual != expected:
        raise ArtifactCorruptionError(
            f"{path}: checksum mismatch (expected {expected[:12]}..., "
            f"got {actual[:12]}...); the artifact is corrupt or was "
            "replaced outside the atomic-write path"
        )
    return actual
