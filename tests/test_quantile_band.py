"""Tests for QuantileBandRegressor and PackageDefaultQuantileBand."""

import numpy as np
import pytest

from repro.models.linear import LinearRegression, QuantileLinearRegression
from repro.models.oblivious import ObliviousBoostingRegressor
from repro.models.quantile import PackageDefaultQuantileBand, QuantileBandRegressor


class TestQuantileBandRegressor:
    def test_quantile_targets_from_alpha(self):
        band = QuantileBandRegressor(QuantileLinearRegression(), alpha=0.2)
        assert band.quantiles == (0.1, 0.9)

    def test_template_not_mutated(self, rng):
        template = QuantileLinearRegression(quantile=0.5)
        X = rng.normal(size=(80, 2))
        y = X[:, 0] + rng.normal(size=80)
        QuantileBandRegressor(template, alpha=0.1).fit(X, y)
        assert template.quantile == 0.5
        assert template.coef_ is None

    def test_band_members_have_target_quantiles(self, rng):
        X = rng.normal(size=(60, 2))
        y = rng.normal(size=60)
        band = QuantileBandRegressor(QuantileLinearRegression(), alpha=0.1).fit(X, y)
        assert band.lower_.quantile == pytest.approx(0.05)
        assert band.upper_.quantile == pytest.approx(0.95)

    def test_bounds_ordered_after_fix(self, rng):
        X = rng.normal(size=(100, 3))
        y = X[:, 0] + rng.normal(size=100)
        band = QuantileBandRegressor(QuantileLinearRegression(), alpha=0.1).fit(X, y)
        lower, upper = band.predict_interval(X)
        assert np.all(lower <= upper)
        assert 0.0 <= band.crossing_rate_ <= 1.0

    def test_band_covers_roughly_on_iid_data(self, rng):
        X = rng.normal(size=(800, 2))
        y = X[:, 0] + rng.normal(size=800)
        band = QuantileBandRegressor(QuantileLinearRegression(), alpha=0.1).fit(
            X[:600], y[:600]
        )
        lower, upper = band.predict_interval(X[600:])
        coverage = np.mean((y[600:] >= lower) & (y[600:] <= upper))
        assert 0.8 < coverage < 0.98

    def test_predict_is_midpoint(self, rng):
        X = rng.normal(size=(60, 2))
        y = rng.normal(size=60)
        band = QuantileBandRegressor(QuantileLinearRegression(), alpha=0.1).fit(X, y)
        lower, upper = band.predict_interval(X)
        np.testing.assert_allclose(band.predict(X), (lower + upper) / 2)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            QuantileBandRegressor(QuantileLinearRegression(), alpha=0.0)

    def test_rejects_non_quantile_template_at_fit(self, rng):
        X = rng.normal(size=(30, 2))
        band = QuantileBandRegressor(LinearRegression(), alpha=0.1)
        with pytest.raises(ValueError, match="quantile"):
            band.fit(X, rng.normal(size=30))

    def test_predict_before_fit(self):
        band = QuantileBandRegressor(QuantileLinearRegression())
        with pytest.raises(Exception):
            band.predict_interval(np.zeros((2, 2)))


class TestPackageDefaultQuantileBand:
    def test_both_members_trained_at_loss_quantile(self, rng):
        X = rng.normal(size=(60, 3))
        y = X[:, 0] + rng.normal(size=60)
        band = PackageDefaultQuantileBand(
            ObliviousBoostingRegressor(n_estimators=5, quantile=0.5),
            random_state=0,
        ).fit(X, y)
        assert band.lower_.quantile == 0.5
        assert band.upper_.quantile == 0.5

    def test_members_differ_only_by_seed(self, rng):
        X = rng.normal(size=(60, 3))
        y = X[:, 0] + rng.normal(size=60)
        band = PackageDefaultQuantileBand(
            ObliviousBoostingRegressor(n_estimators=5, quantile=0.5),
            random_state=0,
        ).fit(X, y)
        assert band.lower_.random_state != band.upper_.random_state

    def test_band_is_pathologically_narrow(self, rng):
        """The defining failure mode: near-zero width vs the target span."""
        X = rng.normal(size=(120, 3))
        y = X[:, 0] + rng.normal(size=120)
        band = PackageDefaultQuantileBand(
            ObliviousBoostingRegressor(n_estimators=40, quantile=0.5),
            random_state=0,
        ).fit(X, y)
        lower, upper = band.predict_interval(X)
        proper = QuantileBandRegressor(
            ObliviousBoostingRegressor(n_estimators=40, quantile=0.5, random_state=0),
            alpha=0.1,
        ).fit(X, y)
        plower, pupper = proper.predict_interval(X)
        assert np.mean(upper - lower) < 0.3 * np.mean(pupper - plower)

    def test_bounds_ordered(self, rng):
        X = rng.normal(size=(50, 2))
        y = rng.normal(size=50)
        band = PackageDefaultQuantileBand(
            ObliviousBoostingRegressor(n_estimators=5, quantile=0.5),
            random_state=1,
        ).fit(X, y)
        lower, upper = band.predict_interval(X)
        assert np.all(lower <= upper)

    def test_rejects_bad_loss_quantile(self):
        with pytest.raises(ValueError, match="loss_quantile"):
            PackageDefaultQuantileBand(
                ObliviousBoostingRegressor(quantile=0.5), loss_quantile=1.0
            )
