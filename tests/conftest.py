"""Shared fixtures for the test suite.

The expensive fixtures (a full synthetic lot) are session-scoped: the
dataset is deterministic for a given seed, so sharing one instance across
tests is safe and keeps the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.silicon import SiliconDataset


@pytest.fixture(scope="session")
def lot() -> SiliconDataset:
    """A full-size deterministic synthetic lot (156 chips)."""
    return SiliconDataset.generate(seed=1234)


@pytest.fixture(scope="session")
def small_lot() -> SiliconDataset:
    """A reduced lot for tests that refit models repeatedly."""
    return SiliconDataset.generate(n_chips=60, seed=99)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture()
def linear_data(rng):
    """Well-conditioned linear regression data: (X, y, coef, intercept)."""
    n, d = 200, 5
    X = rng.normal(size=(n, d))
    coef = np.array([1.5, -2.0, 0.5, 0.0, 3.0])
    intercept = 0.7
    y = X @ coef + intercept + rng.normal(scale=0.05, size=n)
    return X, y, coef, intercept


@pytest.fixture()
def hetero_data(rng):
    """Heteroscedastic data where adaptive intervals beat constant ones.

    The noise scale grows monotonically with the first feature so that
    even a *linear* quantile band can express the width profile.
    """
    n = 600
    X = rng.uniform(-2, 2, size=(n, 3))
    noise_scale = 0.1 + 0.5 * (X[:, 0] + 2.0)
    y = 2.0 * X[:, 0] + X[:, 1] + rng.normal(scale=noise_scale)
    return X, y
