"""Per-wafer-zone coverage guarantees with Mondrian conformal prediction.

Automotive quality contracts are rarely about the *average* chip: a 90 %
marginal guarantee can quietly spend its misses on edge dies (which run
systematically different silicon thanks to the radial process signature).
Mondrian conformal prediction calibrates one quantile per chip group and
thereby guarantees coverage *within every group*.

The demo generates a lot with wafer hierarchy enabled, groups chips into
equal-population centre/mid/edge radius zones, and compares marginal
split CP against Mondrian split CP zone by zone -- then prints the
per-zone margins the Mondrian calibration actually chose, which is the
quantitative answer to "how different is edge silicon?".

Run:
    python examples/wafer_zone_guarantees.py [--smoke]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import MondrianConformalRegressor, SplitConformalRegressor
from repro.eval.diagnostics import coverage_by_group
from repro.features.selection import CFSSelectedRegressor
from repro.models import LinearRegression
from repro.silicon import SiliconDataset, WaferModel

ZONE_NAMES = ("centre", "mid", "edge")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--seed", type=int, default=21)
    args = parser.parse_args()

    wafer_model = WaferModel(radial_amplitude_v=0.012, radial_sigma_v=0.003)
    dataset = SiliconDataset.generate(seed=args.seed, wafer_model=wafer_model)
    X_raw, _ = dataset.features(0)
    y = dataset.target(-45.0, 0) * 1000.0  # mV, the zone-sensitive corner

    radius = np.hypot(dataset.wafer.die_xy[:, 0], dataset.wafer.die_xy[:, 1])
    boundaries = np.quantile(radius, [1 / 3, 2 / 3])
    zones = np.searchsorted(boundaries, radius, side="right").astype(float)
    X = np.hstack([X_raw, zones[:, None]])  # zone label rides as a column

    def group_function(Z):
        return Z[:, -1].astype(int)

    rng = np.random.default_rng(args.seed)
    permutation = rng.permutation(dataset.n_chips)
    X, y = X[permutation], y[permutation]
    X_train, y_train = X[:117], y[:117]
    X_test, y_test = X[117:], y[117:]

    k = 6 if args.smoke else 10
    marginal = SplitConformalRegressor(
        CFSSelectedRegressor(LinearRegression(), k=k), alpha=0.1, random_state=0
    ).fit(X_train, y_train)
    mondrian = MondrianConformalRegressor(
        CFSSelectedRegressor(LinearRegression(), k=k),
        group_function,
        alpha=0.1,
        calibration_fraction=0.4,
        random_state=0,
    ).fit(X_train, y_train)

    print("per-zone coverage on held-out chips (target 90%):\n")
    print("zone    | marginal CP | Mondrian CP")
    print("--------+-------------+------------")
    test_zones = group_function(X_test)
    marginal_report = coverage_by_group(
        marginal.predict_interval(X_test), y_test, test_zones
    )
    mondrian_report = coverage_by_group(
        mondrian.predict_interval(X_test), y_test, test_zones
    )
    for label, m_cov, q_cov in zip(
        marginal_report.groups, marginal_report.coverages, mondrian_report.coverages
    ):
        print(f"{ZONE_NAMES[int(label)]:7s} | {m_cov:11.1%} | {q_cov:.1%}")

    print("\nMondrian per-zone conformal margins (mV):")
    for label in sorted(mondrian.group_quantiles_):
        count = mondrian.group_counts_[label]
        margin = mondrian.group_quantiles_[label]
        print(
            f"  {ZONE_NAMES[int(label)]:7s}: +/-{margin:5.1f} mV "
            f"(from {count} calibration chips)"
        )
    print(
        "\nmarginal CP uses one margin of "
        f"+/-{marginal.quantile_:.1f} mV for every zone"
    )


if __name__ == "__main__":
    main()
