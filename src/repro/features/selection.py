"""Feature-selection wrappers around CFS.

The paper (Section IV-C) applies CFS "to pick 1 to 10 features as input
data and report the best testing scores".  :class:`BestKSweepSelector`
automates that sweep: it fits CFS once, then evaluates a user-supplied
estimator at every subset size with an internal validation split and
keeps the size with the best score.  :class:`SelectKBest` is the simpler
univariate baseline (top-k by |correlation|).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.models.base import BaseRegressor, check_random_state, check_X_y, clone
from repro.features.cfs import CFSSelector
from repro.features.correlation import feature_target_correlation

__all__ = ["BestKSweepSelector", "CFSSelectedRegressor", "SelectKBest"]


class CFSSelectedRegressor(BaseRegressor):
    """An estimator that performs CFS selection *inside* its own ``fit``.

    Composing selection into the estimator -- instead of selecting once on
    the full training set and fitting models on the projected matrix -- is
    what keeps conformal wrappers honest: split CP/CQR clone and refit
    their base model on the proper-training part only, so the feature
    subset is then chosen without ever seeing the calibration chips.  With
    ~2000 candidate channels and ~100 chips, selection that peeks at the
    calibration set picks spuriously-correlated channels whose optimism
    transfers to the calibration scores and silently destroys the
    finite-sample guarantee (empirically: 20-30 points of lost coverage).

    Parameters
    ----------
    estimator:
        Unfitted inner model template.
    k:
        CFS subset size.
    scale:
        Standardise the selected features before fitting (for NN/GP).
    quantile:
        Optional passthrough: when set, the inner template is cloned with
        this ``quantile`` value, which lets
        :class:`~repro.models.quantile.QuantileBandRegressor` retarget a
        wrapped template exactly like a bare one.
    """

    def __init__(
        self,
        estimator: BaseRegressor,
        k: int = 10,
        scale: bool = False,
        quantile: Optional[float] = None,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.estimator = estimator
        self.k = k
        self.scale = scale
        self.quantile = quantile
        self.model_: Optional[BaseRegressor] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "CFSSelectedRegressor":
        from repro.features.preprocessing import StandardScaler

        X, y = check_X_y(X, y)
        self.selector_ = CFSSelector(k_max=self.k).fit(X, y)
        X = self.selector_.transform(X)
        if self.scale:
            self.scaler_ = StandardScaler().fit(X)
            X = self.scaler_.transform(X)
        else:
            self.scaler_ = None
        if self.quantile is None:
            self.model_ = clone(self.estimator)
        else:
            self.model_ = clone(self.estimator, quantile=self.quantile)
        self.model_.fit(X, y)
        return self

    def _transform(self, X: np.ndarray) -> np.ndarray:
        X = self.selector_.transform(X)
        if self.scaler_ is not None:
            X = self.scaler_.transform(X)
        return X

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.model_ is None:
            raise RuntimeError("CFSSelectedRegressor is not fitted")
        return self.model_.predict(self._transform(np.asarray(X, dtype=np.float64)))

    def predict_interval(self, X: np.ndarray):
        if self.model_ is None:
            raise RuntimeError("CFSSelectedRegressor is not fitted")
        if not hasattr(self.model_, "predict_interval"):
            raise TypeError(
                f"{type(self.model_).__name__} has no predict_interval()"
            )
        return self.model_.predict_interval(
            self._transform(np.asarray(X, dtype=np.float64))
        )


class SelectKBest:
    """Keep the ``k`` features with the largest |correlation| to the target."""

    def __init__(self, k: int = 10, method: str = "pearson") -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.method = method
        self.selected_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "SelectKBest":
        X, y = check_X_y(X, y)
        scores = np.abs(feature_target_correlation(X, y, self.method))
        k = min(self.k, X.shape[1])
        # argsort is ascending; take the top-k and re-sort by index for
        # deterministic column order.
        top = np.sort(np.argsort(scores)[::-1][:k])
        self.selected_ = top
        self.scores_ = scores
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.selected_ is None:
            raise RuntimeError("SelectKBest is not fitted")
        return np.asarray(X, dtype=np.float64)[:, self.selected_]

    def fit_transform(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.fit(X, y).transform(X)


class BestKSweepSelector:
    """CFS subset-size sweep with validation-based size choice.

    Parameters
    ----------
    estimator_factory:
        Zero-argument callable returning a fresh unfitted estimator; called
        once per candidate subset size.
    k_range:
        Candidate subset sizes (paper: ``range(1, 11)``).
    validation_fraction:
        Fraction of the training data held out to score each size.
    method:
        Correlation flavour for CFS.
    random_state:
        Seed for the validation split.

    Attributes
    ----------
    best_k_:
        Chosen subset size.
    selected_:
        Feature indices of the chosen subset.
    sweep_scores_:
        Validation :math:`R^2` per candidate size, aligned with ``k_range``.
    """

    def __init__(
        self,
        estimator_factory: Callable[[], object],
        k_range: Sequence[int] = tuple(range(1, 11)),
        validation_fraction: float = 0.25,
        method: str = "pearson",
        random_state: Optional[int] = None,
    ) -> None:
        if not k_range:
            raise ValueError("k_range must be non-empty")
        if any(k < 1 for k in k_range):
            raise ValueError(f"k_range entries must be >= 1, got {list(k_range)}")
        if not 0.0 < validation_fraction < 1.0:
            raise ValueError(
                f"validation_fraction must be in (0, 1), got {validation_fraction}"
            )
        self.estimator_factory = estimator_factory
        self.k_range = tuple(k_range)
        self.validation_fraction = validation_fraction
        self.method = method
        self.random_state = random_state
        self.best_k_: Optional[int] = None
        self.selected_: Optional[List[int]] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BestKSweepSelector":
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        n = X.shape[0]
        n_val = max(1, int(round(self.validation_fraction * n)))
        if n_val >= n:
            raise ValueError("validation split leaves no training data")
        permutation = rng.permutation(n)
        val_idx = permutation[:n_val]
        train_idx = permutation[n_val:]

        cfs = CFSSelector(k_max=max(self.k_range), method=self.method)
        cfs.fit(X[train_idx], y[train_idx])
        available = len(cfs.selected_)

        scores: List[float] = []
        best_score = -np.inf
        best_k = min(self.k_range)
        for k in self.k_range:
            if k > available:
                scores.append(float("nan"))
                continue
            columns = cfs.subset(k)
            model = self.estimator_factory()
            model.fit(X[np.ix_(train_idx, columns)], y[train_idx])
            score = model.score(X[np.ix_(val_idx, columns)], y[val_idx])
            scores.append(float(score))
            if score > best_score:
                best_score = score
                best_k = k

        self.sweep_scores_ = scores
        self.best_k_ = best_k
        self.selected_ = cfs.subset(min(best_k, available))
        self._cfs = cfs
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.selected_ is None:
            raise RuntimeError("BestKSweepSelector is not fitted")
        return np.asarray(X, dtype=np.float64)[:, self.selected_]

    def fit_transform(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.fit(X, y).transform(X)
