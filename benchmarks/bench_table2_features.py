"""Table II -- input feature inventory of the (synthetic) dataset.

The paper's Table II describes the dataset rather than a result:
channel counts, measurement temperatures, and read points per feature
class.  This benchmark regenerates the same inventory from the actual
generated lot -- by construction it must match the paper's quantities
exactly (156 chips, 1800 parametric, 168 ROD, 10 CPD) -- and doubles as
a timing benchmark for full-lot generation.
"""

from __future__ import annotations

import numpy as np
from conftest import publish

from repro.eval.reporting import format_table
from repro.silicon import (
    CPD_TEMPERATURE_C,
    ROD_TEMPERATURE_C,
    SiliconDataset,
)


def _render(dataset) -> str:
    parametric_temps = sorted(set(dataset.parametric_temperatures.tolist()))
    rows = [
        [
            "Quantity",
            dataset.parametric.shape[1],
            len(dataset.rod_names),
            len(dataset.cpd_names),
        ],
        [
            "Temperature (degC)",
            ", ".join(f"{t:g}" for t in parametric_temps),
            f"{ROD_TEMPERATURE_C:g}",
            f"{CPD_TEMPERATURE_C:g}",
        ],
        [
            "Read point (hour)",
            "0",
            ", ".join(str(h) for h in dataset.read_points),
            ", ".join(str(h) for h in dataset.read_points),
        ],
    ]
    table = format_table(
        ["Attribute", "Parametric", "On-chip (ROD)", "On-chip (CPD)"],
        rows,
        title="Table II | input feature description (as generated)",
    )
    vmin_rows = []
    for temperature in dataset.temperatures:
        fresh = dataset.vmin[(temperature, dataset.read_points[0])]
        aged = dataset.vmin[(temperature, dataset.read_points[-1])]
        vmin_rows.append(
            [
                f"{temperature:g}C",
                float(np.median(fresh) * 1e3),
                float(np.std(fresh) * 1e3),
                float(np.median(aged) * 1e3),
                float(np.std(aged) * 1e3),
            ]
        )
    population = format_table(
        [
            "Corner",
            f"median @{dataset.read_points[0]}h (mV)",
            "sigma (mV)",
            f"median @{dataset.read_points[-1]}h (mV)",
            "sigma (mV)",
        ],
        vmin_rows,
        title=(
            f"Population summary | {dataset.n_chips} chips, "
            f"{int(dataset.defect_mask().sum())} latent-defective"
        ),
    )
    return table + "\n\n" + population


def test_table2_feature_inventory(benchmark, dataset):
    # Time a full-lot regeneration (the substrate cost downstream users pay),
    # then render the inventory from the session lot.
    benchmark.pedantic(
        lambda: SiliconDataset.generate(seed=1), rounds=1, iterations=1
    )
    publish("table2_features", _render(dataset))
