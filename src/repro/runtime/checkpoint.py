"""Append-only run journal: checkpoint/resume for experiment grids.

A multi-hour grid (Tables I-IV: model x alpha x seed x corner cells)
must survive a SIGKILL.  The journal is the simplest structure with
that property: one JSONL file, one line per completed cell, appended
with flush+fsync so a crash can only ever lose the line being written.
On resume, completed cells are skipped and their recorded results
reused -- bit-identical to an uninterrupted run, because JSON round-
trips Python floats exactly (``float(repr(x)) == x``).

File layout (``schema_version`` 1)::

    {"kind": "header", "schema_version": 1, "meta": {...}}
    {"kind": "cell", "fingerprint": "<sha256>", "key": [...], "payload": {...}}
    ...

Cells are keyed by a *fingerprint*: the SHA-256 of the canonical JSON
of everything that determines the result (grid kind, model/method name,
temperature, read point, feature set, alpha, profile, seed, git sha).
Any configuration change -- a different profile budget, a new commit --
changes the fingerprint, so stale journal entries are never silently
reused; they are simply not matched.

Truncated final lines (the crash signature) are tolerated and dropped;
corruption *before* the final line means the file was edited or the
disk lied, and raises :class:`JournalError` rather than resuming from
bad state.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Union

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "JournalError",
    "RunJournal",
    "canonical_json",
    "cell_fingerprint",
]

JOURNAL_SCHEMA_VERSION = 1


class JournalError(ValueError):
    """A journal file violates the schema (corrupt, wrong version)."""


def canonical_json(value: Any) -> str:
    """Serialise ``value`` to canonical JSON (sorted keys, no spaces).

    The canonical form is what gets hashed into fingerprints, so two
    dicts with the same content always fingerprint identically
    regardless of insertion order.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def cell_fingerprint(fields: Mapping[str, Any]) -> str:
    """Stable SHA-256 hex fingerprint of a cell's configuration.

    ``fields`` must be JSON-serialisable and must contain *everything*
    that determines the cell's result; see the module docstring for the
    grid convention.
    """
    if not fields:
        raise ValueError("fingerprint fields must be non-empty")
    digest = hashlib.sha256(canonical_json(dict(fields)).encode("utf-8"))
    return digest.hexdigest()


class RunJournal:
    """Append-only JSONL journal of completed grid cells.

    Parameters
    ----------
    path:
        Journal file location.  A missing file means a fresh run; the
        header line is written on the first :meth:`record`.
    meta:
        Free-form run metadata stored in the header (grid kind, profile
        name, git sha).  Informational only -- resume correctness rests
        on fingerprints, not on the header.
    """

    def __init__(
        self,
        path: Union[str, Path],
        meta: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.path = Path(path)
        self._meta: Dict[str, Any] = dict(meta) if meta else {}
        self._header_written = self.path.exists() and self.path.stat().st_size > 0
        # Reentrant: record() holds the lock across the header check and
        # the cell append so concurrent thread workers interleave whole
        # lines, never fragments.
        self._lock = threading.RLock()

    @property
    def meta(self) -> Dict[str, Any]:
        """Header metadata: recorded on disk if present, else pending."""
        if self.path.exists():
            for entry in self._entries():
                if entry.get("kind") == "header":
                    return dict(entry.get("meta", {}))
                break
        return dict(self._meta)

    def _entries(self) -> Iterator[Dict[str, Any]]:
        """Yield parsed journal lines, dropping a truncated final line."""
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                entry = json.loads(stripped)
            except json.JSONDecodeError as error:
                if index == len(lines) - 1:
                    # The crash signature: a partially flushed final
                    # line.  Dropping it is exactly the resume contract.
                    return
                raise JournalError(
                    f"{self.path}: corrupt journal entry on line {index + 1}: "
                    f"{error}"
                ) from error
            if not isinstance(entry, dict) or "kind" not in entry:
                raise JournalError(
                    f"{self.path}: line {index + 1} is not a journal entry"
                )
            if index == 0:
                self._validate_header(entry)
            yield entry

    def _validate_header(self, entry: Dict[str, Any]) -> None:
        if entry.get("kind") != "header":
            raise JournalError(
                f"{self.path}: first line must be the journal header"
            )
        version = entry.get("schema_version")
        if version != JOURNAL_SCHEMA_VERSION:
            raise JournalError(
                f"{self.path}: journal schema_version {version!r} is not "
                f"supported (this reader understands {JOURNAL_SCHEMA_VERSION})"
            )

    def completed(self) -> Dict[str, Dict[str, Any]]:
        """Map fingerprint -> cell entry for every recorded cell.

        Returns an empty mapping when the journal does not exist yet.
        Later duplicates win (a cell re-recorded after a resume race is
        harmless: payloads for one fingerprint are identical by
        construction).
        """
        if not self.path.exists():
            return {}
        cells: Dict[str, Dict[str, Any]] = {}
        for entry in self._entries():
            if entry.get("kind") != "cell":
                continue
            fingerprint = entry.get("fingerprint")
            if not isinstance(fingerprint, str):
                raise JournalError(
                    f"{self.path}: cell entry without a fingerprint"
                )
            cells[fingerprint] = entry
        return cells

    def _append(self, entry: Dict[str, Any]) -> None:
        line = json.dumps(entry, sort_keys=True) + "\n"
        with self._lock:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())

    def _ensure_header(self) -> None:
        if self._header_written:
            return
        self._append(
            {
                "kind": "header",
                "schema_version": JOURNAL_SCHEMA_VERSION,
                "meta": self._meta,
            }
        )
        self._header_written = True

    def record(
        self,
        fingerprint: str,
        key: Any,
        payload: Mapping[str, Any],
    ) -> None:
        """Append one completed cell (header written first if needed).

        ``key`` is the human-readable cell identity (stored for
        inspection); ``payload`` is the JSON-serialisable result.  The
        line is flushed and fsynced before returning: once ``record``
        returns, the cell survives any crash.  Safe to call from
        concurrent thread workers (one journal object per run); the
        journal is not meant to be shared across processes.
        """
        if not fingerprint:
            raise ValueError("fingerprint must be non-empty")
        with self._lock:
            self._ensure_header()
            self._append_cell(fingerprint, key, payload)

    def _append_cell(
        self, fingerprint: str, key: Any, payload: Mapping[str, Any]
    ) -> None:
        self._append(
            {
                "kind": "cell",
                "fingerprint": fingerprint,
                "key": key,
                "payload": dict(payload),
            }
        )

    def __len__(self) -> int:
        return len(self.completed())

    def __repr__(self) -> str:
        return f"RunJournal(path={str(self.path)!r}, cells={len(self)})"
