"""Seeded, composable fault injectors for on-chip monitor data.

On a real test floor the feature matrix handed to the Vmin predictor is
not the clean block of Table II: ring-oscillator sensors die and read
NaN, ADC channels stick at their last code, aging drifts every monitor
past the distribution the calibration split saw, a mis-soldered thermal
head shifts whole chips, telemetry packets drop.  This module models
those failure mechanisms as small, seeded transforms on a feature
matrix so the serving stack (:mod:`repro.robust.flow`) and the stress
harness (:mod:`repro.eval.stress`) can be exercised against each one at
controlled severity.

Every injector is pure with respect to its input: ``inject`` copies the
matrix, applies the fault, and returns the copy.  Faults compose -- the
output of one injector is a legal input to the next -- and a
:class:`FaultScenario` bundles an ordered list of injectors with a seed
so the same corrupted matrix is reproduced run over run.
:class:`FaultCampaign` declares a severity sweep over the whole fault
taxonomy.

Alongside the *data* faults, this module carries the *execution* faults
targeting the :mod:`repro.runtime` taxonomy: :class:`TaskCrashFault`
(workers raising :class:`~repro.runtime.retry.TransientFault`) and
:class:`TaskHangFault` (workers spinning until the cooperative
watchdog deadline fires).  They wrap the per-cell callable of an
experiment grid, which is how
:func:`repro.eval.stress.run_execution_campaign` proves that crashed
and hung grid cells are recovered via retry/requeue.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from repro.models.base import check_random_state
from repro.runtime.retry import TransientFault
from repro.runtime.watchdog import TaskTimeout, check_deadline

__all__ = [
    "AgingDrift",
    "DeadSensors",
    "ExecutionFault",
    "FaultCampaign",
    "FaultInjector",
    "FaultScenario",
    "NoiseBurst",
    "RowDropout",
    "StuckSensors",
    "TaskCrashFault",
    "TaskHangFault",
    "TemperatureOffset",
    "column_scales",
]


def column_scales(X: np.ndarray) -> np.ndarray:
    """Per-column standard deviation over the *finite* entries of ``X``.

    Columns with fewer than two finite entries get scale 0 -- an injector
    scaling its perturbation by the column spread then leaves them
    untouched instead of producing NaN arithmetic.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    finite = np.isfinite(X)
    count = finite.sum(axis=0)
    safe = np.where(finite, X, 0.0)
    total = safe.sum(axis=0)
    mean = np.where(count > 0, total / np.maximum(count, 1), 0.0)
    sq = np.where(finite, (X - mean) ** 2, 0.0).sum(axis=0)
    variance = np.where(count > 1, sq / np.maximum(count - 1, 1), 0.0)
    return np.sqrt(variance)


def _validate_fraction(value: float, name: str) -> float:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return float(value)


def _pick(n: int, fraction: float, rng: np.random.Generator) -> np.ndarray:
    """Sample ``ceil(fraction * n)`` distinct indices (at least one when
    ``fraction > 0``)."""
    if fraction <= 0.0:
        return np.empty(0, dtype=np.int64)
    k = min(n, max(1, int(np.ceil(fraction * n))))
    return np.sort(rng.choice(n, size=k, replace=False))


class FaultInjector:
    """Base class for seeded faults on a feature matrix.

    Subclasses implement :meth:`inject`, which must copy its input and
    may draw from the supplied generator; they never mutate the caller's
    array or hold hidden state, so injectors are freely reusable across
    scenarios and severities.
    """

    def inject(
        self, X: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:  # pragma: no cover - abstract
        """Return a corrupted copy of ``X``."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable description of the fault."""
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(vars(self).items()))
        return f"{type(self).__name__}({params})"

    def __repr__(self) -> str:
        return self.describe()

    def _columns(
        self,
        X: np.ndarray,
        fraction: float,
        columns: Optional[Sequence[int]],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Resolve the affected column set: explicit list or seeded draw."""
        if columns is not None:
            cols = np.asarray(list(columns), dtype=np.int64)
            if cols.size and (cols.min() < 0 or cols.max() >= X.shape[1]):
                raise ValueError(
                    f"column indices must be in [0, {X.shape[1]}), got {cols}"
                )
            if fraction >= 1.0:
                return cols
            return cols[_pick(cols.size, fraction, rng)]
        return _pick(X.shape[1], fraction, rng)


class DeadSensors(FaultInjector):
    """A fraction of sensors stops reporting: their columns become NaN.

    This is the canonical dead-ROD failure -- the scan chain returns no
    count, the acquisition layer records NaN for every chip.
    """

    def __init__(self, fraction: float, columns: Optional[Sequence[int]] = None) -> None:
        self.fraction = _validate_fraction(fraction, "fraction")
        self.columns = tuple(columns) if columns is not None else None

    def inject(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """NaN out the affected columns."""
        out = np.array(X, dtype=np.float64, copy=True)
        cols = self._columns(out, self.fraction, self.columns, rng)
        out[:, cols] = np.nan
        return out


class StuckSensors(FaultInjector):
    """A fraction of sensors freezes at one value for every chip.

    The stuck value is a plausible last-good reading: the column value of
    one seeded chip.  Unlike :class:`DeadSensors` the column stays finite,
    so only a batch-level variance check can catch it -- exactly the gap
    :class:`repro.robust.FeatureHealthGuard` exists to close.
    """

    def __init__(self, fraction: float, columns: Optional[Sequence[int]] = None) -> None:
        self.fraction = _validate_fraction(fraction, "fraction")
        self.columns = tuple(columns) if columns is not None else None

    def inject(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Freeze the affected columns at one seeded row's reading."""
        out = np.array(X, dtype=np.float64, copy=True)
        cols = self._columns(out, self.fraction, self.columns, rng)
        if cols.size:
            row = int(rng.integers(0, out.shape[0]))
            out[:, cols] = out[row, cols]
        return out


class AgingDrift(FaultInjector):
    """Additive per-column drift scaled by the column's own spread.

    Models BTI/HCI-style aging moving the whole monitor population:
    every affected column shifts by ``shift_scale`` column standard
    deviations.  ``shift_scale`` may be negative (frequency-style
    monitors age downward).
    """

    def __init__(
        self,
        shift_scale: float,
        fraction: float = 1.0,
        columns: Optional[Sequence[int]] = None,
    ) -> None:
        if not np.isfinite(shift_scale):
            raise ValueError(f"shift_scale must be finite, got {shift_scale}")
        self.shift_scale = float(shift_scale)
        self.fraction = _validate_fraction(fraction, "fraction")
        self.columns = tuple(columns) if columns is not None else None

    def inject(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Shift the affected columns by ``shift_scale`` column stds."""
        out = np.array(X, dtype=np.float64, copy=True)
        cols = self._columns(out, self.fraction, self.columns, rng)
        if cols.size:
            scales = column_scales(out)[cols]
            out[:, cols] = out[:, cols] + self.shift_scale * scales
        return out


class TemperatureOffset(FaultInjector):
    """A common-mode shift on a subset of *chips* (rows).

    Models an environmental fault -- a thermal head off-target, a batch
    measured at the wrong soak temperature: every monitor of an affected
    chip reads offset by ``offset_scale`` column standard deviations.
    """

    def __init__(self, offset_scale: float, row_fraction: float = 1.0) -> None:
        if not np.isfinite(offset_scale):
            raise ValueError(f"offset_scale must be finite, got {offset_scale}")
        self.offset_scale = float(offset_scale)
        self.row_fraction = _validate_fraction(row_fraction, "row_fraction")

    def inject(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Offset every column of the affected rows."""
        out = np.array(X, dtype=np.float64, copy=True)
        rows = _pick(out.shape[0], self.row_fraction, rng)
        if rows.size:
            out[rows, :] = out[rows, :] + self.offset_scale * column_scales(out)
        return out


class NoiseBurst(FaultInjector):
    """Gaussian read noise on a subset of chips.

    Models a noisy measurement window (supply glitch during monitor
    readout): affected rows get zero-mean noise with standard deviation
    ``noise_scale`` times the column spread.
    """

    def __init__(self, noise_scale: float, row_fraction: float = 0.1) -> None:
        if not np.isfinite(noise_scale) or noise_scale < 0:
            raise ValueError(f"noise_scale must be >= 0, got {noise_scale}")
        self.noise_scale = float(noise_scale)
        self.row_fraction = _validate_fraction(row_fraction, "row_fraction")

    def inject(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Add seeded Gaussian noise to the affected rows."""
        out = np.array(X, dtype=np.float64, copy=True)
        rows = _pick(out.shape[0], self.row_fraction, rng)
        if rows.size and self.noise_scale > 0:
            scales = column_scales(out)
            noise = rng.normal(size=(rows.size, out.shape[1])) * scales
            out[rows, :] = out[rows, :] + self.noise_scale * noise
        return out


class RowDropout(FaultInjector):
    """Whole telemetry records lost: affected rows become all-NaN.

    Models dropped in-field telemetry packets; the serving stack must
    still return *an* interval for those chips (imputed, heavily
    inflated) rather than crash the batch.
    """

    def __init__(self, fraction: float) -> None:
        self.fraction = _validate_fraction(fraction, "fraction")

    def inject(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """NaN out the affected rows."""
        out = np.array(X, dtype=np.float64, copy=True)
        rows = _pick(out.shape[0], self.fraction, rng)
        out[rows, :] = np.nan
        return out


@dataclass(frozen=True)
class FaultScenario:
    """A named, seeded, ordered composition of fault injectors.

    ``severity`` is free-form metadata (the knob the campaign swept);
    the injectors themselves carry the actual parameters.
    """

    name: str
    injectors: Tuple[FaultInjector, ...]
    severity: float = 0.0
    seed: int = 0

    def apply(self, X: np.ndarray) -> np.ndarray:
        """Run every injector in order on a copy of ``X``.

        A fresh generator is derived from ``seed`` each call, so the same
        scenario corrupts the same matrix identically every time.
        """
        rng = check_random_state(self.seed)
        out = np.array(X, dtype=np.float64, copy=True)
        if out.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {out.shape}")
        for injector in self.injectors:
            out = injector.inject(out, rng)
        return out

    def describe(self) -> str:
        """Human-readable scenario summary."""
        chain = " -> ".join(i.describe() for i in self.injectors)
        return f"{self.name} (severity {self.severity:g}): {chain}"


@dataclass(frozen=True)
class FaultCampaign:
    """A declarative severity sweep across the fault taxonomy.

    A campaign is just an ordered tuple of :class:`FaultScenario`; the
    :meth:`standard` constructor builds the default grid -- one scenario
    per (fault kind, severity) cell with deterministic per-scenario
    seeds -- which is what the stress harness, the CI smoke job, and the
    robustness benchmark all run.
    """

    scenarios: Tuple[FaultScenario, ...] = field(default_factory=tuple)

    def __iter__(self) -> Iterator[FaultScenario]:
        return iter(self.scenarios)

    def __len__(self) -> int:
        return len(self.scenarios)

    @classmethod
    def standard(
        cls,
        severities: Sequence[float] = (0.05, 0.1, 0.2),
        columns: Optional[Sequence[int]] = None,
        seed: int = 0,
    ) -> "FaultCampaign":
        """The default sweep: every fault kind at every severity.

        Parameters
        ----------
        severities:
            Interpreted per kind: affected-column/row fraction for
            dead/stuck/dropout faults, perturbation scale (in column
            stds) for drift/offset/noise faults.
        columns:
            Restrict column-targeting faults (dead, stuck, drift) to
            these indices -- e.g. the on-chip monitor block only.
        seed:
            Base seed; scenario ``i`` uses ``seed + i`` so adding a
            severity does not reshuffle earlier scenarios.
        """
        scenarios = []
        for severity in severities:
            severity = float(severity)
            if not 0.0 <= severity:
                raise ValueError(f"severities must be >= 0, got {severity}")
            kinds = (
                ("dead_sensors", (DeadSensors(min(severity, 1.0), columns=columns),)),
                ("stuck_sensors", (StuckSensors(min(severity, 1.0), columns=columns),)),
                (
                    "aging_drift",
                    (AgingDrift(2.0 * severity, fraction=1.0, columns=columns),),
                ),
                (
                    "temperature_offset",
                    (TemperatureOffset(2.0 * severity, row_fraction=0.5),),
                ),
                ("noise_burst", (NoiseBurst(2.0 * severity, row_fraction=0.25),)),
                ("row_dropout", (RowDropout(min(severity, 0.5)),)),
            )
            scenarios.extend(
                FaultScenario(
                    name=name,
                    injectors=injectors,
                    severity=severity,
                    seed=seed + len(scenarios),
                )
                for name, injectors in kinds
            )
        return cls(scenarios=tuple(scenarios))


# ---------------------------------------------------------------------------
# execution faults (worker crashes and hangs)
# ---------------------------------------------------------------------------


def _item_draw(item: object, seed: int) -> float:
    """Stable uniform [0, 1) draw for one work item.

    Derived from the SHA-256 of ``(seed, repr(item))`` rather than from
    call order, so the *same* tasks are selected regardless of how a
    thread pool schedules them -- the selection is reproducible across
    runs, backends, and worker counts.
    """
    digest = hashlib.sha256(f"{seed}:{item!r}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class ExecutionFault:
    """Base class for faults injected into task *execution*, not data.

    Where :class:`FaultInjector` corrupts a feature matrix, an
    execution fault corrupts the act of running a task: :meth:`wrap`
    takes the per-item callable of a grid (or any
    :func:`~repro.perf.parallel.parallel_map` worker) and returns a
    wrapped callable that misbehaves -- raising transient faults,
    hanging against the watchdog -- for a deterministic, seeded subset
    of items, a limited number of times each.  The runtime's retry and
    timeout machinery is expected to recover; the stress harness
    asserts that it does, bit for bit.
    """

    def wrap(
        self, fn: Callable[[object], object]
    ) -> Callable[[object], object]:  # pragma: no cover - abstract
        """Return a misbehaving version of the per-item callable."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable description of the fault."""
        params = ", ".join(
            f"{k}={v!r}"
            for k, v in sorted(vars(self).items())
            if not k.startswith("_")
        )
        return f"{type(self).__name__}({params})"

    def __repr__(self) -> str:
        return self.describe()


class _StrikeCounter:
    """Thread-safe per-item strike budget shared by one wrapped callable."""

    def __init__(self, limit: int) -> None:
        self._limit = limit
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()

    def strike(self, item: object) -> bool:
        """Consume one strike for ``item``; False once the budget is spent."""
        key = repr(item)
        with self._lock:
            used = self._counts.get(key, 0)
            if used >= self._limit:
                return False
            self._counts[key] = used + 1
            return True


class TaskCrashFault(ExecutionFault):
    """Selected tasks raise a transient fault on their first attempts.

    Models a killed/OOM-ed worker or a dropped connection: the task
    fails with :class:`~repro.runtime.retry.TransientFault` for its
    first ``n_failures`` attempts and succeeds afterwards, so a
    :class:`~repro.runtime.retry.RetryPolicy` with enough attempts
    recovers every cell.  Selection is a seeded, item-stable draw
    (``fraction`` of tasks, at least the selection threshold applies
    per item, independent of scheduling order).

    Attempt counting is in-process (a shared thread-safe counter), so
    this injector is meant for the thread/serial backends the stress
    harness uses.
    """

    def __init__(
        self, fraction: float = 0.5, n_failures: int = 1, seed: int = 0
    ) -> None:
        self.fraction = _validate_fraction(fraction, "fraction")
        if n_failures < 1:
            raise ValueError(f"n_failures must be >= 1, got {n_failures}")
        self.n_failures = int(n_failures)
        self.seed = int(seed)

    def wrap(self, fn: Callable[[object], object]) -> Callable[[object], object]:
        """Wrap ``fn`` so selected items crash transiently, then recover."""
        counter = _StrikeCounter(self.n_failures)

        def crashing(item: object) -> object:
            if _item_draw(item, self.seed) < self.fraction and counter.strike(item):
                raise TransientFault(
                    f"injected worker crash for task {item!r}"
                )
            return fn(item)

        return crashing


class TaskHangFault(ExecutionFault):
    """Selected tasks hang on their first attempts until the watchdog fires.

    Models a wedged fit: the task spins (cooperatively checking the
    active deadline) instead of doing its work, so a ``timeout`` on the
    map converts the hang into a retryable
    :class:`~repro.runtime.watchdog.TaskTimeout`.  ``max_hang_s``
    bounds the spin even when no deadline scope is active -- a
    mis-configured stress run raises instead of deadlocking the suite.
    """

    def __init__(
        self,
        fraction: float = 0.5,
        n_hangs: int = 1,
        seed: int = 0,
        max_hang_s: float = 5.0,
    ) -> None:
        self.fraction = _validate_fraction(fraction, "fraction")
        if n_hangs < 1:
            raise ValueError(f"n_hangs must be >= 1, got {n_hangs}")
        if not max_hang_s > 0:
            raise ValueError(f"max_hang_s must be > 0, got {max_hang_s}")
        self.n_hangs = int(n_hangs)
        self.seed = int(seed)
        self.max_hang_s = float(max_hang_s)

    def wrap(self, fn: Callable[[object], object]) -> Callable[[object], object]:
        """Wrap ``fn`` so selected items stall until a deadline fires."""
        counter = _StrikeCounter(self.n_hangs)

        def hanging(item: object) -> object:
            if _item_draw(item, self.seed) < self.fraction and counter.strike(item):
                give_up_at = time.monotonic() + self.max_hang_s
                while time.monotonic() < give_up_at:
                    check_deadline()  # raises TaskTimeout under a deadline scope
                    time.sleep(0.005)
                raise TaskTimeout(
                    f"injected hang for task {item!r} exceeded max_hang_s="
                    f"{self.max_hang_s:g} with no watchdog deadline active"
                )
            return fn(item)

        return hanging
