"""Deep-ensemble uncertainty baseline (paper Table I, "Ensemble" column).

Lakshminarayanan et al. (2017) estimate predictive uncertainty by training
``n_members`` identically configured networks from different random
initialisations and treating the spread of their predictions as epistemic
uncertainty.  The paper's Table I lists this family as distribution-free
but *without* a test-data coverage guarantee -- the property the
Table-I benchmark verifies empirically against CQR.

Intervals are Gaussian: mean ± z · std where std combines the ensemble
spread with the members' residual noise estimate.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
from scipy.stats import norm

from repro.models.base import (
    BaseRegressor,
    check_fitted,
    check_random_state,
    check_X_y,
    clone,
)
from repro.models.nn import MLPRegressor

__all__ = ["DeepEnsembleRegressor"]


class DeepEnsembleRegressor(BaseRegressor):
    """Ensemble of independently initialised regressors.

    Parameters
    ----------
    template:
        Unfitted member model; ``None`` uses the paper's 16-unit MLP.
        Members are clones differing only in ``random_state`` (when the
        template exposes one).
    n_members:
        Ensemble size (5 is the deep-ensembles default).
    random_state:
        Seed for drawing member seeds.
    """

    def __init__(
        self,
        template: Optional[BaseRegressor] = None,
        n_members: int = 5,
        random_state: Optional[int] = None,
    ) -> None:
        if n_members < 2:
            raise ValueError(f"n_members must be >= 2, got {n_members}")
        self.template = template
        self.n_members = n_members
        self.random_state = random_state
        self.members_: Optional[List[BaseRegressor]] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DeepEnsembleRegressor":
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        template = self.template if self.template is not None else MLPRegressor()
        members: List[BaseRegressor] = []
        for _ in range(self.n_members):
            member = clone(template)
            if "random_state" in member.get_params():
                member.set_params(random_state=int(rng.integers(0, 2**31 - 1)))
            members.append(member.fit(X, y))
        self.members_ = members
        # Residual noise floor so intervals don't collapse when all members
        # agree on the training set.
        stacked = np.stack([member.predict(X) for member in members])
        self.noise_std_ = float(np.sqrt(np.mean((stacked.mean(axis=0) - y) ** 2)))
        return self

    def predict(self, X: np.ndarray, return_std: bool = False):
        """Ensemble mean (and total predictive std when requested)."""
        check_fitted(self, "members_")
        stacked = np.stack([member.predict(X) for member in self.members_])
        mean = stacked.mean(axis=0)
        if not return_std:
            return mean
        epistemic = stacked.std(axis=0)
        total = np.sqrt(epistemic**2 + self.noise_std_**2)
        return mean, total

    def predict_interval(
        self, X: np.ndarray, alpha: float = 0.1
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Central ``1 − alpha`` Gaussian interval from the ensemble moments."""
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        mean, std = self.predict(X, return_std=True)
        z = norm.ppf(1.0 - alpha / 2.0)
        return mean - z * std, mean + z * std
