"""Ground-truth SCAN Vmin model.

The minimum operating voltage of a chip at an ATE corner and stress time
is assembled from physically motivated contributions:

* a per-temperature population base (cold worst: Vth rises and gate
  overdrive shrinks at low voltage; hot second-worst via leakage/IR drop),
* global process speed: high Vth or long channels need more voltage, with
  the sensitivity amplified at cold,
* the worst-case within-die systematic corner (critical paths live at die
  edges, so the chip pays for its worst gradient excursion),
* a leakage / IR-drop term that matters mainly at 125 degC,
* accumulated BTI/HCI aging, again amplified at cold,
* the latent-defect penalty (temperature- and time-dependent, see
  :mod:`repro.silicon.defects`),
* heteroscedastic test noise -- larger at cold and larger for defective
  parts -- plus the ATE voltage-search quantisation step.

The heteroscedastic, heavy-tailed structure is deliberate: it is the
regime in which constant-width conformal intervals over/under-margin and
CQR's adaptive bands earn their keep (paper Sections I and III-C).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.models.base import check_random_state
from repro.silicon.aging import AgedPopulation
from repro.silicon.constants import VMIN_BASE_V, validate_temperature
from repro.silicon.defects import DefectPopulation
from repro.silicon.process import ProcessSample

__all__ = ["ScanVminModel"]

_SPEED_COEF: Dict[float, float] = {-45.0: 1.35, 25.0: 0.95, 125.0: 0.75}
_LEFF_COEF_V: Dict[float, float] = {-45.0: 0.006, 25.0: 0.004, 125.0: 0.003}
_CORNER_COEF: Dict[float, float] = {-45.0: 1.1, 25.0: 0.9, 125.0: 0.8}
_LEAK_COEF_V: Dict[float, float] = {-45.0: 0.001, 25.0: 0.002, 125.0: 0.008}
_AGING_COEF: Dict[float, float] = {-45.0: 1.2, 25.0: 0.9, 125.0: 0.8}
_NOISE_SIGMA_V: Dict[float, float] = {-45.0: 0.0035, 25.0: 0.0020, 125.0: 0.0025}


class ScanVminModel:
    """Evaluate true and measured SCAN Vmin for a chip population.

    Parameters
    ----------
    ate_step_v:
        Voltage resolution of the ATE Vmin search (binary/linear search
        step).  Measured Vmin is the true value rounded *up* to the next
        step -- the tester reports the lowest passing voltage it visited.
    defect_noise_factor:
        Multiplier on test noise for defective chips (marginal parts are
        less repeatable).
    """

    def __init__(
        self,
        ate_step_v: float = 0.0025,
        defect_noise_factor: float = 1.5,
    ) -> None:
        if ate_step_v <= 0:
            raise ValueError(f"ate_step_v must be positive, got {ate_step_v}")
        if defect_noise_factor < 1:
            raise ValueError(
                f"defect_noise_factor must be >= 1, got {defect_noise_factor}"
            )
        self.ate_step_v = ate_step_v
        self.defect_noise_factor = defect_noise_factor

    def true_vmin(
        self,
        process: ProcessSample,
        aging: AgedPopulation,
        defects: DefectPopulation,
        temperature_c: float,
        hours: float,
    ) -> np.ndarray:
        """Noise-free per-chip Vmin (V) at a corner and stress time."""
        temperature_c = validate_temperature(temperature_c)
        if hours < 0:
            raise ValueError(f"hours must be >= 0, got {hours}")

        speed = _SPEED_COEF[temperature_c] * process.vth_shift
        length = _LEFF_COEF_V[temperature_c] * process.leff_shift
        worst_corner = _CORNER_COEF[temperature_c] * (
            np.abs(process.gradient_x) + np.abs(process.gradient_y)
        )
        leakage = _LEAK_COEF_V[temperature_c] * np.log(process.leakage_factor)
        aged = _AGING_COEF[temperature_c] * aging.vth_shift_at(hours)
        defect = defects.vmin_penalty(temperature_c, hours)

        return (
            VMIN_BASE_V[temperature_c]
            + speed
            + length
            + worst_corner
            + leakage
            + aged
            + defect
        )

    def measure(
        self,
        process: ProcessSample,
        aging: AgedPopulation,
        defects: DefectPopulation,
        temperature_c: float,
        hours: float,
        rng,
    ) -> np.ndarray:
        """One ATE Vmin test: true value + heteroscedastic noise, stepped.

        Returns the per-chip measured Vmin (V).  Noise sigma is the
        corner's base sigma, scaled up for defective chips; the result is
        rounded up to the ATE search step.
        """
        temperature_c = validate_temperature(temperature_c)
        rng = check_random_state(rng)
        truth = self.true_vmin(process, aging, defects, temperature_c, hours)
        sigma = _NOISE_SIGMA_V[temperature_c] * np.where(
            defects.mask, self.defect_noise_factor, 1.0
        )
        noisy = truth + rng.normal(0.0, 1.0, size=truth.shape) * sigma
        return np.ceil(noisy / self.ate_step_v) * self.ate_step_v

    def noise_sigma(self, temperature_c: float) -> float:
        """Base test-repeatability sigma at a corner (V)."""
        return _NOISE_SIGMA_V[validate_temperature(temperature_c)]
