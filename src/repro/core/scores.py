"""Conformity score functions.

A conformity score measures how badly a fitted predictor misses a
calibration example; the conformal quantile of these scores is the margin
added to test-time predictions.  The paper uses two:

* :func:`absolute_residual_score` -- Eq. (7), for split CP around a point
  predictor,
* :func:`cqr_score` -- Eq. (9), the signed distance by which a label
  escapes a quantile band (negative when safely inside), for CQR.

:func:`normalized_residual_score` is the classical locally-weighted
variant (residual / difficulty estimate), provided as an extension and
used in the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "absolute_residual_score",
    "cqr_score",
    "normalized_residual_score",
]


def _validate_same_shape(*arrays: np.ndarray) -> None:
    shapes = {np.asarray(a).shape for a in arrays}
    if len(shapes) != 1:
        raise ValueError(f"arrays must share a shape, got {sorted(map(str, shapes))}")
    if np.asarray(arrays[0]).ndim != 1:
        raise ValueError("scores operate on 1-D arrays")


def absolute_residual_score(y: np.ndarray, prediction: np.ndarray) -> np.ndarray:
    """Split-CP score ``s = |y − ŷ|`` (paper Eq. 7)."""
    y = np.asarray(y, dtype=np.float64)
    prediction = np.asarray(prediction, dtype=np.float64)
    _validate_same_shape(y, prediction)
    return np.abs(y - prediction)


def cqr_score(
    y: np.ndarray, lower: np.ndarray, upper: np.ndarray
) -> np.ndarray:
    """CQR score ``s = max(lower − y, y − upper)`` (paper Eq. 9).

    Positive scores measure how far the label escaped the band; negative
    scores measure how deep inside it sits.  Keeping the negative part is
    essential: it lets the conformal correction *shrink* over-wide bands,
    one of CQR's advantages over split CP.
    """
    y = np.asarray(y, dtype=np.float64)
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    _validate_same_shape(y, lower, upper)
    if np.any(lower > upper):
        raise ValueError("lower bound exceeds upper bound; sort the band first")
    return np.maximum(lower - y, y - upper)


def normalized_residual_score(
    y: np.ndarray, prediction: np.ndarray, difficulty: np.ndarray
) -> np.ndarray:
    """Locally weighted score ``s = |y − ŷ| / σ̂(x)``.

    ``difficulty`` is any positive per-sample difficulty estimate (e.g. a
    model of the residual magnitude).  Intervals built from this score are
    ``ŷ ± q̂·σ̂(x)`` -- adaptive like CQR, but requiring an explicit
    difficulty model.
    """
    y = np.asarray(y, dtype=np.float64)
    prediction = np.asarray(prediction, dtype=np.float64)
    difficulty = np.asarray(difficulty, dtype=np.float64)
    _validate_same_shape(y, prediction, difficulty)
    if np.any(difficulty <= 0):
        raise ValueError("difficulty estimates must be strictly positive")
    return np.abs(y - prediction) / difficulty
