"""Tests for the assembled SiliconDataset, Chip views, and the ATE flow."""

import numpy as np
import pytest

from repro.silicon import (
    BurnInFlowSimulator,
    N_CPD_SENSORS,
    N_PARAMETRIC_TESTS,
    N_ROD_SENSORS,
    READ_POINTS_HOURS,
    SiliconDataset,
    TEMPERATURES_C,
)
from repro.silicon.chip import Chip


class TestGeneration:
    def test_table_ii_shapes(self, lot):
        assert lot.parametric.shape == (156, N_PARAMETRIC_TESTS)
        for hours in READ_POINTS_HOURS:
            assert lot.rod[hours].shape == (156, N_ROD_SENSORS)
            assert lot.cpd[hours].shape == (156, N_CPD_SENSORS)
        assert len(lot.vmin) == len(READ_POINTS_HOURS) * len(TEMPERATURES_C)

    def test_deterministic_given_seed(self):
        a = SiliconDataset.generate(n_chips=30, seed=5)
        b = SiliconDataset.generate(n_chips=30, seed=5)
        np.testing.assert_array_equal(a.parametric, b.parametric)
        np.testing.assert_array_equal(a.vmin[(25.0, 0)], b.vmin[(25.0, 0)])

    def test_different_seeds_differ(self):
        a = SiliconDataset.generate(n_chips=30, seed=5)
        b = SiliconDataset.generate(n_chips=30, seed=6)
        assert not np.allclose(a.parametric, b.parametric)

    def test_vmin_in_plausible_range(self, lot):
        for key, vmin in lot.vmin.items():
            assert np.all(vmin > 0.4), key
            assert np.all(vmin < 0.95), key

    def test_measured_tracks_truth(self, lot):
        for key in lot.vmin:
            residual = lot.vmin[key] - lot.true_vmin[key]
            assert np.abs(residual).max() < 0.03, key

    def test_rejects_one_chip(self):
        with pytest.raises(ValueError):
            SiliconDataset.generate(n_chips=1)

    def test_summary_mentions_key_facts(self, lot):
        text = lot.summary()
        assert "156 chips" in text and "1800 parametric" in text


class TestFeatureAssembly:
    def test_time_zero_features(self, lot):
        X, names = lot.features(0)
        assert X.shape == (156, N_PARAMETRIC_TESTS + N_ROD_SENSORS + N_CPD_SENSORS)
        assert len(names) == X.shape[1]
        assert names[0].startswith("par_")
        assert names[-1].startswith("cpd_")

    def test_later_read_points_accumulate_monitors(self, lot):
        X48, _ = lot.features(48)
        expected = N_PARAMETRIC_TESTS + 3 * (N_ROD_SENSORS + N_CPD_SENSORS)
        assert X48.shape == (156, expected)

    def test_parametric_only(self, lot):
        X, names = lot.features(1008, include_onchip=False)
        assert X.shape == (156, N_PARAMETRIC_TESTS)
        assert all(n.startswith("par_") for n in names)

    def test_onchip_only(self, lot):
        X, names = lot.features(0, include_parametric=False)
        assert X.shape == (156, N_ROD_SENSORS + N_CPD_SENSORS)
        assert all("@0h" in n for n in names)

    def test_rejects_empty_feature_set(self, lot):
        with pytest.raises(ValueError, match="at least one"):
            lot.features(0, include_parametric=False, include_onchip=False)

    def test_rejects_unknown_read_point(self, lot):
        with pytest.raises(ValueError, match="stress schedule"):
            lot.features(100)

    def test_target_accessor(self, lot):
        y = lot.target(25.0, 24)
        assert y.shape == (156,)
        with pytest.raises(ValueError):
            lot.target(30.0, 24)

    def test_feature_names_unique(self, lot):
        _, names = lot.features(1008)
        assert len(set(names)) == len(names)


class TestChipViews:
    def test_iteration_and_len(self, small_lot):
        population = small_lot.population
        chips = list(population)
        assert len(chips) == len(population) == 60
        assert all(isinstance(chip, Chip) for chip in chips)

    def test_chip_properties_consistent(self, small_lot):
        population = small_lot.population
        chip = population.chip(3)
        assert chip.vth_shift == pytest.approx(population.process.vth_shift[3])
        assert chip.is_defective == bool(population.defects.mask[3])
        assert chip.aged_vth_shift(1008) > 0

    def test_speed_grade_labels(self, small_lot):
        grades = {chip.speed_grade() for chip in small_lot.population}
        assert grades <= {"fast", "typical", "slow"}

    def test_out_of_range_index(self, small_lot):
        with pytest.raises(IndexError):
            small_lot.population.chip(999)


class TestBurnInFlow:
    def test_schedule_structure(self, small_lot):
        flow = BurnInFlowSimulator(small_lot)
        plan = flow.schedule()
        # Parametric insertion only at time 0.
        parametric_steps = [s for s in plan if s[1] == "parametric"]
        assert parametric_steps == [(0, "parametric")]
        # Monitors at every read point.
        rod_steps = [s for s in plan if s[1] == "rod"]
        assert len(rod_steps) == len(small_lot.read_points)

    def test_log_values_match_dataset(self, small_lot):
        flow = BurnInFlowSimulator(small_lot, include_parametric=False)
        log = flow.to_arrays()
        rod24 = log.select(insertion="rod", read_point_hours=24, chip_index=0)
        channel0 = rod24.select(channel=small_lot.rod_names[0])
        assert channel0.value[0] == pytest.approx(small_lot.rod[24][0, 0])

    def test_vmin_records_per_temperature(self, small_lot):
        flow = BurnInFlowSimulator(
            small_lot, include_parametric=False, include_monitors=False
        )
        log = flow.to_arrays()
        vmin_records = log.select(insertion="scan_vmin", read_point_hours=0)
        assert len(vmin_records) == small_lot.n_chips * len(small_lot.temperatures)

    def test_select_rejects_unknown_column(self, small_lot):
        log = BurnInFlowSimulator(
            small_lot, include_parametric=False, include_monitors=False
        ).to_arrays()
        with pytest.raises(ValueError, match="unknown log column"):
            log.select(wafer=3)

    def test_stress_conditions_exposed(self, small_lot):
        voltage, temperature = BurnInFlowSimulator(small_lot).stress_conditions
        assert voltage > 0.8 and temperature == 80.0


class TestWaferIntegration:
    def test_wafer_overlay_applied_to_population(self):
        from repro.silicon import WaferModel

        base = SiliconDataset.generate(n_chips=40, seed=3)
        with_wafer = SiliconDataset.generate(
            n_chips=40, seed=3, wafer_model=WaferModel()
        )
        assert base.wafer is None
        assert with_wafer.wafer is not None
        np.testing.assert_allclose(
            with_wafer.population.process.vth_shift,
            base.population.process.vth_shift + with_wafer.wafer.vth_overlay_v,
        )

    def test_wafer_overlay_visible_in_measurements(self):
        from repro.silicon import WaferLayout, WaferModel

        model = WaferModel(
            WaferLayout(dies_per_row=8),
            wafer_sigma_v=0.02,
            radial_amplitude_v=0.0,
            radial_sigma_v=0.0,
        )
        per_wafer = model.layout.dies_per_wafer
        dataset = SiliconDataset.generate(
            n_chips=per_wafer * 2, seed=5, wafer_model=model
        )
        vmin = dataset.target(25.0, 0)
        wafer0 = vmin[dataset.wafer.wafer_id == 0].mean()
        wafer1 = vmin[dataset.wafer.wafer_id == 1].mean()
        overlay0 = dataset.wafer.vth_overlay_v[dataset.wafer.wafer_id == 0][0]
        overlay1 = dataset.wafer.vth_overlay_v[dataset.wafer.wafer_id == 1][0]
        # The wafer-mean Vmin difference must track the drawn overlay
        # difference through the 25C speed coefficient (0.95), up to the
        # per-wafer sampling noise of the other variation sources.
        expected = 0.95 * (overlay1 - overlay0)
        assert (wafer1 - wafer0) == pytest.approx(expected, abs=0.004)

    def test_wafer_generation_deterministic(self):
        from repro.silicon import WaferModel

        a = SiliconDataset.generate(n_chips=30, seed=9, wafer_model=WaferModel())
        b = SiliconDataset.generate(n_chips=30, seed=9, wafer_model=WaferModel())
        np.testing.assert_array_equal(a.wafer.vth_overlay_v, b.wafer.vth_overlay_v)
        np.testing.assert_array_equal(a.parametric, b.parametric)


class TestDatasetInvariants:
    def test_feature_columns_grow_as_prefix(self, lot):
        """features(t1) columns are a prefix of features(t2) for t1 < t2:
        parametric block first, then monitor snapshots in read-point
        order -- so models trained at one read point index consistently."""
        previous_names = None
        for hours in lot.read_points:
            _, names = lot.features(hours)
            if previous_names is not None:
                assert names[: len(previous_names)] == previous_names
            previous_names = names

    def test_true_vmin_monotone_in_stress(self, lot):
        for temperature in lot.temperatures:
            previous = None
            for hours in lot.read_points:
                current = lot.true_vmin[(temperature, hours)]
                if previous is not None:
                    assert np.all(current >= previous - 1e-12)
                previous = current

    def test_cold_is_worst_corner_per_chip_majority(self, lot):
        cold = lot.true_vmin[(-45.0, 0)]
        room = lot.true_vmin[(25.0, 0)]
        assert np.mean(cold > room) > 0.95

    def test_defect_mask_is_copy(self, lot):
        mask = lot.defect_mask()
        mask[:] = False
        assert lot.population.defects.mask.sum() > 0 or True
        # Original unchanged:
        assert lot.defect_mask().sum() == lot.population.defects.mask.sum()
