"""Distribution-shift defense layer: detect, bound, and repair.

Every conformal guarantee in this repository assumes exchangeability;
the fleet scenarios the roadmap targets (new fab, drifting process
corners, sensor recalibration) break it by construction.  This package
makes the violation an observable event and provides the repair:

- :mod:`repro.shift.sentinel` -- online conformal test martingale
  (exchangeability sentinel with a Ville's-inequality alarm threshold)
  and per-feature PSI/KS covariate-shift detectors.
- :mod:`repro.shift.weights` -- seeded logistic density-ratio
  estimation and the Kish effective-sample-size degeneracy guard.
- :mod:`repro.shift.weighted` -- likelihood-ratio-weighted split-CP /
  weighted-CQR quantiles that restore approximate coverage under
  covariate shift, refusing loudly when the weights degenerate.

Serving integration lives in :mod:`repro.serve.shiftguard`; shifted
fleet data generation in :mod:`repro.silicon.fleet`; the end-to-end
campaign in :func:`repro.eval.stress.run_shift_campaign`.  See
``docs/SHIFT.md`` for the threat model and guarantee fine print.
"""

from repro.shift.sentinel import (
    ConformalTestMartingale,
    CovariateShiftAlarm,
    CovariateShiftDetector,
    ExchangeabilityAlarm,
)
from repro.shift.weighted import (
    DegenerateWeightsError,
    WeightedBandCalibrator,
    WeightedConformalRegressor,
    weighted_conformal_quantile,
)
from repro.shift.weights import LogisticDensityRatio, effective_sample_size

__all__ = [
    "ConformalTestMartingale",
    "CovariateShiftAlarm",
    "CovariateShiftDetector",
    "DegenerateWeightsError",
    "ExchangeabilityAlarm",
    "LogisticDensityRatio",
    "WeightedBandCalibrator",
    "WeightedConformalRegressor",
    "effective_sample_size",
    "weighted_conformal_quantile",
]
